"""The simulated BR/EDR controller (baseband + link manager).

One :class:`Controller` models a Bluetooth chipset:

* **HCI face (up):** parses commands arriving over the attached
  transport, answers with Command_Status / Command_Complete, and emits
  the asynchronous events of the connection and security procedures.
* **Radio face (down):** registers with a :class:`~repro.phy.medium.
  RadioMedium`, performs inquiry and paging, and exchanges LMP PDUs
  and ACL frames over physical links.

Security procedures implemented:

* Legacy LMP authentication — the E1 challenge-response.  The
  controller has no key storage, so on each authentication it raises
  ``HCI_Link_Key_Request`` to the host and waits; the host's plaintext
  reply is precisely what the HCI dump logs (paper §IV).  If the host
  never answers (the paper's Fig. 9 bluedroid patch), the *peer's*
  LMP response timer expires and the link drops with
  ``LMP_RESPONSE_TIMEOUT`` — crucially *not* an authentication
  failure, so the peer keeps its stored key.
* Secure Simple Pairing — IO capability exchange, P-192/P-256 ECDH,
  commitment/nonce authentication stage 1, user confirmation, DHKey
  check, f2 link key derivation, ``HCI_Link_Key_Notification``.
* E0 link encryption keyed by E3(link key, EN_RAND, ACO).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.core.association import (
    passkey_displayer_is_initiator,
    select_association_model,
)
from repro.core.errors import HciError
from repro.core.types import (
    AssociationModel,
    BdAddr,
    IoCapability,
    LinkKey,
    LinkKeyType,
    LinkType,
)
from repro.crypto.e0 import e0_encrypt
from repro.crypto.ecc import (
    CurveParams,
    EccKeyPair,
    EccPoint,
    P192,
    P256,
    ecdh_shared_secret,
    generate_keypair,
)
from repro.crypto.legacy import e1, e3, e21, e22, reduce_key_entropy
from repro.crypto.ssp import (
    KEY_ID_BTLK,
    f1_p192,
    f1_p256,
    f2_p192,
    f2_p256,
    f3_p192,
    f3_p256,
    g_numeric,
    h4,
    h5,
    io_cap_bytes,
)
from repro.hci import commands as cmd
from repro.hci import events as evt
from repro.hci.constants import ErrorCode, Opcode, ScanEnable
from repro.hci.packets import HciAclData, HciCommand, HciEvent
from repro.hci.parser import parse_packet
from repro.controller import lmp
from repro.phy.medium import AirFrame, PhysicalLink, RadioMedium
from repro.sim.eventloop import Event, Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import Tracer
from repro.transport.base import HciTransport

if TYPE_CHECKING:
    from repro.obs import Observability
    from repro.obs.spans import Span

_ZERO16 = b"\x00" * 16


class LinkState(enum.Enum):
    """ACL link lifecycle."""

    AWAITING_ACCEPT = "awaiting_accept"  # initiator waiting for peer host
    PENDING_ACCEPT = "pending_accept"  # responder waiting for local host
    CONNECTED = "connected"
    CLOSED = "closed"


@dataclass
class SspSession:
    """State of one in-flight Secure Simple Pairing transaction."""

    role: str  # "initiator" | "responder"
    curve: CurveParams
    local_io: Optional[int] = None
    local_oob: int = 0
    local_auth_req: int = 0
    remote_io: Optional[int] = None
    remote_oob: int = 0
    remote_auth_req: int = 0
    keypair: Optional[EccKeyPair] = None
    peer_public: Optional[EccPoint] = None
    local_nonce: Optional[bytes] = None
    peer_nonce: Optional[bytes] = None
    peer_commitment: Optional[bytes] = None
    dhkey: Optional[bytes] = None
    local_confirmed: bool = False
    peer_confirmed: bool = False
    stage2_started: bool = False
    numeric_value: Optional[int] = None
    pending_peer_check: Optional[bytes] = None
    # Passkey Entry state (the 20-round commitment protocol).
    association: Optional[AssociationModel] = None
    passkey: Optional[int] = None
    #: stage-2 commitment inputs: our r and the peer's r.  Zero for
    #: NC/JW, the passkey for Passkey Entry, the OOB randomizers for
    #: Out of Band (where they differ per side).
    local_r: bytes = b"\x00" * 16
    peer_r: bytes = b"\x00" * 16
    displays_passkey: bool = False
    passkey_round: int = 0
    rounds_started: bool = False
    round_local_nonce: Optional[bytes] = None
    round_peer_commitment: Optional[bytes] = None
    pending_round_pdu: Optional[object] = None

    @property
    def just_works(self) -> bool:
        """Just Works is selected when either side lacks IO capability."""
        return IoCapability.NO_INPUT_NO_OUTPUT in (
            IoCapability(self.local_io),
            IoCapability(self.remote_io),
        )

    def f1(self, u: bytes, v: bytes, x: bytes, z: bytes) -> bytes:
        return (f1_p256 if self.curve is P256 else f1_p192)(u, v, x, z)

    def f2(self, n1, n2, a1, a2) -> LinkKey:
        fn = f2_p256 if self.curve is P256 else f2_p192
        return fn(self.dhkey, n1, n2, KEY_ID_BTLK, a1, a2)

    def f3(self, n1, n2, r, io_cap, a1, a2) -> bytes:
        fn = f3_p256 if self.curve is P256 else f3_p192
        return fn(self.dhkey, n1, n2, r, io_cap, a1, a2)


@dataclass
class AuthSession:
    """State of one in-flight legacy authentication (challenge-response)."""

    role: str  # "verifier" | "prover"
    link_key: Optional[LinkKey] = None
    au_rand: Optional[bytes] = None
    timer: Optional[Event] = None
    # Secure Connections mutual authentication state.
    secure: bool = False
    local_rand: Optional[bytes] = None
    peer_rand: Optional[bytes] = None


@dataclass
class LegacyPairingSession:
    """State of one in-flight legacy (PIN / E22) pairing."""

    role: str  # "initiator" | "responder"
    pin: Optional[bytes] = None
    in_rand: Optional[bytes] = None
    k_init: Optional[LinkKey] = None
    local_lk_rand: Optional[bytes] = None
    peer_masked_rand: Optional[bytes] = None
    comb_sent: bool = False
    link_key: Optional[LinkKey] = None


@dataclass
class AclLink:
    """One ACL connection as the controller sees it."""

    handle: int
    peer_addr: BdAddr  # the peer's *claimed* BD_ADDR
    phys: PhysicalLink
    is_initiator: bool
    state: LinkState
    peer_cod: int = 0
    link_key: Optional[LinkKey] = None
    aco: Optional[bytes] = None
    encryption_enabled: bool = False
    kc: Optional[bytes] = None
    encryption_key_size: int = 16
    tx_seq: int = 0
    rx_seq: int = 0
    last_activity: float = 0.0
    auth: Optional[AuthSession] = None
    ssp: Optional[SspSession] = None
    legacy: Optional[LegacyPairingSession] = None
    accept_timer: Optional[Event] = None
    auth_requested_by_host: bool = False
    peer_ssp_supported: bool = True
    peer_secure_auth: bool = False
    sco_handle: Optional[int] = None


class Controller:
    """A complete simulated Bluetooth controller."""

    #: default page timeout (seconds; spec default is 5.12 s)
    PAGE_TIMEOUT = 5.12
    #: LMP response timeout — how long a verifier waits for SRES
    LMP_RESPONSE_TIMEOUT = 5.0
    #: how long we wait for the host to answer Connection_Request
    CONNECTION_ACCEPT_TIMEOUT = 5.0
    #: link supervision timeout (no traffic → link drop)
    SUPERVISION_TIMEOUT = 20.0

    def __init__(
        self,
        simulator: Simulator,
        medium: RadioMedium,
        transport: HciTransport,
        rng: RngRegistry,
        name: str,
        bd_addr: BdAddr,
        class_of_device: int = 0x5A020C,
        secure_connections: bool = True,
        tracer: Optional[Tracer] = None,
        obs: Optional["Observability"] = None,
    ) -> None:
        self.simulator = simulator
        self.medium = medium
        self.transport = transport
        self.name = name
        self._bd_addr = bd_addr
        self.class_of_device = class_of_device
        self.secure_connections = secure_connections
        self.tracer = tracer if tracer is not None else Tracer()
        self.obs = obs
        if obs is not None:
            metrics = obs.metrics
        else:
            from repro.obs.metrics import get_global_registry

            metrics = get_global_registry()
        self._m_events_emitted = metrics.counter("hci.events_emitted")
        self._m_commands = metrics.counter("hci.commands_dispatched")
        self._m_lmp_tx = metrics.counter("lmp.pdus_sent")
        self._m_lmp_rx = metrics.counter("lmp.pdus_received")
        self._m_auth_rounds = metrics.counter("lmp.auth_rounds")
        self._m_malformed = metrics.counter("hci.malformed_from_host")
        #: fault hook (controller.lmp_hang): incoming LMP PDUs are
        #: ignored while ``simulator.now`` is below this mark.
        self.lmp_silence_until = 0.0
        self._page_spans: Dict[BdAddr, "Span"] = {}
        self._rng = rng.stream(f"controller:{name}")

        self.local_name = name
        self.scan_enable = ScanEnable.NONE
        self.simple_pairing_mode = True
        self.authentication_enable = False
        self.page_timeout_s = self.PAGE_TIMEOUT
        self.page_scan_interval_slots = 0x0800  # 1.28 s
        self.page_scan_window_slots = 0x0012
        self.inquiry_scan_interval_slots = 0x1000
        self.inquiry_scan_window_slots = 0x0012
        self.supervision_timeout_s = self.SUPERVISION_TIMEOUT
        #: 0 = standard inquiry results, 2 = extended (EIR with names)
        self.inquiry_mode = 0
        #: encryption key size negotiation bounds (bytes).  The spec's
        #: floor is 1 — the KNOB attack surface; the post-KNOB erratum
        #: (and our mitigation tests) raise the minimum to 7.
        self.max_encryption_key_size = 16
        self.min_encryption_key_size = 1
        #: opt-in Secure Connections *mutual* authentication (h4/h5).
        #: Defaults off: the paper's device fleet authenticates with
        #: the legacy one-way E1 exchange, whose transcripts the
        #: figures show.  Used only when both link ends enable it.
        self.secure_auth_enabled = False

        self._links_by_handle: Dict[int, AclLink] = {}
        self._links_by_phys: Dict[int, AclLink] = {}
        self._next_handle = 1
        self._inquiry_active = False
        self._pending_key_req: Dict[BdAddr, Callable[[Optional[LinkKey]], None]] = {}
        self._pending_io_req: Dict[BdAddr, Callable[[int, int, int], None]] = {}
        self._pending_confirm: Dict[BdAddr, Callable[[bool], None]] = {}
        self._pending_passkey: Dict[BdAddr, Callable[[Optional[int]], None]] = {}
        self._pending_pin: Dict[BdAddr, Callable[[Optional[bytes]], None]] = {}
        self._pending_oob: Dict[
            BdAddr, Callable[[Optional[bytes], Optional[bytes]], None]
        ] = {}
        self._pending_create: Dict[BdAddr, bool] = {}
        # Long-lived SSP key pairs (regenerated per power cycle, like
        # real controllers) — also the anchor of the OOB commitment.
        self._ssp_keypairs: Dict[str, EccKeyPair] = {}
        self._local_oob_r: Optional[bytes] = None
        # The controller's own (tiny) link key store — the limited
        # storage the paper cites as the reason hosts manage keys.
        self.stored_link_keys: Dict[BdAddr, LinkKey] = {}
        self.stored_link_key_capacity = 2

        transport.attach_controller(self._on_host_bytes)
        medium.register(self)

    # ------------------------------------------------------------------ radio
    # Properties the medium needs (RadioPeer protocol).

    @property
    def bd_addr(self) -> BdAddr:
        return self._bd_addr

    @bd_addr.setter
    def bd_addr(self, value: BdAddr) -> None:
        """Direct BD_ADDR write — the spoofing hook (persist/bdaddr.txt)."""
        self._bd_addr = value
        # Pages resolve through the medium's address index; a spoofed
        # address must land there or the PLOC race never sees us.
        self.medium.notify_addr_changed(self)

    @property
    def inquiry_scan_enabled(self) -> bool:
        return self.scan_enable.inquiry_scan

    @property
    def page_scan_enabled(self) -> bool:
        return self.scan_enable.page_scan

    @property
    def page_scan_interval_s(self) -> float:
        return self.page_scan_interval_slots * 0.000625

    @property
    def class_of_device_value(self) -> int:
        return self.class_of_device

    # -------------------------------------------------------------- HCI: down

    def _on_host_bytes(self, raw: bytes) -> None:
        # A real controller drops junk off the transport instead of
        # dying: truncated or garbled deliveries (see repro.faults)
        # must never wedge the event loop.
        try:
            packet = parse_packet(raw[0], raw[1:]) if raw else None
        except (HciError, IndexError):
            packet = None
        if packet is None:
            self._m_malformed.inc()
            self.tracer.emit(
                self.simulator.now,
                self.name,
                "hci-err",
                f"malformed packet from host dropped ({len(raw)} bytes)",
            )
            return
        if isinstance(packet, HciCommand):
            self._dispatch_command(packet)
        elif isinstance(packet, HciAclData):
            self._handle_acl_from_host(packet)
        else:
            self._m_malformed.inc()
            self.tracer.emit(
                self.simulator.now,
                self.name,
                "hci-err",
                f"unexpected packet from host dropped: {packet!r}",
            )

    def _send_event(self, event: HciEvent) -> None:
        self._m_events_emitted.inc()
        self.tracer.emit(
            self.simulator.now, self.name, "hci-event", event.display_name
        )
        self.transport.send_from_controller(event)

    def _command_complete(self, opcode: int, return_params: bytes = b"\x00") -> None:
        self._send_event(
            evt.CommandComplete(
                num_hci_command_packets=1,
                command_opcode=opcode,
                return_parameters=return_params,
            )
        )

    def _command_status(self, opcode: int, status: int = 0) -> None:
        self._send_event(
            evt.CommandStatus(
                status=status, num_hci_command_packets=1, command_opcode=opcode
            )
        )

    # ------------------------------------------------------- command dispatch

    def _dispatch_command(self, command: HciCommand) -> None:
        self._m_commands.inc()
        self.tracer.emit(
            self.simulator.now, self.name, "hci-cmd", command.display_name
        )
        handler = self._COMMAND_HANDLERS.get(command.opcode)
        if handler is None:
            self._command_status(command.opcode, ErrorCode.UNKNOWN_HCI_COMMAND)
            return
        handler(self, command)

    # -- simple synchronous configuration commands

    def _cmd_reset(self, command: cmd.Reset) -> None:
        self.scan_enable = ScanEnable.NONE
        for link in list(self._links_by_handle.values()):
            self._teardown(link, ErrorCode.CONNECTION_TERMINATED_BY_LOCAL_HOST, emit=False)
        self._command_complete(command.opcode)

    def hard_reset(self) -> None:
        """Fault hook (controller.hard_reset): a firmware crash.

        Unlike the orderly ``HCI_Reset``, the host did not ask for
        this: every link dies mid-procedure *with* disconnection
        events (the host must observe its operations failing), all
        pending LMP/SSP state evaporates, and the controller-side key
        cache is wiped.  Scan configuration survives — the ROM
        defaults come back up almost immediately.
        """
        self.tracer.emit(
            self.simulator.now,
            self.name,
            "fault",
            f"controller hard reset ({len(self._links_by_handle)} links up)",
        )
        for link in list(self._links_by_handle.values()):
            self._teardown(link, ErrorCode.UNSPECIFIED_ERROR)
        for pending in (
            self._pending_key_req,
            self._pending_io_req,
            self._pending_confirm,
            self._pending_passkey,
            self._pending_pin,
            self._pending_oob,
            self._pending_create,
        ):
            pending.clear()
        self._ssp_keypairs.clear()
        self._local_oob_r = None
        self._inquiry_active = False
        self.stored_link_keys.clear()
        self.lmp_silence_until = 0.0

    def _cmd_write_scan_enable(self, command: cmd.WriteScanEnable) -> None:
        self.scan_enable = ScanEnable(command.scan_enable)
        self._command_complete(command.opcode)

    def _cmd_write_cod(self, command: cmd.WriteClassOfDevice) -> None:
        self.class_of_device = command.class_of_device
        self._command_complete(command.opcode)

    def _cmd_write_local_name(self, command: cmd.WriteLocalName) -> None:
        self.local_name = command.local_name
        self._command_complete(command.opcode)

    def _cmd_write_page_timeout(self, command: cmd.WritePageTimeout) -> None:
        self.page_timeout_s = command.page_timeout * 0.000625
        self._command_complete(command.opcode)

    def _cmd_write_page_scan_activity(
        self, command: cmd.WritePageScanActivity
    ) -> None:
        self.page_scan_interval_slots = command.page_scan_interval
        self.page_scan_window_slots = command.page_scan_window
        self._command_complete(command.opcode)

    def _cmd_write_inquiry_scan_activity(
        self, command: cmd.WriteInquiryScanActivity
    ) -> None:
        self.inquiry_scan_interval_slots = command.inquiry_scan_interval
        self.inquiry_scan_window_slots = command.inquiry_scan_window
        self._command_complete(command.opcode)

    def _cmd_write_auth_enable(self, command: cmd.WriteAuthenticationEnable) -> None:
        self.authentication_enable = bool(command.authentication_enable)
        self._command_complete(command.opcode)

    def _cmd_write_ssp_mode(self, command: cmd.WriteSimplePairingMode) -> None:
        self.simple_pairing_mode = bool(command.simple_pairing_mode)
        self._command_complete(command.opcode)

    def _cmd_write_sc_support(
        self, command: cmd.WriteSecureConnectionsHostSupport
    ) -> None:
        self.secure_connections = bool(command.secure_connections_host_support)
        self._command_complete(command.opcode)

    def _cmd_noop_complete(self, command: HciCommand) -> None:
        self._command_complete(command.opcode)

    def _cmd_read_bd_addr(self, command: cmd.ReadBdAddr) -> None:
        self._command_complete(
            command.opcode, b"\x00" + self._bd_addr.to_hci_bytes()
        )

    def _cmd_read_local_name(self, command: cmd.ReadLocalName) -> None:
        raw = self.local_name.encode("utf-8")[:247]
        self._command_complete(
            command.opcode, b"\x00" + raw + b"\x00" * (248 - len(raw))
        )

    # -- inquiry

    def _cmd_inquiry(self, command: cmd.Inquiry) -> None:
        if self._inquiry_active:
            self._command_status(command.opcode, ErrorCode.COMMAND_DISALLOWED)
            return
        self._command_status(command.opcode)
        self._inquiry_active = True
        duration = command.inquiry_length * 1.28
        self.medium.start_inquiry(
            self, duration, self._on_inquiry_response, self._on_inquiry_complete
        )

    def _cmd_write_inquiry_mode(self, command: cmd.WriteInquiryMode) -> None:
        self.inquiry_mode = command.inquiry_mode
        self._command_complete(command.opcode)

    def _on_inquiry_response(self, response) -> None:
        if not self._inquiry_active:
            return
        if self.inquiry_mode == 2:
            from repro.hci.eir import build_eir

            self._send_event(
                evt.ExtendedInquiryResult(
                    num_responses=1,
                    bd_addr=response.bd_addr,
                    page_scan_repetition_mode=1,
                    reserved=0,
                    class_of_device=response.class_of_device,
                    clock_offset=response.clock_offset,
                    rssi=0xC8,  # -56 dBm, two's complement
                    extended_inquiry_response=build_eir(name=response.name),
                )
            )
            return
        self._send_event(
            evt.InquiryResult(
                num_responses=1,
                bd_addr=response.bd_addr,
                page_scan_repetition_mode=1,
                reserved=b"\x00\x00",
                class_of_device=response.class_of_device,
                clock_offset=response.clock_offset,
            )
        )

    def _on_inquiry_complete(self) -> None:
        if not self._inquiry_active:
            return
        self._inquiry_active = False
        self._send_event(evt.InquiryComplete(status=0))

    def _cmd_inquiry_cancel(self, command: cmd.InquiryCancel) -> None:
        self._inquiry_active = False
        self._command_complete(command.opcode)

    # -- connection establishment

    def _cmd_create_connection(self, command: cmd.CreateConnection) -> None:
        target = command.bd_addr
        if self._link_for_addr(target) is not None:
            self._command_status(command.opcode, ErrorCode.CONNECTION_ALREADY_EXISTS)
            return
        self._command_status(command.opcode)
        self._pending_create[target] = True
        if self.obs is not None:
            self._page_spans[target] = self.obs.spans.begin(
                "page_procedure", source=self.name, target=str(target)
            )
        self.medium.page(
            self,
            target,
            self.page_timeout_s,
            lambda link: self._on_page_result(target, link),
        )

    def _finish_page_span(self, target: BdAddr, outcome: str) -> None:
        span = self._page_spans.pop(target, None)
        if span is not None and self.obs is not None:
            span.set_attr("outcome", outcome)
            self.obs.spans.finish(span)

    def _on_page_result(self, target: BdAddr, phys: Optional[PhysicalLink]) -> None:
        if not self._pending_create.pop(target, False):
            self._finish_page_span(target, "cancelled")
            return  # cancelled
        self._finish_page_span(
            target, "timeout" if phys is None else "connected"
        )
        if phys is None:
            self._send_event(
                evt.ConnectionComplete(
                    status=ErrorCode.PAGE_TIMEOUT,
                    connection_handle=0,
                    bd_addr=target,
                    link_type=LinkType.ACL,
                    encryption_enabled=0,
                )
            )
            return
        link = self._new_link(
            peer_addr=target,
            phys=phys,
            is_initiator=True,
            state=LinkState.AWAITING_ACCEPT,
        )
        link.accept_timer = self.simulator.schedule(
            self.CONNECTION_ACCEPT_TIMEOUT, self._accept_timeout, link
        )

    def _cmd_create_connection_cancel(
        self, command: cmd.CreateConnectionCancel
    ) -> None:
        self._pending_create.pop(command.bd_addr, None)
        self._command_complete(
            command.opcode, b"\x00" + command.bd_addr.to_hci_bytes()
        )

    def _accept_timeout(self, link: AclLink) -> None:
        if link.state is LinkState.AWAITING_ACCEPT:
            self._send_event(
                evt.ConnectionComplete(
                    status=ErrorCode.CONNECTION_ACCEPT_TIMEOUT,
                    connection_handle=0,
                    bd_addr=link.peer_addr,
                    link_type=LinkType.ACL,
                    encryption_enabled=0,
                )
            )
            self._teardown(link, ErrorCode.CONNECTION_ACCEPT_TIMEOUT, emit=False)

    def on_page_reached(self, phys: PhysicalLink, initiator) -> None:
        """Radio callback: someone paged us and the medium picked us."""
        link = self._new_link(
            peer_addr=initiator.bd_addr,
            phys=phys,
            is_initiator=False,
            state=LinkState.PENDING_ACCEPT,
            peer_cod=initiator.class_of_device_value,
        )
        self._send_event(
            evt.ConnectionRequest(
                bd_addr=link.peer_addr,
                class_of_device=link.peer_cod,
                link_type=LinkType.ACL,
            )
        )
        link.accept_timer = self.simulator.schedule(
            self.CONNECTION_ACCEPT_TIMEOUT, self._host_accept_timeout, link
        )

    def _host_accept_timeout(self, link: AclLink) -> None:
        if link.state is LinkState.PENDING_ACCEPT:
            self._send_lmp(
                link, lmp.LmpConnectionRejected(ErrorCode.CONNECTION_ACCEPT_TIMEOUT)
            )
            self._teardown(link, ErrorCode.CONNECTION_ACCEPT_TIMEOUT, emit=False)

    def _cmd_accept_connection(self, command: cmd.AcceptConnectionRequest) -> None:
        link = self._link_for_addr(command.bd_addr, state=LinkState.PENDING_ACCEPT)
        if link is None:
            self._command_status(
                command.opcode, ErrorCode.UNKNOWN_CONNECTION_IDENTIFIER
            )
            return
        self._command_status(command.opcode)
        self._cancel_timer(link, "accept_timer")
        link.state = LinkState.CONNECTED
        self._send_lmp(link, lmp.LmpConnectionAccepted(self.class_of_device))
        self._send_lmp(
            link,
            lmp.LmpFeaturesInfo(
                self.simple_pairing_mode, secure_auth=self.secure_auth_enabled
            ),
        )
        self._send_event(
            evt.ConnectionComplete(
                status=0,
                connection_handle=link.handle,
                bd_addr=link.peer_addr,
                link_type=LinkType.ACL,
                encryption_enabled=0,
            )
        )
        self._start_supervision(link)

    def _cmd_reject_connection(self, command: cmd.RejectConnectionRequest) -> None:
        link = self._link_for_addr(command.bd_addr, state=LinkState.PENDING_ACCEPT)
        if link is None:
            self._command_status(
                command.opcode, ErrorCode.UNKNOWN_CONNECTION_IDENTIFIER
            )
            return
        self._command_status(command.opcode)
        self._send_lmp(link, lmp.LmpConnectionRejected(command.reason))
        self._teardown(link, command.reason, emit=False)

    def _cmd_disconnect(self, command: cmd.Disconnect) -> None:
        link = self._links_by_handle.get(command.connection_handle)
        if link is None:
            self._command_status(
                command.opcode, ErrorCode.UNKNOWN_CONNECTION_IDENTIFIER
            )
            return
        self._command_status(command.opcode)
        self._send_lmp(link, lmp.LmpDetach(command.reason))
        self._send_event(
            evt.DisconnectionComplete(
                status=0,
                connection_handle=link.handle,
                reason=ErrorCode.CONNECTION_TERMINATED_BY_LOCAL_HOST,
            )
        )
        self._teardown(link, command.reason, emit=False)

    # -- authentication & pairing entry points

    def _cmd_authentication_requested(
        self, command: cmd.AuthenticationRequested
    ) -> None:
        link = self._links_by_handle.get(command.connection_handle)
        if link is None or link.state is not LinkState.CONNECTED:
            self._command_status(
                command.opcode, ErrorCode.UNKNOWN_CONNECTION_IDENTIFIER
            )
            return
        self._command_status(command.opcode)
        link.auth_requested_by_host = True
        self._request_link_key(
            link.peer_addr, lambda key: self._auth_key_ready(link, key)
        )

    def _auth_key_ready(self, link: AclLink, key: Optional[LinkKey]) -> None:
        if link.state is not LinkState.CONNECTED:
            return
        if key is None:
            if self.simple_pairing_mode and link.peer_ssp_supported:
                self._start_ssp(link, role="initiator")
            else:
                self._start_legacy_pairing(link)
            return
        # Verifier path: challenge the peer.
        au_rand = bytes(self._rng.getrandbits(8) for _ in range(16))
        secure = self.secure_auth_enabled and link.peer_secure_auth
        link.auth = AuthSession(
            role="verifier",
            link_key=key,
            au_rand=au_rand,
            secure=secure,
            local_rand=au_rand,
        )
        link.link_key = key
        link.auth.timer = self.simulator.schedule(
            self.LMP_RESPONSE_TIMEOUT, self._lmp_response_timeout, link
        )
        self._m_auth_rounds.inc()
        if secure:
            self._send_lmp(link, lmp.LmpAuRandSC(au_rand))
        else:
            self._send_lmp(link, lmp.LmpAuRand(au_rand))

    def _lmp_response_timeout(self, link: AclLink) -> None:
        """The peer never answered our challenge — drop, *without* an
        authentication failure (the property the extraction attack
        relies on to keep the victim's stored key alive)."""
        if link.auth is None or link.auth.role != "verifier":
            return
        if link.auth_requested_by_host:
            self._send_event(
                evt.AuthenticationComplete(
                    status=ErrorCode.LMP_RESPONSE_TIMEOUT,
                    connection_handle=link.handle,
                )
            )
        self._send_lmp(link, lmp.LmpDetach(ErrorCode.LMP_RESPONSE_TIMEOUT))
        self._teardown(link, ErrorCode.LMP_RESPONSE_TIMEOUT)

    def _request_link_key(
        self, peer: BdAddr, continuation: Callable[[Optional[LinkKey]], None]
    ) -> None:
        """Ask the host for a stored key; continue when it answers."""
        self._pending_key_req[peer] = continuation
        self._send_event(evt.LinkKeyRequest(bd_addr=peer))

    def _cmd_link_key_reply(self, command: cmd.LinkKeyRequestReply) -> None:
        continuation = self._pending_key_req.pop(command.bd_addr, None)
        self._command_complete(
            command.opcode, b"\x00" + command.bd_addr.to_hci_bytes()
        )
        if continuation is not None:
            continuation(command.link_key)

    def _cmd_link_key_negative_reply(
        self, command: cmd.LinkKeyRequestNegativeReply
    ) -> None:
        continuation = self._pending_key_req.pop(command.bd_addr, None)
        self._command_complete(
            command.opcode, b"\x00" + command.bd_addr.to_hci_bytes()
        )
        if continuation is not None:
            continuation(None)

    def _ssp_keypair(self, curve: CurveParams) -> EccKeyPair:
        """The controller's persistent ECDH key pair for a curve."""
        pair = self._ssp_keypairs.get(curve.name)
        if pair is None:
            pair = generate_keypair(curve, self._rng)
            self._ssp_keypairs[curve.name] = pair
        return pair

    # -- legacy PIN pairing

    def _start_legacy_pairing(self, link: AclLink) -> None:
        """Begin E22/E21 PIN pairing (pre-2.1 peers, or SSP disabled)."""
        link.legacy = LegacyPairingSession(role="initiator")
        self._pending_pin[link.peer_addr] = (
            lambda pin: self._legacy_pin_ready(link, pin)
        )
        self._send_event(evt.PinCodeRequest(bd_addr=link.peer_addr))

    def _legacy_pin_ready(self, link: AclLink, pin: Optional[bytes]) -> None:
        session = link.legacy
        if session is None or link.state is not LinkState.CONNECTED:
            return
        if pin is None:
            link.legacy = None
            if link.auth_requested_by_host:
                self._send_event(
                    evt.AuthenticationComplete(
                        status=ErrorCode.PAIRING_NOT_ALLOWED,
                        connection_handle=link.handle,
                    )
                )
            return
        session.pin = pin
        if session.role == "initiator":
            session.in_rand = bytes(self._rng.getrandbits(8) for _ in range(16))
            # K_init binds the *responder's* address on both sides.
            session.k_init = e22(session.in_rand, pin, link.peer_addr)
            self._send_lmp(link, lmp.LmpInRand(session.in_rand))
        else:
            session.k_init = e22(session.in_rand, pin, self._bd_addr)
        self._legacy_send_comb(link)
        self._legacy_maybe_derive(link)

    def _legacy_send_comb(self, link: AclLink) -> None:
        session = link.legacy
        if session.comb_sent or session.k_init is None:
            return
        session.comb_sent = True
        session.local_lk_rand = bytes(
            self._rng.getrandbits(8) for _ in range(16)
        )
        masked = bytes(
            a ^ b
            for a, b in zip(session.local_lk_rand, session.k_init.value)
        )
        self._send_lmp(link, lmp.LmpCombKey(masked))

    def _lmp_in_rand(self, link: AclLink, pdu: lmp.LmpInRand) -> None:
        """Responder side: a legacy pairing is being initiated at us."""
        link.legacy = LegacyPairingSession(role="responder", in_rand=pdu.rand)
        self._pending_pin[link.peer_addr] = (
            lambda pin: self._legacy_responder_pin(link, pin)
        )
        self._send_event(evt.PinCodeRequest(bd_addr=link.peer_addr))

    def _legacy_responder_pin(self, link: AclLink, pin: Optional[bytes]) -> None:
        if pin is None:
            link.legacy = None
            self._send_lmp(
                link,
                lmp.LmpNotAccepted("LMP_in_rand", ErrorCode.PAIRING_NOT_ALLOWED),
            )
            return
        self._legacy_pin_ready(link, pin)

    def _lmp_comb_key(self, link: AclLink, pdu: lmp.LmpCombKey) -> None:
        session = link.legacy
        if session is None:
            return
        session.peer_masked_rand = pdu.masked_rand
        # Make sure our own contribution goes out (responder path).
        if session.k_init is not None:
            self._legacy_send_comb(link)
        self._legacy_maybe_derive(link)

    def _legacy_maybe_derive(self, link: AclLink) -> None:
        session = link.legacy
        if (
            session is None
            or session.k_init is None
            or session.local_lk_rand is None
            or session.peer_masked_rand is None
            or session.link_key is not None
        ):
            return
        peer_lk_rand = bytes(
            a ^ b
            for a, b in zip(session.peer_masked_rand, session.k_init.value)
        )
        local_part = e21(session.local_lk_rand, self._bd_addr)
        peer_part = e21(peer_lk_rand, link.peer_addr)
        session.link_key = LinkKey(
            bytes(a ^ b for a, b in zip(local_part.value, peer_part.value))
        )
        link.link_key = session.link_key
        if session.role == "initiator":
            # Verify the new key with a challenge before trusting it.
            au_rand = bytes(self._rng.getrandbits(8) for _ in range(16))
            link.auth = AuthSession(
                role="verifier", link_key=session.link_key, au_rand=au_rand
            )
            link.auth.timer = self.simulator.schedule(
                self.LMP_RESPONSE_TIMEOUT, self._lmp_response_timeout, link
            )
            self._m_auth_rounds.inc()
            self._send_lmp(link, lmp.LmpAuRand(au_rand))

    def _legacy_finalize(self, link: AclLink, notify_peer: bool) -> None:
        session = link.legacy
        if session is None or session.link_key is None:
            return
        if notify_peer:
            self._send_lmp(link, lmp.LmpLegacyComplete())
        self._send_event(
            evt.LinkKeyNotification(
                bd_addr=link.peer_addr,
                link_key=session.link_key,
                key_type=LinkKeyType.COMBINATION,
            )
        )
        if link.auth_requested_by_host:
            self._send_event(
                evt.AuthenticationComplete(status=0, connection_handle=link.handle)
            )
        link.legacy = None

    def _lmp_legacy_complete(self, link: AclLink, pdu: lmp.LmpLegacyComplete) -> None:
        self._legacy_finalize(link, notify_peer=False)

    def _cmd_pin_code_reply(self, command: cmd.PinCodeRequestReply) -> None:
        continuation = self._pending_pin.pop(command.bd_addr, None)
        self._command_complete(
            command.opcode, b"\x00" + command.bd_addr.to_hci_bytes()
        )
        if continuation is not None:
            continuation(command.pin[: command.pin_length])

    def _cmd_pin_code_negative_reply(
        self, command: cmd.PinCodeRequestNegativeReply
    ) -> None:
        continuation = self._pending_pin.pop(command.bd_addr, None)
        self._command_complete(
            command.opcode, b"\x00" + command.bd_addr.to_hci_bytes()
        )
        if continuation is not None:
            continuation(None)

    def _lmp_features_info(self, link: AclLink, pdu: lmp.LmpFeaturesInfo) -> None:
        link.peer_ssp_supported = pdu.ssp_supported
        link.peer_secure_auth = pdu.secure_auth

    # -- SSP

    def _start_ssp(self, link: AclLink, role: str) -> None:
        curve = P256 if self.secure_connections else P192
        link.ssp = SspSession(role=role, curve=curve)
        self._pending_io_req[link.peer_addr] = (
            lambda io, oob, auth: self._ssp_local_io_ready(link, io, oob, auth)
        )
        self._send_event(evt.IoCapabilityRequest(bd_addr=link.peer_addr))

    def _ssp_local_io_ready(self, link: AclLink, io: int, oob: int, auth: int) -> None:
        session = link.ssp
        if session is None:
            return
        session.local_io, session.local_oob, session.local_auth_req = io, oob, auth
        if session.role == "initiator":
            self._send_lmp(link, lmp.LmpIoCapabilityReq(io, oob, auth))
        else:
            self._send_lmp(link, lmp.LmpIoCapabilityRes(io, oob, auth))
            # Responder kicks off the public key exchange reply path on
            # receipt of the initiator's key (below).

    def _cmd_io_capability_reply(self, command: cmd.IoCapabilityRequestReply) -> None:
        continuation = self._pending_io_req.pop(command.bd_addr, None)
        self._command_complete(
            command.opcode, b"\x00" + command.bd_addr.to_hci_bytes()
        )
        if continuation is not None:
            continuation(
                command.io_capability,
                command.oob_data_present,
                command.authentication_requirements,
            )

    def _cmd_io_capability_negative_reply(
        self, command: cmd.IoCapabilityRequestNegativeReply
    ) -> None:
        self._command_complete(
            command.opcode, b"\x00" + command.bd_addr.to_hci_bytes()
        )
        link = self._link_for_addr(command.bd_addr)
        if link is not None and link.ssp is not None:
            self._ssp_fail(link, ErrorCode.PAIRING_NOT_ALLOWED)

    def _cmd_user_confirmation_reply(
        self, command: cmd.UserConfirmationRequestReply
    ) -> None:
        continuation = self._pending_confirm.pop(command.bd_addr, None)
        self._command_complete(
            command.opcode, b"\x00" + command.bd_addr.to_hci_bytes()
        )
        if continuation is not None:
            continuation(True)

    def _cmd_user_confirmation_negative_reply(
        self, command: cmd.UserConfirmationRequestNegativeReply
    ) -> None:
        continuation = self._pending_confirm.pop(command.bd_addr, None)
        self._command_complete(
            command.opcode, b"\x00" + command.bd_addr.to_hci_bytes()
        )
        if continuation is not None:
            continuation(False)

    def _cmd_user_passkey_reply(self, command: cmd.UserPasskeyRequestReply) -> None:
        continuation = self._pending_passkey.pop(command.bd_addr, None)
        self._command_complete(
            command.opcode, b"\x00" + command.bd_addr.to_hci_bytes()
        )
        if continuation is not None:
            continuation(command.numeric_value)

    def _cmd_user_passkey_negative_reply(
        self, command: cmd.UserPasskeyRequestNegativeReply
    ) -> None:
        continuation = self._pending_passkey.pop(command.bd_addr, None)
        self._command_complete(
            command.opcode, b"\x00" + command.bd_addr.to_hci_bytes()
        )
        if continuation is not None:
            continuation(None)

    # -- encryption

    def _cmd_set_connection_encryption(
        self, command: cmd.SetConnectionEncryption
    ) -> None:
        link = self._links_by_handle.get(command.connection_handle)
        if link is None:
            self._command_status(
                command.opcode, ErrorCode.UNKNOWN_CONNECTION_IDENTIFIER
            )
            return
        if command.encryption_enable and (link.link_key is None or link.aco is None):
            self._command_status(command.opcode, ErrorCode.INSUFFICIENT_SECURITY)
            return
        self._command_status(command.opcode)
        if not command.encryption_enable:
            link.encryption_enabled = False
            self._send_lmp(link, lmp.LmpStopEncryption())
            self._send_event(
                evt.EncryptionChange(
                    status=0, connection_handle=link.handle, encryption_enabled=0
                )
            )
            return
        # Negotiate the encryption key size first (the KNOB surface).
        proposal = min(16, self.max_encryption_key_size)
        self._send_lmp(link, lmp.LmpEncryptionKeySizeReq(proposal))

    def _lmp_encryption_key_size_req(
        self, link: AclLink, pdu: lmp.LmpEncryptionKeySizeReq
    ) -> None:
        size = min(pdu.size, self.max_encryption_key_size)
        if size < self.min_encryption_key_size:
            self._send_lmp(link, lmp.LmpEncryptionKeySizeRes(size, accepted=False))
            return
        link.encryption_key_size = size
        self._send_lmp(link, lmp.LmpEncryptionKeySizeRes(size, accepted=True))

    def _lmp_encryption_key_size_res(
        self, link: AclLink, pdu: lmp.LmpEncryptionKeySizeRes
    ) -> None:
        if not pdu.accepted or pdu.size < self.min_encryption_key_size:
            self._send_event(
                evt.EncryptionChange(
                    status=ErrorCode.INSUFFICIENT_SECURITY,
                    connection_handle=link.handle,
                    encryption_enabled=0,
                )
            )
            return
        link.encryption_key_size = pdu.size
        if link.link_key is None or link.aco is None:
            return
        en_rand = bytes(self._rng.getrandbits(8) for _ in range(16))
        kc = e3(link.link_key, en_rand, link.aco)
        link.kc = reduce_key_entropy(kc, link.encryption_key_size)
        link.encryption_enabled = True
        link.tx_seq = link.rx_seq = 0
        self._send_lmp(link, lmp.LmpStartEncryption(en_rand))
        self._send_event(
            evt.EncryptionChange(
                status=0, connection_handle=link.handle, encryption_enabled=1
            )
        )

    # -- stored link keys (the controller's tiny local cache)

    def _cmd_write_stored_link_key(self, command: cmd.WriteStoredLinkKey) -> None:
        written = 0
        if len(self.stored_link_keys) < self.stored_link_key_capacity or (
            command.bd_addr in self.stored_link_keys
        ):
            self.stored_link_keys[command.bd_addr] = command.link_key
            written = 1
        self._command_complete(command.opcode, b"\x00" + bytes([written]))

    def _cmd_read_stored_link_key(self, command: cmd.ReadStoredLinkKey) -> None:
        if command.read_all_flag:
            selected = dict(self.stored_link_keys)
        else:
            selected = {
                addr: key
                for addr, key in self.stored_link_keys.items()
                if addr == command.bd_addr
            }
        for addr, key in selected.items():
            self._send_event(
                evt.ReturnLinkKeys(num_keys=1, bd_addr=addr, link_key=key)
            )
        self._command_complete(
            command.opcode,
            b"\x00"
            + self.stored_link_key_capacity.to_bytes(2, "little")
            + len(selected).to_bytes(2, "little"),
        )

    def _cmd_delete_stored_link_key(self, command: cmd.DeleteStoredLinkKey) -> None:
        if command.delete_all_flag:
            deleted = len(self.stored_link_keys)
            self.stored_link_keys.clear()
        else:
            deleted = int(
                self.stored_link_keys.pop(command.bd_addr, None) is not None
            )
        self._command_complete(
            command.opcode, b"\x00" + deleted.to_bytes(2, "little")
        )

    # -- SCO audio channels

    def _cmd_setup_synchronous_connection(
        self, command: cmd.SetupSynchronousConnection
    ) -> None:
        link = self._links_by_handle.get(command.connection_handle)
        if link is None or link.state is not LinkState.CONNECTED:
            self._command_status(
                command.opcode, ErrorCode.UNKNOWN_CONNECTION_IDENTIFIER
            )
            return
        self._command_status(command.opcode)
        self._send_lmp(link, lmp.LmpScoSetup(accept=False))

    def _sco_complete_event(self, link: AclLink) -> None:
        link.sco_handle = link.handle | 0x0100
        self._send_event(
            evt.SynchronousConnectionComplete(
                status=0,
                connection_handle=link.sco_handle,
                bd_addr=link.peer_addr,
                link_type=LinkType.ESCO,
                transmission_interval=6,
                retransmission_window=1,
                rx_packet_length=60,
                tx_packet_length=60,
                air_mode=0x02,  # CVSD
            )
        )

    def _lmp_sco_setup(self, link: AclLink, pdu: lmp.LmpScoSetup) -> None:
        if not pdu.accept:
            # Request: confirm back and bring our side up.
            self._send_lmp(link, lmp.LmpScoSetup(accept=True))
        self._sco_complete_event(link)

    # -- remote name

    def _cmd_remote_name_request(self, command: cmd.RemoteNameRequest) -> None:
        self._command_status(command.opcode)
        target = command.bd_addr
        for peer in self.medium._controllers:  # noqa: SLF001 - simulation introspection
            if peer is self or peer.bd_addr != target:
                continue
            if not (peer.page_scan_enabled or peer.inquiry_scan_enabled):
                continue
            self.simulator.schedule(
                0.1,
                self._send_event,
                evt.RemoteNameRequestComplete(
                    status=0, bd_addr=target, remote_name=peer.local_name
                ),
            )
            return
        self.simulator.schedule(
            self.page_timeout_s,
            self._send_event,
            evt.RemoteNameRequestComplete(
                status=ErrorCode.PAGE_TIMEOUT, bd_addr=target, remote_name=""
            ),
        )

    _COMMAND_HANDLERS: Dict[int, Callable] = {}

    # ----------------------------------------------------------------- links

    def _new_link(
        self,
        peer_addr: BdAddr,
        phys: PhysicalLink,
        is_initiator: bool,
        state: LinkState,
        peer_cod: int = 0,
    ) -> AclLink:
        handle = self._next_handle
        self._next_handle += 1
        link = AclLink(
            handle=handle,
            peer_addr=peer_addr,
            phys=phys,
            is_initiator=is_initiator,
            state=state,
            peer_cod=peer_cod,
            last_activity=self.simulator.now,
        )
        self._links_by_handle[handle] = link
        self._links_by_phys[phys.link_id] = link
        return link

    def _link_for_addr(
        self, addr: BdAddr, state: Optional[LinkState] = None
    ) -> Optional[AclLink]:
        for link in self._links_by_handle.values():
            if link.peer_addr == addr and (state is None or link.state is state):
                return link
        return None

    def _cancel_timer(self, link: AclLink, attr: str) -> None:
        timer = getattr(link, attr)
        if timer is not None:
            timer.cancel()
            setattr(link, attr, None)

    def _teardown(self, link: AclLink, reason: int, emit: bool = True) -> None:
        if link.state is LinkState.CLOSED:
            return
        was_connected = link.state is LinkState.CONNECTED
        was_awaiting = link.state is LinkState.AWAITING_ACCEPT
        link.state = LinkState.CLOSED
        self._cancel_timer(link, "accept_timer")
        if link.auth is not None and link.auth.timer is not None:
            link.auth.timer.cancel()
        self._links_by_handle.pop(link.handle, None)
        self._links_by_phys.pop(link.phys.link_id, None)
        self.medium.drop_link(link.phys, reason)
        if not emit:
            return
        if was_connected:
            self._send_event(
                evt.DisconnectionComplete(
                    status=0, connection_handle=link.handle, reason=reason
                )
            )
        elif was_awaiting:
            # The peer (or the medium) killed a connection we were still
            # waiting on: surface the failed Create_Connection.
            self._send_event(
                evt.ConnectionComplete(
                    status=reason or ErrorCode.UNSPECIFIED_ERROR,
                    connection_handle=0,
                    bd_addr=link.peer_addr,
                    link_type=LinkType.ACL,
                    encryption_enabled=0,
                )
            )

    def on_link_dropped(self, phys: PhysicalLink, reason: int) -> None:
        """Radio callback: the physical link died underneath us."""
        link = self._links_by_phys.get(phys.link_id)
        if link is not None:
            self._teardown(link, reason)

    def _start_supervision(self, link: AclLink) -> None:
        link.last_activity = self.simulator.now
        self._supervision_tick(link)

    def _supervision_tick(self, link: AclLink) -> None:
        if link.state is not LinkState.CONNECTED:
            return
        idle = self.simulator.now - link.last_activity
        if idle >= self.supervision_timeout_s:
            self._teardown(link, ErrorCode.CONNECTION_TIMEOUT)
            return
        self.simulator.schedule(
            self.supervision_timeout_s / 4, self._supervision_tick, link
        )

    # ------------------------------------------------------------- air frames

    def _send_lmp(self, link: AclLink, pdu: lmp.LmpPdu) -> None:
        link.last_activity = self.simulator.now
        self._m_lmp_tx.inc()
        self.tracer.emit(self.simulator.now, self.name, "lmp-tx", pdu.name)
        self.medium.send_frame(link.phys, self, AirFrame(kind="lmp", payload=pdu))

    def on_air_frame(self, phys: PhysicalLink, frame: AirFrame) -> None:
        """Radio callback: a frame arrived on one of our links."""
        link = self._links_by_phys.get(phys.link_id)
        if link is None:
            return
        link.last_activity = self.simulator.now
        if frame.kind == "acl":
            self._handle_acl_from_air(link, frame)
            return
        pdu = frame.payload
        if self.simulator.now < self.lmp_silence_until:
            # controller.lmp_hang fault: the LMP engine is wedged, so
            # link-management PDUs fall on the floor until it recovers
            # (the peer's LMP response timeout does the cleanup).
            self.tracer.emit(
                self.simulator.now,
                self.name,
                "fault",
                f"lmp_hang: ignoring {pdu.name}",
            )
            return
        self._m_lmp_rx.inc()
        self.tracer.emit(self.simulator.now, self.name, "lmp-rx", pdu.name)
        handler = self._LMP_HANDLERS.get(type(pdu))
        if handler is not None:
            handler(self, link, pdu)

    # -- LMP: connection setup

    def _lmp_connection_accepted(
        self, link: AclLink, pdu: lmp.LmpConnectionAccepted
    ) -> None:
        if link.state is not LinkState.AWAITING_ACCEPT:
            return
        self._cancel_timer(link, "accept_timer")
        link.state = LinkState.CONNECTED
        link.peer_cod = pdu.responder_cod
        self._send_lmp(
            link,
            lmp.LmpFeaturesInfo(
                self.simple_pairing_mode, secure_auth=self.secure_auth_enabled
            ),
        )
        self._send_event(
            evt.ConnectionComplete(
                status=0,
                connection_handle=link.handle,
                bd_addr=link.peer_addr,
                link_type=LinkType.ACL,
                encryption_enabled=0,
            )
        )
        self._start_supervision(link)

    def _lmp_connection_rejected(
        self, link: AclLink, pdu: lmp.LmpConnectionRejected
    ) -> None:
        if link.state is not LinkState.AWAITING_ACCEPT:
            return
        self._cancel_timer(link, "accept_timer")
        self._send_event(
            evt.ConnectionComplete(
                status=pdu.reason,
                connection_handle=0,
                bd_addr=link.peer_addr,
                link_type=LinkType.ACL,
                encryption_enabled=0,
            )
        )
        self._teardown(link, pdu.reason, emit=False)

    def _lmp_detach(self, link: AclLink, pdu: lmp.LmpDetach) -> None:
        self._teardown(link, pdu.reason)

    # -- LMP: legacy authentication

    def _lmp_au_rand(self, link: AclLink, pdu: lmp.LmpAuRand) -> None:
        """We are the prover: fetch our key from the host and answer.

        On the victim accessory C this is the moment its host writes
        the plaintext link key into the HCI dump; on the patched
        attacker device the host never answers and the verifier's
        timer eventually kills the link.
        """
        link.auth = AuthSession(role="prover", au_rand=pdu.rand)
        if link.legacy is not None and link.legacy.link_key is not None:
            # Mid-pairing verification of the freshly derived combination
            # key: it never crosses HCI, so answer directly.
            self._prover_key_ready(link, pdu.rand, link.legacy.link_key)
            return
        self._request_link_key(
            link.peer_addr, lambda key: self._prover_key_ready(link, pdu.rand, key)
        )

    def _prover_key_ready(
        self, link: AclLink, au_rand: bytes, key: Optional[LinkKey]
    ) -> None:
        if link.state is not LinkState.CONNECTED:
            return
        if key is None:
            self._send_lmp(
                link,
                lmp.LmpNotAccepted("LMP_au_rand", ErrorCode.PIN_OR_KEY_MISSING),
            )
            return
        link.link_key = key
        sres, aco = e1(key, au_rand, self._bd_addr)
        link.aco = aco
        self._send_lmp(link, lmp.LmpSres(sres))

    def _lmp_sres(self, link: AclLink, pdu: lmp.LmpSres) -> None:
        auth = link.auth
        if auth is None or auth.role != "verifier":
            return
        if auth.timer is not None:
            auth.timer.cancel()
        expected, aco = e1(auth.link_key, auth.au_rand, link.peer_addr)
        if pdu.sres == expected:
            link.aco = aco
            if link.legacy is not None:
                # Legacy pairing verification succeeded: finish it (the
                # finalize path emits Authentication_Complete itself).
                link.auth = None
                self._legacy_finalize(link, notify_peer=True)
                return
            if link.auth_requested_by_host:
                self._send_event(
                    evt.AuthenticationComplete(
                        status=0, connection_handle=link.handle
                    )
                )
            link.auth = None
            return
        if link.auth_requested_by_host:
            self._send_event(
                evt.AuthenticationComplete(
                    status=ErrorCode.AUTHENTICATION_FAILURE,
                    connection_handle=link.handle,
                )
            )
        self._send_lmp(link, lmp.LmpDetach(ErrorCode.AUTHENTICATION_FAILURE))
        self._teardown(link, ErrorCode.AUTHENTICATION_FAILURE)

    # -- Secure Connections mutual authentication (h4/h5)

    def _sc_halves(self, link, key, local_rand, peer_rand):
        """Compute (my SRES half, peer's SRES half, ACO) for this link.

        The piconet master's address and nonce always come first, so
        both ends evaluate identical h4/h5 inputs.
        """
        if link.is_initiator:
            master_addr, slave_addr = self._bd_addr, link.peer_addr
            rand_master, rand_slave = local_rand, peer_rand
        else:
            master_addr, slave_addr = link.peer_addr, self._bd_addr
            rand_master, rand_slave = peer_rand, local_rand
        device_key = h4(key.value, master_addr, slave_addr)
        digest = h5(device_key, rand_master, rand_slave)
        if link.is_initiator:
            return digest[0:4], digest[4:8], digest[8:20]
        return digest[4:8], digest[0:4], digest[8:20]

    def _lmp_au_rand_sc(self, link: AclLink, pdu: lmp.LmpAuRandSC) -> None:
        """Prover side of a mutual authentication.

        The host round trip is identical to the legacy path — the link
        key still crosses HCI in plaintext, so the extraction attack is
        agnostic to which authentication algorithm runs afterwards.
        """
        link.auth = AuthSession(role="prover", secure=True, peer_rand=pdu.rand)
        self._request_link_key(
            link.peer_addr, lambda key: self._sc_prover_key_ready(link, key)
        )

    def _sc_prover_key_ready(self, link: AclLink, key: Optional[LinkKey]) -> None:
        auth = link.auth
        if auth is None or link.state is not LinkState.CONNECTED:
            return
        if key is None:
            self._send_lmp(
                link,
                lmp.LmpNotAccepted("LMP_au_rand", ErrorCode.PIN_OR_KEY_MISSING),
            )
            return
        auth.link_key = key
        link.link_key = key
        auth.local_rand = bytes(self._rng.getrandbits(8) for _ in range(16))
        my_sres, _, _ = self._sc_halves(
            link, key, auth.local_rand, auth.peer_rand
        )
        self._send_lmp(link, lmp.LmpScAuthResponse(auth.local_rand, my_sres))

    def _lmp_sc_auth_response(
        self, link: AclLink, pdu: lmp.LmpScAuthResponse
    ) -> None:
        auth = link.auth
        if auth is None or not auth.secure or auth.role != "verifier":
            return
        if auth.timer is not None:
            auth.timer.cancel()
        auth.peer_rand = pdu.rand
        my_sres, peer_sres, aco = self._sc_halves(
            link, auth.link_key, auth.local_rand, auth.peer_rand
        )
        if pdu.sres != peer_sres:
            if link.auth_requested_by_host:
                self._send_event(
                    evt.AuthenticationComplete(
                        status=ErrorCode.AUTHENTICATION_FAILURE,
                        connection_handle=link.handle,
                    )
                )
            self._send_lmp(link, lmp.LmpDetach(ErrorCode.AUTHENTICATION_FAILURE))
            self._teardown(link, ErrorCode.AUTHENTICATION_FAILURE)
            return
        link.aco = aco
        # Mutuality: hand the prover *our* half so it can verify us.
        self._send_lmp(link, lmp.LmpScAuthConfirm(my_sres))
        if link.auth_requested_by_host:
            self._send_event(
                evt.AuthenticationComplete(status=0, connection_handle=link.handle)
            )
        link.auth = None

    def _lmp_sc_auth_confirm(self, link: AclLink, pdu: lmp.LmpScAuthConfirm) -> None:
        auth = link.auth
        if auth is None or not auth.secure or auth.role != "prover":
            return
        _, peer_sres, aco = self._sc_halves(
            link, auth.link_key, auth.local_rand, auth.peer_rand
        )
        if pdu.sres != peer_sres:
            # The VERIFIER failed to prove key possession -- the check
            # one-way legacy authentication never performs (BIAS).
            self._send_lmp(link, lmp.LmpDetach(ErrorCode.AUTHENTICATION_FAILURE))
            self._teardown(link, ErrorCode.AUTHENTICATION_FAILURE)
            return
        link.aco = aco
        link.auth = None

    def _lmp_not_accepted(self, link: AclLink, pdu: lmp.LmpNotAccepted) -> None:
        if pdu.rejected == "LMP_au_rand" and link.auth is not None:
            if link.auth.timer is not None:
                link.auth.timer.cancel()
            # The peer has no key for us: fall back to pairing.
            if link.auth_requested_by_host:
                self._send_event(
                    evt.AuthenticationComplete(
                        status=ErrorCode.PIN_OR_KEY_MISSING,
                        connection_handle=link.handle,
                    )
                )
            link.auth = None
        elif pdu.rejected == "user_confirmation" and link.ssp is not None:
            self._ssp_fail(link, ErrorCode.AUTHENTICATION_FAILURE, notify_peer=False)
        elif pdu.rejected == "LMP_in_rand" and link.legacy is not None:
            # Peer refused the legacy pairing (no PIN entered).
            link.legacy = None
            if link.auth_requested_by_host:
                self._send_event(
                    evt.AuthenticationComplete(
                        status=pdu.reason, connection_handle=link.handle
                    )
                )

    # -- LMP: secure simple pairing

    def _lmp_io_capability_req(
        self, link: AclLink, pdu: lmp.LmpIoCapabilityReq
    ) -> None:
        self._start_ssp(link, role="responder")
        session = link.ssp
        session.remote_io = pdu.io_capability
        session.remote_oob = pdu.oob_data_present
        session.remote_auth_req = pdu.authentication_requirements
        self._send_event(
            evt.IoCapabilityResponse(
                bd_addr=link.peer_addr,
                io_capability=pdu.io_capability,
                oob_data_present=pdu.oob_data_present,
                authentication_requirements=pdu.authentication_requirements,
            )
        )

    def _lmp_io_capability_res(
        self, link: AclLink, pdu: lmp.LmpIoCapabilityRes
    ) -> None:
        session = link.ssp
        if session is None or session.role != "initiator":
            return
        session.remote_io = pdu.io_capability
        session.remote_oob = pdu.oob_data_present
        session.remote_auth_req = pdu.authentication_requirements
        self._send_event(
            evt.IoCapabilityResponse(
                bd_addr=link.peer_addr,
                io_capability=pdu.io_capability,
                oob_data_present=pdu.oob_data_present,
                authentication_requirements=pdu.authentication_requirements,
            )
        )
        session.keypair = self._ssp_keypair(session.curve)
        self._send_lmp(
            link,
            lmp.LmpEncapsulatedKey(
                session.keypair.public.to_bytes(), session.curve.name
            ),
        )

    def _lmp_encapsulated_key(
        self, link: AclLink, pdu: lmp.LmpEncapsulatedKey
    ) -> None:
        session = link.ssp
        if session is None:
            return
        curve = P256 if pdu.curve == "P-256" else P192
        if curve is not session.curve:
            # Curve mismatch: downgrade to the weaker one (both sides
            # converge because the initiator announced first).
            session.curve = curve
        session.peer_public = EccPoint.from_bytes(session.curve, pdu.public_key)
        session.association = self._ssp_association(session)
        if session.role == "responder":
            session.keypair = self._ssp_keypair(session.curve)
            self._send_lmp(
                link,
                lmp.LmpEncapsulatedKey(
                    session.keypair.public.to_bytes(), session.curve.name
                ),
            )
            if session.association is AssociationModel.PASSKEY_ENTRY:
                self._passkey_begin(link)
                return
            if session.association is AssociationModel.OUT_OF_BAND:
                self._oob_begin(link)
                return
            # Numeric Comparison / Just Works authentication stage 1:
            # responder commits to its nonce.
            session.local_nonce = bytes(
                self._rng.getrandbits(8) for _ in range(16)
            )
            commitment = session.f1(
                session.keypair.public.x_bytes(),
                session.peer_public.x_bytes(),
                session.local_nonce,
                b"\x00",
            )
            self._send_lmp(link, lmp.LmpSimplePairingConfirm(commitment))
        elif session.association is AssociationModel.PASSKEY_ENTRY:
            # Initiator has both public keys: start the passkey UI.
            self._passkey_begin(link)
        elif session.association is AssociationModel.OUT_OF_BAND:
            self._oob_begin(link)

    # -- Out of Band association (NFC-style side channel)

    def _cmd_read_local_oob_data(self, command: cmd.ReadLocalOobData) -> None:
        """Generate (C, R): C commits to our persistent public key."""
        curve = P256 if self.secure_connections else P192
        keypair = self._ssp_keypair(curve)
        self._local_oob_r = bytes(self._rng.getrandbits(8) for _ in range(16))
        f1 = f1_p256 if curve is P256 else f1_p192
        commitment = f1(
            keypair.public.x_bytes(),
            keypair.public.x_bytes(),
            self._local_oob_r,
            b"\x00",
        )
        self._command_complete(
            command.opcode, b"\x00" + commitment + self._local_oob_r
        )

    def _cmd_remote_oob_reply(
        self, command: cmd.RemoteOobDataRequestReply
    ) -> None:
        continuation = self._pending_oob.pop(command.bd_addr, None)
        self._command_complete(
            command.opcode, b"\x00" + command.bd_addr.to_hci_bytes()
        )
        if continuation is not None:
            continuation(command.c, command.r)

    def _cmd_remote_oob_negative_reply(
        self, command: cmd.RemoteOobDataRequestNegativeReply
    ) -> None:
        continuation = self._pending_oob.pop(command.bd_addr, None)
        self._command_complete(
            command.opcode, b"\x00" + command.bd_addr.to_hci_bytes()
        )
        if continuation is not None:
            continuation(None, None)

    def _oob_begin(self, link: AclLink) -> None:
        """Ask the host for the peer's out-of-band (C, R)."""
        self._pending_oob[link.peer_addr] = (
            lambda c, r: self._oob_data_ready(link, c, r)
        )
        self._send_event(evt.RemoteOobDataRequest(bd_addr=link.peer_addr))

    def _oob_data_ready(
        self, link: AclLink, c: Optional[bytes], r: Optional[bytes]
    ) -> None:
        session = link.ssp
        if session is None:
            return
        if c is None or r is None:
            # We hold no OOB data for this peer: participate without
            # verifying (the side that *does* hold data still checks).
            session.peer_r = b"\x00" * 16
            session.local_r = self._local_oob_r or b"\x00" * 16
        else:
            # Verify the received public key against the OOB
            # commitment: the peer computed C over its OWN public key
            # with its own r.
            expected = session.f1(
                session.peer_public.x_bytes(),
                session.peer_public.x_bytes(),
                r,
                b"\x00",
            )
            if expected != c:
                # A MITM substituted its public key: the NFC-carried
                # commitment doesn't match what arrived over the air.
                self._ssp_fail(link, ErrorCode.AUTHENTICATION_FAILURE)
                return
            session.peer_r = r
            session.local_r = self._local_oob_r or b"\x00" * 16
        session.local_nonce = bytes(
            self._rng.getrandbits(8) for _ in range(16)
        )
        if session.role == "initiator":
            self._send_lmp(link, lmp.LmpSimplePairingNumber(session.local_nonce))

    # -- Passkey Entry (the 20-round commitment protocol)

    @staticmethod
    def _ssp_association(session: SspSession) -> AssociationModel:
        if session.local_oob or session.remote_oob:
            # Per spec, OOB is used when either side has received OOB
            # data; a side without data participates unverified (r=0).
            return AssociationModel.OUT_OF_BAND
        if session.role == "initiator":
            initiator_io = IoCapability(session.local_io)
            responder_io = IoCapability(session.remote_io)
        else:
            initiator_io = IoCapability(session.remote_io)
            responder_io = IoCapability(session.local_io)
        return select_association_model(initiator_io, responder_io)

    def _passkey_begin(self, link: AclLink) -> None:
        """Decide displayer/typist and collect the 6-digit passkey."""
        session = link.ssp
        if session.role == "initiator":
            initiator_io = IoCapability(session.local_io)
            responder_io = IoCapability(session.remote_io)
        else:
            initiator_io = IoCapability(session.remote_io)
            responder_io = IoCapability(session.local_io)
        displayer_is_init = passkey_displayer_is_initiator(
            initiator_io, responder_io
        )
        session.displays_passkey = (
            session.role == "initiator"
        ) == displayer_is_init
        if session.displays_passkey:
            self._passkey_set(link, self._rng.randrange(0, 1_000_000))
            self._send_event(
                evt.UserPasskeyNotification(
                    bd_addr=link.peer_addr, passkey=session.passkey
                )
            )
        else:
            self._pending_passkey[link.peer_addr] = (
                lambda value: self._passkey_entered(link, value)
            )
            self._send_event(evt.UserPasskeyRequest(bd_addr=link.peer_addr))

    def _passkey_set(self, link: AclLink, passkey: int) -> None:
        session = link.ssp
        session.passkey = passkey
        session.local_r = passkey.to_bytes(16, "little")
        session.peer_r = session.local_r
        self._passkey_maybe_start(link)
        if session.pending_round_pdu is not None:
            pdu = session.pending_round_pdu
            session.pending_round_pdu = None
            self._lmp_passkey_confirm(link, pdu)

    def _passkey_entered(self, link: AclLink, value: Optional[int]) -> None:
        if link.ssp is None:
            return
        if value is None:
            self._ssp_fail(link, ErrorCode.AUTHENTICATION_FAILURE)
            return
        self._passkey_set(link, value)

    def _passkey_maybe_start(self, link: AclLink) -> None:
        session = link.ssp
        if (
            session.role == "initiator"
            and session.passkey is not None
            and session.peer_public is not None
            and not session.rounds_started
        ):
            session.rounds_started = True
            self._passkey_send_commit(link)

    def _passkey_z(self, session: SspSession) -> bytes:
        bit = (session.passkey >> session.passkey_round) & 1
        return bytes([0x80 | bit])

    def _passkey_send_commit(self, link: AclLink) -> None:
        session = link.ssp
        session.round_local_nonce = bytes(
            self._rng.getrandbits(8) for _ in range(16)
        )
        commitment = session.f1(
            session.keypair.public.x_bytes(),
            session.peer_public.x_bytes(),
            session.round_local_nonce,
            self._passkey_z(session),
        )
        self._send_lmp(
            link, lmp.LmpPasskeyConfirm(session.passkey_round, commitment)
        )

    def _lmp_passkey_confirm(self, link: AclLink, pdu: lmp.LmpPasskeyConfirm) -> None:
        session = link.ssp
        if session is None or session.association is not AssociationModel.PASSKEY_ENTRY:
            return
        if session.passkey is None:
            # Our user hasn't typed the passkey yet: park the round.
            session.pending_round_pdu = pdu
            return
        if pdu.round_index != session.passkey_round:
            self._ssp_fail(link, ErrorCode.AUTHENTICATION_FAILURE)
            return
        session.round_peer_commitment = pdu.commitment
        if session.role == "responder":
            # Answer the initiator's Ca_i with our Cb_i.
            session.rounds_started = True
            self._passkey_send_commit(link)
        else:
            # Got Cb_i: reveal Na_i.
            self._send_lmp(
                link,
                lmp.LmpPasskeyNumber(
                    session.passkey_round, session.round_local_nonce
                ),
            )

    def _lmp_passkey_number(self, link: AclLink, pdu: lmp.LmpPasskeyNumber) -> None:
        session = link.ssp
        if session is None or session.association is not AssociationModel.PASSKEY_ENTRY:
            return
        if pdu.round_index != session.passkey_round:
            self._ssp_fail(link, ErrorCode.AUTHENTICATION_FAILURE)
            return
        expected = session.f1(
            session.peer_public.x_bytes(),
            session.keypair.public.x_bytes(),
            pdu.nonce,
            self._passkey_z(session),
        )
        if expected != session.round_peer_commitment:
            # A MITM (or a typo) guessed this passkey bit wrong.
            self._ssp_fail(link, ErrorCode.AUTHENTICATION_FAILURE)
            return
        session.peer_nonce = pdu.nonce
        session.local_nonce = session.round_local_nonce
        if session.role == "responder":
            self._send_lmp(
                link,
                lmp.LmpPasskeyNumber(
                    session.passkey_round, session.round_local_nonce
                ),
            )
            self._passkey_advance(link)
        else:
            self._passkey_advance(link)
            if link.ssp is not None and not link.ssp.stage2_started:
                if link.ssp.passkey_round < 20:
                    self._passkey_send_commit(link)

    def _passkey_advance(self, link: AclLink) -> None:
        session = link.ssp
        session.passkey_round += 1
        if session.passkey_round >= 20:
            # All 20 bits verified: stage 1 complete, no popup needed.
            session.local_confirmed = True
            session.peer_confirmed = True
            self._ssp_maybe_stage2(link)

    def _lmp_simple_pairing_confirm(
        self, link: AclLink, pdu: lmp.LmpSimplePairingConfirm
    ) -> None:
        session = link.ssp
        if session is None or session.role != "initiator":
            return
        session.peer_commitment = pdu.commitment
        session.local_nonce = bytes(self._rng.getrandbits(8) for _ in range(16))
        self._send_lmp(link, lmp.LmpSimplePairingNumber(session.local_nonce))

    def _lmp_simple_pairing_number(
        self, link: AclLink, pdu: lmp.LmpSimplePairingNumber
    ) -> None:
        session = link.ssp
        if session is None:
            return
        session.peer_nonce = pdu.nonce
        if session.association is AssociationModel.OUT_OF_BAND:
            # OOB stage 1: the commitment was verified via the side
            # channel; the nonce swap completes it with no user action.
            if session.role == "responder":
                if session.local_nonce is None:
                    return  # still waiting for our host's OOB reply
                self._send_lmp(
                    link, lmp.LmpSimplePairingNumber(session.local_nonce)
                )
            session.local_confirmed = True
            session.peer_confirmed = True
            self._ssp_maybe_stage2(link)
            return
        if session.peer_public is None or session.local_nonce is None:
            # The public-key exchange never completed (e.g. the PDU was
            # lost on a degraded channel) yet the peer advanced to the
            # nonce swap — the state machine cannot continue; fail the
            # pairing cleanly instead of wedging or crashing.
            self._ssp_fail(link, ErrorCode.AUTHENTICATION_FAILURE)
            return
        if session.role == "responder":
            # Got Na; reveal Nb, then both sides confirm.
            self._send_lmp(link, lmp.LmpSimplePairingNumber(session.local_nonce))
            self._ssp_request_confirmation(link)
        else:
            # Got Nb; verify the earlier commitment.
            expected = session.f1(
                session.peer_public.x_bytes(),
                session.keypair.public.x_bytes(),
                session.peer_nonce,
                b"\x00",
            )
            if expected != session.peer_commitment:
                self._ssp_fail(link, ErrorCode.AUTHENTICATION_FAILURE)
                return
            self._ssp_request_confirmation(link)

    def _ssp_request_confirmation(self, link: AclLink) -> None:
        session = link.ssp
        if session.role == "initiator":
            pka, pkb = session.keypair.public, session.peer_public
            na, nb = session.local_nonce, session.peer_nonce
        else:
            pka, pkb = session.peer_public, session.keypair.public
            na, nb = session.peer_nonce, session.local_nonce
        session.numeric_value = g_numeric(pka.x_bytes(), pkb.x_bytes(), na, nb)
        self._pending_confirm[link.peer_addr] = (
            lambda accepted: self._ssp_local_confirmation(link, accepted)
        )
        self._send_event(
            evt.UserConfirmationRequest(
                bd_addr=link.peer_addr, numeric_value=session.numeric_value
            )
        )

    def _ssp_local_confirmation(self, link: AclLink, accepted: bool) -> None:
        session = link.ssp
        if session is None:
            return
        if not accepted:
            self._ssp_fail(link, ErrorCode.AUTHENTICATION_FAILURE)
            return
        session.local_confirmed = True
        self._send_lmp(link, lmp.LmpStage1Confirmed())
        self._ssp_maybe_stage2(link)

    def _lmp_stage1_confirmed(
        self, link: AclLink, pdu: lmp.LmpStage1Confirmed
    ) -> None:
        session = link.ssp
        if session is None:
            return
        session.peer_confirmed = True
        self._ssp_maybe_stage2(link)

    def _ssp_maybe_stage2(self, link: AclLink) -> None:
        session = link.ssp
        if not (session.local_confirmed and session.peer_confirmed):
            return
        if session.stage2_started:
            return
        session.stage2_started = True
        session.dhkey = ecdh_shared_secret(
            session.keypair.private, session.peer_public
        )
        if session.pending_peer_check is not None:
            check = session.pending_peer_check
            session.pending_peer_check = None
            self._lmp_dhkey_check(link, lmp.LmpDhkeyCheck(check))
            return
        if session.role == "initiator":
            check = session.f3(
                session.local_nonce,
                session.peer_nonce,
                session.local_r,
                io_cap_bytes(
                    IoCapability(session.local_io),
                    bool(session.local_oob),
                    session.local_auth_req,
                ),
                self._bd_addr,
                link.peer_addr,
            )
            self._send_lmp(link, lmp.LmpDhkeyCheck(check))

    def _lmp_dhkey_check(self, link: AclLink, pdu: lmp.LmpDhkeyCheck) -> None:
        session = link.ssp
        if session is None:
            return
        if session.dhkey is None:
            # Stage 2 hasn't started locally (our user hasn't confirmed
            # yet); park the peer's check until it does.
            session.pending_peer_check = pdu.check
            return
        expected = session.f3(
            session.peer_nonce,
            session.local_nonce,
            session.peer_r,
            io_cap_bytes(
                IoCapability(session.remote_io),
                bool(session.remote_oob),
                session.remote_auth_req,
            ),
            link.peer_addr,
            self._bd_addr,
        )
        if pdu.check != expected:
            self._ssp_fail(link, ErrorCode.AUTHENTICATION_FAILURE)
            return
        if session.role == "responder":
            check = session.f3(
                session.local_nonce,
                session.peer_nonce,
                session.local_r,
                io_cap_bytes(
                    IoCapability(session.local_io),
                    bool(session.local_oob),
                    session.local_auth_req,
                ),
                self._bd_addr,
                link.peer_addr,
            )
            self._send_lmp(link, lmp.LmpDhkeyCheck(check))
        self._ssp_complete(link)

    def _ssp_complete(self, link: AclLink) -> None:
        session = link.ssp
        if session.role == "initiator":
            link_key = session.f2(
                session.local_nonce, session.peer_nonce, self._bd_addr, link.peer_addr
            )
        else:
            link_key = session.f2(
                session.peer_nonce, session.local_nonce, link.peer_addr, self._bd_addr
            )
        link.link_key = link_key
        # An authenticated key requires a MITM-protected association
        # model; Just Works always yields an unauthenticated key.
        unauthenticated = (
            session.association is AssociationModel.JUST_WORKS
            if session.association is not None
            else session.just_works
        )
        if session.curve is P256:
            key_type = (
                LinkKeyType.UNAUTHENTICATED_COMBINATION_P256
                if unauthenticated
                else LinkKeyType.AUTHENTICATED_COMBINATION_P256
            )
        else:
            key_type = (
                LinkKeyType.UNAUTHENTICATED_COMBINATION_P192
                if unauthenticated
                else LinkKeyType.AUTHENTICATED_COMBINATION_P192
            )
        # SSP also yields an ACO equivalent for encryption startup.
        link.aco = session.dhkey[:12]
        self._send_event(evt.SimplePairingComplete(status=0, bd_addr=link.peer_addr))
        self._send_event(
            evt.LinkKeyNotification(
                bd_addr=link.peer_addr, link_key=link_key, key_type=key_type
            )
        )
        if link.auth_requested_by_host:
            self._send_event(
                evt.AuthenticationComplete(status=0, connection_handle=link.handle)
            )
        link.ssp = None

    def _ssp_fail(
        self, link: AclLink, reason: int, notify_peer: bool = True
    ) -> None:
        if link.ssp is None:
            return
        link.ssp = None
        if notify_peer:
            self._send_lmp(link, lmp.LmpNotAccepted("user_confirmation", reason))
        self._send_event(
            evt.SimplePairingComplete(status=reason, bd_addr=link.peer_addr)
        )
        if link.auth_requested_by_host:
            self._send_event(
                evt.AuthenticationComplete(
                    status=reason, connection_handle=link.handle
                )
            )

    # -- LMP: encryption

    def _lmp_start_encryption(
        self, link: AclLink, pdu: lmp.LmpStartEncryption
    ) -> None:
        if link.link_key is None or link.aco is None:
            return
        kc = e3(link.link_key, pdu.en_rand, link.aco)
        link.kc = reduce_key_entropy(kc, link.encryption_key_size)
        link.encryption_enabled = True
        link.tx_seq = link.rx_seq = 0
        self._send_event(
            evt.EncryptionChange(
                status=0, connection_handle=link.handle, encryption_enabled=1
            )
        )

    def _lmp_stop_encryption(self, link: AclLink, pdu: lmp.LmpStopEncryption) -> None:
        link.encryption_enabled = False
        self._send_event(
            evt.EncryptionChange(
                status=0, connection_handle=link.handle, encryption_enabled=0
            )
        )

    # -- ACL data path

    def _master_addr(self, link: AclLink) -> BdAddr:
        """The piconet master's address keys the E0 clock input."""
        if link.is_initiator:
            return self._bd_addr
        return link.peer_addr

    def _handle_acl_from_host(self, packet: HciAclData) -> None:
        link = self._links_by_handle.get(packet.handle)
        if link is None or link.state is not LinkState.CONNECTED:
            return
        data = packet.data
        encrypted = False
        if link.encryption_enabled and link.kc is not None:
            clock = (1 if link.is_initiator else 2) << 24 | link.tx_seq
            data = e0_encrypt(link.kc, self._master_addr(link), clock, data)
            link.tx_seq += 1
            encrypted = True
        link.last_activity = self.simulator.now
        self.medium.send_frame(
            link.phys,
            self,
            AirFrame(kind="acl", payload=lmp.AclPayload(data), encrypted=encrypted),
        )

    def _handle_acl_from_air(self, link: AclLink, frame: AirFrame) -> None:
        data = frame.payload.data
        if frame.encrypted:
            if not link.encryption_enabled or link.kc is None:
                return  # cannot decrypt; drop
            clock = (2 if link.is_initiator else 1) << 24 | link.rx_seq
            data = e0_encrypt(link.kc, self._master_addr(link), clock, data)
            link.rx_seq += 1
        self.transport.send_from_controller(HciAclData(link.handle, data))

    _LMP_HANDLERS: Dict[type, Callable] = {}

    # ------------------------------------------------------------- inspection

    @property
    def connections(self) -> List[AclLink]:
        return list(self._links_by_handle.values())

    def link_by_handle(self, handle: int) -> Optional[AclLink]:
        return self._links_by_handle.get(handle)


Controller._COMMAND_HANDLERS = {
    Opcode.RESET: Controller._cmd_reset,
    Opcode.SET_EVENT_MASK: Controller._cmd_noop_complete,
    Opcode.WRITE_SCAN_ENABLE: Controller._cmd_write_scan_enable,
    Opcode.WRITE_CLASS_OF_DEVICE: Controller._cmd_write_cod,
    Opcode.WRITE_LOCAL_NAME: Controller._cmd_write_local_name,
    Opcode.READ_LOCAL_NAME: Controller._cmd_read_local_name,
    Opcode.WRITE_PAGE_TIMEOUT: Controller._cmd_write_page_timeout,
    Opcode.WRITE_PAGE_SCAN_ACTIVITY: Controller._cmd_write_page_scan_activity,
    Opcode.WRITE_INQUIRY_SCAN_ACTIVITY: Controller._cmd_write_inquiry_scan_activity,
    Opcode.WRITE_AUTHENTICATION_ENABLE: Controller._cmd_write_auth_enable,
    Opcode.WRITE_INQUIRY_MODE: Controller._cmd_write_inquiry_mode,
    Opcode.WRITE_EXTENDED_INQUIRY_RESPONSE: Controller._cmd_noop_complete,
    Opcode.WRITE_SIMPLE_PAIRING_MODE: Controller._cmd_write_ssp_mode,
    Opcode.WRITE_SECURE_CONNECTIONS_HOST_SUPPORT: Controller._cmd_write_sc_support,
    Opcode.READ_BD_ADDR: Controller._cmd_read_bd_addr,
    Opcode.READ_LOCAL_VERSION_INFORMATION: Controller._cmd_noop_complete,
    Opcode.READ_LOCAL_SUPPORTED_FEATURES: Controller._cmd_noop_complete,
    Opcode.INQUIRY: Controller._cmd_inquiry,
    Opcode.INQUIRY_CANCEL: Controller._cmd_inquiry_cancel,
    Opcode.CREATE_CONNECTION: Controller._cmd_create_connection,
    Opcode.CREATE_CONNECTION_CANCEL: Controller._cmd_create_connection_cancel,
    Opcode.ACCEPT_CONNECTION_REQUEST: Controller._cmd_accept_connection,
    Opcode.REJECT_CONNECTION_REQUEST: Controller._cmd_reject_connection,
    Opcode.DISCONNECT: Controller._cmd_disconnect,
    Opcode.AUTHENTICATION_REQUESTED: Controller._cmd_authentication_requested,
    Opcode.LINK_KEY_REQUEST_REPLY: Controller._cmd_link_key_reply,
    Opcode.LINK_KEY_REQUEST_NEGATIVE_REPLY: Controller._cmd_link_key_negative_reply,
    Opcode.IO_CAPABILITY_REQUEST_REPLY: Controller._cmd_io_capability_reply,
    Opcode.IO_CAPABILITY_REQUEST_NEGATIVE_REPLY: (
        Controller._cmd_io_capability_negative_reply
    ),
    Opcode.USER_CONFIRMATION_REQUEST_REPLY: Controller._cmd_user_confirmation_reply,
    Opcode.USER_CONFIRMATION_REQUEST_NEGATIVE_REPLY: (
        Controller._cmd_user_confirmation_negative_reply
    ),
    Opcode.USER_PASSKEY_REQUEST_REPLY: Controller._cmd_user_passkey_reply,
    Opcode.USER_PASSKEY_REQUEST_NEGATIVE_REPLY: (
        Controller._cmd_user_passkey_negative_reply
    ),
    Opcode.PIN_CODE_REQUEST_REPLY: Controller._cmd_pin_code_reply,
    Opcode.READ_LOCAL_OOB_DATA: Controller._cmd_read_local_oob_data,
    Opcode.REMOTE_OOB_DATA_REQUEST_REPLY: Controller._cmd_remote_oob_reply,
    Opcode.REMOTE_OOB_DATA_REQUEST_NEGATIVE_REPLY: (
        Controller._cmd_remote_oob_negative_reply
    ),
    Opcode.PIN_CODE_REQUEST_NEGATIVE_REPLY: Controller._cmd_pin_code_negative_reply,
    Opcode.SET_CONNECTION_ENCRYPTION: Controller._cmd_set_connection_encryption,
    Opcode.SETUP_SYNCHRONOUS_CONNECTION: (
        Controller._cmd_setup_synchronous_connection
    ),
    Opcode.WRITE_STORED_LINK_KEY: Controller._cmd_write_stored_link_key,
    Opcode.READ_STORED_LINK_KEY: Controller._cmd_read_stored_link_key,
    Opcode.DELETE_STORED_LINK_KEY: Controller._cmd_delete_stored_link_key,
    Opcode.REMOTE_NAME_REQUEST: Controller._cmd_remote_name_request,
}

Controller._LMP_HANDLERS = {
    lmp.LmpConnectionAccepted: Controller._lmp_connection_accepted,
    lmp.LmpConnectionRejected: Controller._lmp_connection_rejected,
    lmp.LmpDetach: Controller._lmp_detach,
    lmp.LmpAuRand: Controller._lmp_au_rand,
    lmp.LmpSres: Controller._lmp_sres,
    lmp.LmpAuRandSC: Controller._lmp_au_rand_sc,
    lmp.LmpScAuthResponse: Controller._lmp_sc_auth_response,
    lmp.LmpScAuthConfirm: Controller._lmp_sc_auth_confirm,
    lmp.LmpNotAccepted: Controller._lmp_not_accepted,
    lmp.LmpIoCapabilityReq: Controller._lmp_io_capability_req,
    lmp.LmpIoCapabilityRes: Controller._lmp_io_capability_res,
    lmp.LmpEncapsulatedKey: Controller._lmp_encapsulated_key,
    lmp.LmpSimplePairingConfirm: Controller._lmp_simple_pairing_confirm,
    lmp.LmpSimplePairingNumber: Controller._lmp_simple_pairing_number,
    lmp.LmpPasskeyConfirm: Controller._lmp_passkey_confirm,
    lmp.LmpPasskeyNumber: Controller._lmp_passkey_number,
    lmp.LmpFeaturesInfo: Controller._lmp_features_info,
    lmp.LmpInRand: Controller._lmp_in_rand,
    lmp.LmpCombKey: Controller._lmp_comb_key,
    lmp.LmpLegacyComplete: Controller._lmp_legacy_complete,
    lmp.LmpStage1Confirmed: Controller._lmp_stage1_confirmed,
    lmp.LmpDhkeyCheck: Controller._lmp_dhkey_check,
    lmp.LmpStartEncryption: Controller._lmp_start_encryption,
    lmp.LmpStopEncryption: Controller._lmp_stop_encryption,
    lmp.LmpEncryptionKeySizeReq: Controller._lmp_encryption_key_size_req,
    lmp.LmpEncryptionKeySizeRes: Controller._lmp_encryption_key_size_res,
    lmp.LmpScoSetup: Controller._lmp_sco_setup,
}
