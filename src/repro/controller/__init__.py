"""The simulated Bluetooth controller.

A :class:`~repro.controller.controller.Controller` is the chipset-side
half of a device: it owns the BD_ADDR, talks to the radio medium below
and to the host stack above (through an HCI transport), and runs the
Link Manager Protocol — connection accept, challenge-response
authentication, Secure Simple Pairing and E0 encryption.

Everything security-relevant about the paper happens at this layer's
*boundary*: the controller has no room to store link keys, so it asks
the host for them over HCI (``HCI_Link_Key_Request`` → plaintext
``HCI_Link_Key_Request_Reply``), and hands new keys up over HCI
(``HCI_Link_Key_Notification``).
"""

from repro.controller.controller import AclLink, Controller
from repro.controller import lmp

__all__ = ["AclLink", "Controller", "lmp"]
