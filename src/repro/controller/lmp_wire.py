"""LMP PDU wire serialization (Core Specification Vol 2, Part C).

Inside the simulation LMP PDUs travel as Python objects, but forensic
tooling (air pcap export, transcript analysis) wants bytes.  This
module packs/unpacks our PDU set using the spec's real opcode numbers
where they exist; simulation-only control PDUs (connection accept,
feature info, SC mutual auth) use extended opcodes in the
escape-4 (0x7F) space so the format stays unambiguous.

Wire layout: ``opcode(1) | tid(1) | payload``.  For extended opcodes:
``0x7F | tid | ext_opcode(1) | payload``.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple, Type

from repro.core.errors import HciError
from repro.controller import lmp

_ESCAPE = 0x7F

# Spec opcodes (subset used by the simulation).
OP_IN_RAND = 8
OP_COMB_KEY = 9
OP_AU_RAND = 11
OP_SRES = 12
OP_DETACH = 7
OP_ENCRYPTION_MODE_REQ = 15
OP_ENCRYPTION_KEY_SIZE_REQ = 16
OP_START_ENCRYPTION_REQ = 17
OP_STOP_ENCRYPTION_REQ = 18
OP_NOT_ACCEPTED = 4
OP_IO_CAPABILITY_REQ = 25  # escape-4 extended in the real spec
OP_IO_CAPABILITY_RES = 26
OP_ENCAPSULATED_PAYLOAD = 62
OP_SIMPLE_PAIRING_CONFIRM = 63
OP_SIMPLE_PAIRING_NUMBER = 64
OP_DHKEY_CHECK = 65

# Simulation-extended opcodes (escape space).
EXT_CONNECTION_ACCEPTED = 0x80
EXT_CONNECTION_REJECTED = 0x81
EXT_FEATURES_INFO = 0x82
EXT_STAGE1_CONFIRMED = 0x83
EXT_PASSKEY_CONFIRM = 0x84
EXT_PASSKEY_NUMBER = 0x85
EXT_AU_RAND_SC = 0x86
EXT_SC_AUTH_RESPONSE = 0x87
EXT_SC_AUTH_CONFIRM = 0x88
EXT_LEGACY_COMPLETE = 0x89
EXT_ENCRYPTION_KEY_SIZE_RES = 0x8A
EXT_ACL_PAYLOAD = 0x8B
EXT_SCO_SETUP = 0x8C


def _u8(value: int) -> bytes:
    return bytes([value & 0xFF])


def _lv(data: bytes) -> bytes:
    """Length-prefixed bytes (2-byte little-endian length)."""
    return len(data).to_bytes(2, "little") + data


def _read_lv(raw: bytes, offset: int) -> Tuple[bytes, int]:
    length = int.from_bytes(raw[offset : offset + 2], "little")
    start = offset + 2
    return raw[start : start + length], start + length


def serialize_lmp(pdu: lmp.LmpPdu, tid: int = 0) -> bytes:
    """Pack one PDU into wire bytes."""
    packer = _PACKERS.get(type(pdu))
    if packer is None:
        raise HciError(f"no wire format for {type(pdu).__name__}")
    opcode, payload = packer(pdu)
    if opcode >= 0x80:
        return bytes([_ESCAPE, tid & 0xFF, opcode]) + payload
    return bytes([opcode, tid & 0xFF]) + payload


def parse_lmp(raw: bytes) -> lmp.LmpPdu:
    """Unpack wire bytes into a PDU."""
    if len(raw) < 2:
        raise HciError("LMP packet too short")
    if raw[0] == _ESCAPE:
        if len(raw) < 3:
            raise HciError("truncated extended LMP packet")
        opcode, payload = raw[2], raw[3:]
    else:
        opcode, payload = raw[0], raw[2:]
    unpacker = _UNPACKERS.get(opcode)
    if unpacker is None:
        raise HciError(f"unknown LMP opcode {opcode:#04x}")
    try:
        return unpacker(payload)
    except (IndexError, ValueError, UnicodeDecodeError) as exc:
        raise HciError(
            f"malformed LMP payload for opcode {opcode:#04x}: {exc}"
        ) from exc


# ------------------------------------------------------------------ packers

_PACKERS: Dict[Type[lmp.LmpPdu], Callable] = {
    lmp.LmpAuRand: lambda p: (OP_AU_RAND, p.rand),
    lmp.LmpSres: lambda p: (OP_SRES, p.sres),
    lmp.LmpDetach: lambda p: (OP_DETACH, _u8(p.reason)),
    lmp.LmpInRand: lambda p: (OP_IN_RAND, p.rand),
    lmp.LmpCombKey: lambda p: (OP_COMB_KEY, p.masked_rand),
    lmp.LmpEncryptionModeReq: lambda p: (
        OP_ENCRYPTION_MODE_REQ,
        _u8(int(p.enable)),
    ),
    lmp.LmpEncryptionKeySizeReq: lambda p: (
        OP_ENCRYPTION_KEY_SIZE_REQ,
        _u8(p.size),
    ),
    lmp.LmpStartEncryption: lambda p: (OP_START_ENCRYPTION_REQ, p.en_rand),
    lmp.LmpStopEncryption: lambda p: (OP_STOP_ENCRYPTION_REQ, b""),
    lmp.LmpNotAccepted: lambda p: (
        OP_NOT_ACCEPTED,
        _u8(p.reason) + p.rejected.encode("utf-8"),
    ),
    lmp.LmpIoCapabilityReq: lambda p: (
        OP_IO_CAPABILITY_REQ,
        bytes(
            [p.io_capability, p.oob_data_present, p.authentication_requirements]
        ),
    ),
    lmp.LmpIoCapabilityRes: lambda p: (
        OP_IO_CAPABILITY_RES,
        bytes(
            [p.io_capability, p.oob_data_present, p.authentication_requirements]
        ),
    ),
    lmp.LmpEncapsulatedKey: lambda p: (
        OP_ENCAPSULATED_PAYLOAD,
        _u8(len(p.curve)) + p.curve.encode("ascii") + p.public_key,
    ),
    lmp.LmpSimplePairingConfirm: lambda p: (
        OP_SIMPLE_PAIRING_CONFIRM,
        p.commitment,
    ),
    lmp.LmpSimplePairingNumber: lambda p: (OP_SIMPLE_PAIRING_NUMBER, p.nonce),
    lmp.LmpDhkeyCheck: lambda p: (OP_DHKEY_CHECK, p.check),
    lmp.LmpConnectionAccepted: lambda p: (
        EXT_CONNECTION_ACCEPTED,
        p.responder_cod.to_bytes(3, "little"),
    ),
    lmp.LmpConnectionRejected: lambda p: (
        EXT_CONNECTION_REJECTED,
        _u8(p.reason),
    ),
    lmp.LmpFeaturesInfo: lambda p: (
        EXT_FEATURES_INFO,
        bytes([int(p.ssp_supported), int(p.secure_auth)]),
    ),
    lmp.LmpStage1Confirmed: lambda p: (EXT_STAGE1_CONFIRMED, b""),
    lmp.LmpPasskeyConfirm: lambda p: (
        EXT_PASSKEY_CONFIRM,
        _u8(p.round_index) + p.commitment,
    ),
    lmp.LmpPasskeyNumber: lambda p: (
        EXT_PASSKEY_NUMBER,
        _u8(p.round_index) + p.nonce,
    ),
    lmp.LmpAuRandSC: lambda p: (EXT_AU_RAND_SC, p.rand),
    lmp.LmpScAuthResponse: lambda p: (
        EXT_SC_AUTH_RESPONSE,
        p.rand + p.sres,
    ),
    lmp.LmpScAuthConfirm: lambda p: (EXT_SC_AUTH_CONFIRM, p.sres),
    lmp.LmpLegacyComplete: lambda p: (EXT_LEGACY_COMPLETE, b""),
    lmp.LmpEncryptionKeySizeRes: lambda p: (
        EXT_ENCRYPTION_KEY_SIZE_RES,
        bytes([p.size, int(p.accepted)]),
    ),
    lmp.AclPayload: lambda p: (EXT_ACL_PAYLOAD, _lv(p.data)),
    lmp.LmpScoSetup: lambda p: (EXT_SCO_SETUP, _u8(int(p.accept))),
}

# ---------------------------------------------------------------- unpackers

_UNPACKERS: Dict[int, Callable[[bytes], lmp.LmpPdu]] = {
    OP_AU_RAND: lambda d: lmp.LmpAuRand(d[:16]),
    OP_SRES: lambda d: lmp.LmpSres(d[:4]),
    OP_DETACH: lambda d: lmp.LmpDetach(d[0]),
    OP_IN_RAND: lambda d: lmp.LmpInRand(d[:16]),
    OP_COMB_KEY: lambda d: lmp.LmpCombKey(d[:16]),
    OP_ENCRYPTION_MODE_REQ: lambda d: lmp.LmpEncryptionModeReq(bool(d[0])),
    OP_ENCRYPTION_KEY_SIZE_REQ: lambda d: lmp.LmpEncryptionKeySizeReq(d[0]),
    OP_START_ENCRYPTION_REQ: lambda d: lmp.LmpStartEncryption(d[:16]),
    OP_STOP_ENCRYPTION_REQ: lambda d: lmp.LmpStopEncryption(),
    OP_NOT_ACCEPTED: lambda d: lmp.LmpNotAccepted(
        d[1:].decode("utf-8", errors="replace"), d[0]
    ),
    OP_IO_CAPABILITY_REQ: lambda d: lmp.LmpIoCapabilityReq(d[0], d[1], d[2]),
    OP_IO_CAPABILITY_RES: lambda d: lmp.LmpIoCapabilityRes(d[0], d[1], d[2]),
    OP_ENCAPSULATED_PAYLOAD: lambda d: lmp.LmpEncapsulatedKey(
        d[1 + d[0] :], d[1 : 1 + d[0]].decode("ascii")
    ),
    OP_SIMPLE_PAIRING_CONFIRM: lambda d: lmp.LmpSimplePairingConfirm(d[:16]),
    OP_SIMPLE_PAIRING_NUMBER: lambda d: lmp.LmpSimplePairingNumber(d[:16]),
    OP_DHKEY_CHECK: lambda d: lmp.LmpDhkeyCheck(d[:16]),
    EXT_CONNECTION_ACCEPTED: lambda d: lmp.LmpConnectionAccepted(
        int.from_bytes(d[:3], "little")
    ),
    EXT_CONNECTION_REJECTED: lambda d: lmp.LmpConnectionRejected(d[0]),
    EXT_FEATURES_INFO: lambda d: lmp.LmpFeaturesInfo(bool(d[0]), bool(d[1])),
    EXT_STAGE1_CONFIRMED: lambda d: lmp.LmpStage1Confirmed(),
    EXT_PASSKEY_CONFIRM: lambda d: lmp.LmpPasskeyConfirm(d[0], d[1:17]),
    EXT_PASSKEY_NUMBER: lambda d: lmp.LmpPasskeyNumber(d[0], d[1:17]),
    EXT_AU_RAND_SC: lambda d: lmp.LmpAuRandSC(d[:16]),
    EXT_SC_AUTH_RESPONSE: lambda d: lmp.LmpScAuthResponse(d[:16], d[16:20]),
    EXT_SC_AUTH_CONFIRM: lambda d: lmp.LmpScAuthConfirm(d[:4]),
    EXT_LEGACY_COMPLETE: lambda d: lmp.LmpLegacyComplete(),
    EXT_ENCRYPTION_KEY_SIZE_RES: lambda d: lmp.LmpEncryptionKeySizeRes(
        d[0], bool(d[1])
    ),
    EXT_ACL_PAYLOAD: lambda d: lmp.AclPayload(_read_lv(d, 0)[0]),
    EXT_SCO_SETUP: lambda d: lmp.LmpScoSetup(bool(d[0])),
}
