"""Link Manager Protocol PDUs.

LMP runs controller-to-controller over the air.  We model PDUs as
dataclasses rather than byte layouts: unlike HCI — where the paper's
attacks operate on real byte formats — LMP fidelity matters only at
the protocol-logic level (who challenges whom, what is verified, what
happens on timeout).

The PDU set covers the procedures the paper touches: connection
accept/reject, legacy challenge-response authentication
(``LMP_au_rand`` / ``LMP_sres``), the full SSP transaction (IO
capability exchange, ECDH public keys, commitment/nonce exchange,
DHKey check), encryption start and detach.
"""

from __future__ import annotations

from dataclasses import dataclass


class LmpPdu:
    """Base class for all LMP PDUs."""

    @property
    def name(self) -> str:
        return type(self).__name__


# -- connection setup ----------------------------------------------------


@dataclass
class LmpConnectionAccepted(LmpPdu):
    """Responder's host accepted the incoming connection."""

    responder_cod: int


@dataclass
class LmpConnectionRejected(LmpPdu):
    """Responder's host rejected the incoming connection."""

    reason: int


@dataclass
class LmpDetach(LmpPdu):
    """Link teardown with an HCI error reason."""

    reason: int


@dataclass
class LmpFeaturesInfo(LmpPdu):
    """Feature exchange subset: SSP and Secure Connections support.

    Legacy (pre-2.1) devices answer ``ssp_supported=False``, steering
    pairing to the E22/E21 PIN procedure.  ``secure_auth`` advertises
    the h4/h5 *mutual* authentication of Secure Connections (used only
    when both sides opt in).
    """

    ssp_supported: bool
    secure_auth: bool = False


# -- legacy authentication -------------------------------------------------


@dataclass
class LmpAuRand(LmpPdu):
    """Verifier's 16-byte challenge."""

    rand: bytes


@dataclass
class LmpSres(LmpPdu):
    """Prover's 4-byte response: E1(link key, AU_RAND, prover address)."""

    sres: bytes


@dataclass
class LmpNotAccepted(LmpPdu):
    """Refusal of a prior PDU (e.g. key missing on the prover)."""

    rejected: str
    reason: int


# -- secure connections mutual authentication ---------------------------------


@dataclass
class LmpAuRandSC(LmpPdu):
    """Verifier's challenge opening an h4/h5 *mutual* authentication."""

    rand: bytes


@dataclass
class LmpScAuthResponse(LmpPdu):
    """Prover's nonce plus its half of the h5 response."""

    rand: bytes
    sres: bytes


@dataclass
class LmpScAuthConfirm(LmpPdu):
    """Verifier's half of the h5 response — this is what makes the
    exchange mutual: the prover checks the verifier too (the gap BIAS
    exploited in one-way legacy authentication)."""

    sres: bytes


# -- legacy PIN pairing -------------------------------------------------------


@dataclass
class LmpInRand(LmpPdu):
    """Initialization random number for E22 (legacy pairing start).

    Travels in the clear — the root weakness behind offline PIN
    cracking (Shaked & Wool; the paper's refs [14][15]).
    """

    rand: bytes


@dataclass
class LmpCombKey(LmpPdu):
    """A combination-key contribution: LK_RAND XOR K_init."""

    masked_rand: bytes


@dataclass
class LmpLegacyComplete(LmpPdu):
    """Initiator verified the new combination key; pairing is done."""


# -- secure simple pairing ---------------------------------------------------


@dataclass
class LmpIoCapabilityReq(LmpPdu):
    """Initiator announces IO capability / OOB / auth requirements."""

    io_capability: int
    oob_data_present: int
    authentication_requirements: int


@dataclass
class LmpIoCapabilityRes(LmpPdu):
    """Responder's IO capability answer."""

    io_capability: int
    oob_data_present: int
    authentication_requirements: int


@dataclass
class LmpEncapsulatedKey(LmpPdu):
    """ECDH public key (uncompressed X||Y bytes) and curve name."""

    public_key: bytes
    curve: str  # "P-192" or "P-256"


@dataclass
class LmpSimplePairingConfirm(LmpPdu):
    """Commitment value Cb = f1(PKbx, PKax, Nb, 0)."""

    commitment: bytes


@dataclass
class LmpSimplePairingNumber(LmpPdu):
    """A 16-byte pairing nonce (Na or Nb)."""

    nonce: bytes


@dataclass
class LmpPasskeyConfirm(LmpPdu):
    """One round of the Passkey Entry commitment protocol.

    ``round_index`` runs 0..19 (one round per passkey bit); the
    commitment is f1(PKx, PKy, N_i, 0x80 | bit).
    """

    round_index: int
    commitment: bytes


@dataclass
class LmpPasskeyNumber(LmpPdu):
    """Reveal of the round nonce N_i for verification."""

    round_index: int
    nonce: bytes


@dataclass
class LmpStage1Confirmed(LmpPdu):
    """This side's user (or auto-) confirmation of authentication stage 1."""


@dataclass
class LmpDhkeyCheck(LmpPdu):
    """Authentication stage 2 check value (f3 output)."""

    check: bytes


# -- encryption --------------------------------------------------------------


@dataclass
class LmpEncryptionModeReq(LmpPdu):
    """Request to switch encryption on or off."""

    enable: bool


@dataclass
class LmpEncryptionKeySizeReq(LmpPdu):
    """Proposal for the encryption key size in bytes (1..16).

    The negotiation the KNOB attack drives down to 1: the spec lets
    either side lower the proposal and (pre-5.1 erratum) accepts any
    size ≥ 1.
    """

    size: int


@dataclass
class LmpEncryptionKeySizeRes(LmpPdu):
    """Acceptance (or refusal) of a key size proposal."""

    size: int
    accepted: bool


@dataclass
class LmpStartEncryption(LmpPdu):
    """Carries EN_RAND; both sides then derive Kc = E3(key, EN_RAND, COF)."""

    en_rand: bytes


@dataclass
class LmpStopEncryption(LmpPdu):
    """Encryption pause."""


@dataclass
class LmpScoSetup(LmpPdu):
    """Request (or confirm) a synchronous audio channel on this link."""

    accept: bool


# -- host-layer payloads ------------------------------------------------------


@dataclass
class AclPayload(LmpPdu):
    """An ACL user-data frame (L2CAP bytes); may travel E0-encrypted."""

    data: bytes
