"""Streaming per-trial telemetry for campaign sweeps.

PR 2's sharded runner made campaigns fast and silent: ``pool.map``
returns whole shards, so a 700-trial Table II run shows *nothing*
until the slowest shard lands.  This module is the missing feedback
loop:

* workers push one small record per finished trial onto a
  ``multiprocessing`` queue the moment the trial completes (the
  :class:`CampaignRunner` wires the queue; serial runs feed the sink
  inline);
* the parent's :class:`CampaignTelemetry` drains the queue, renders a
  live progress line (carriage-return updates on a TTY, periodic plain
  lines otherwise — CI logs stay readable), and maintains
  ``campaign.throughput_per_s`` / ``campaign.eta_s`` gauges in its own
  :class:`~repro.obs.metrics.MetricsRegistry`;
* every record is appended to ``runs/<run-id>/telemetry.jsonl`` —
  exactly one line per trial (cache hits, retried and faulted trials
  included), so post-hoc tools can query "which seeds were slow?"
  without re-running anything.  ``run.json`` lands beside it on close
  with per-campaign totals.

Records are completion-*ordered* (whatever the pool finished first),
not seed-ordered: telemetry is an operator surface, not a result
artifact — the deterministic results live in the campaign cache.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, TextIO

from repro.core.runs import new_run_id, runs_root  # noqa: F401 (re-export)
from repro.obs.metrics import MetricsRegistry

#: telemetry.jsonl schema version (bump on incompatible record changes)
TELEMETRY_FORMAT = 1


def trial_record(
    result: Mapping[str, Any],
    cached: bool = False,
    faulted: bool = False,
) -> Dict[str, Any]:
    """One telemetry line from a ``TrialResult.to_dict()`` dict.

    Deliberately *small*: identity, verdict, timing, and the max
    detector scores if the scenario recorded them — not the full
    ``detail`` blob (that lives in the cache).
    """
    record: Dict[str, Any] = {
        "scenario": result.get("scenario"),
        "seed": result.get("seed"),
        "success": bool(result.get("success")),
        "outcome": result.get("outcome"),
        "attempts": result.get("attempts", 1),
        "wall_time_s": result.get("wall_time_s", 0.0),
        "sim_time_s": result.get("sim_time_s", 0.0),
        "cached": cached,
        "faulted": faulted,
    }
    error = result.get("error")
    if error:
        record["error"] = error
    detail = result.get("detail")
    if isinstance(detail, Mapping):
        scores = detail.get("scores")
        if isinstance(scores, Mapping) and scores:
            record["scores"] = dict(scores)
    return record


class _InlineSink:
    """Queue-shaped adapter: serial shards ``put`` straight into the
    parent telemetry (same worker-side code path, no queue)."""

    __slots__ = ("_telemetry",)

    def __init__(self, telemetry: "CampaignTelemetry") -> None:
        self._telemetry = telemetry

    def put(self, record: Dict[str, Any]) -> None:
        self._telemetry.record(record)


class CampaignTelemetry:
    """Per-run telemetry sink: JSONL stream + live progress + gauges.

    ``mode``:

    * ``"auto"`` — live carriage-return line when ``stream`` is a TTY,
      periodic plain lines otherwise (the CI default);
    * ``"live"`` / ``"plain"`` — force either rendering;
    * ``"quiet"`` — plain, but only a start and an end line per
      campaign (``blap campaign run --quiet``);
    * ``"off"`` — no progress output at all (records still stream to
      disk).

    Thread-safe: the runner's queue-drain thread and the parent (cache
    hits) record concurrently.
    """

    def __init__(
        self,
        run_id: Optional[str] = None,
        root: Optional[Path] = None,
        stream: Optional[TextIO] = None,
        mode: str = "auto",
        plain_interval_s: float = 5.0,
        metrics: Optional[MetricsRegistry] = None,
        sink: Optional[Any] = None,
    ) -> None:
        if mode not in ("auto", "live", "plain", "quiet", "off"):
            raise ValueError(f"unknown telemetry mode {mode!r}")
        self.run_id = run_id or new_run_id()
        self.run_dir = (root if root is not None else runs_root()) / self.run_id
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self.path = self.run_dir / "telemetry.jsonl"
        self.stream = stream if stream is not None else sys.stderr
        if mode == "auto":
            isatty = getattr(self.stream, "isatty", lambda: False)
            mode = "live" if isatty() else "plain"
        self.mode = mode
        self.plain_interval_s = plain_interval_s
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._g_throughput = self.metrics.gauge("campaign.throughput_per_s")
        self._g_eta = self.metrics.gauge("campaign.eta_s")
        self._c_trials = self.metrics.counter("campaign.trials")
        self._c_errors = self.metrics.counter("campaign.errors")
        #: optional exporter hook (e.g. repro.store.StoreTelemetrySink):
        #: ``record(dict)`` per trial, ``close(summary)`` at the end —
        #: how telemetry streams into the run store next to the JSONL.
        self._sink = sink
        self._lock = threading.Lock()
        self._handle = open(self.path, "a", encoding="utf-8")
        self._campaigns: List[Dict[str, Any]] = []
        self._current: Optional[Dict[str, Any]] = None
        self._started = time.monotonic()
        self._campaign_started = self._started
        self._last_render = 0.0
        self._line_width = 0

    # ------------------------------------------------------------- lifecycle

    def begin_campaign(
        self, scenario: str, total: int, faulted: bool = False
    ) -> None:
        with self._lock:
            self._current = {
                "scenario": scenario,
                "total": total,
                "done": 0,
                "ok": 0,
                "errors": 0,
                "cached": 0,
                "faulted": faulted,
            }
            self._campaign_started = time.monotonic()
            self._last_render = 0.0
            if self.mode in ("plain", "quiet"):
                self._emit_line(
                    f"[{self.run_id}] {scenario}: 0/{total} trials started"
                )

    def record(self, record: Mapping[str, Any]) -> None:
        """Append one trial record and refresh progress/gauges."""
        with self._lock:
            self._handle.write(json.dumps(record, sort_keys=True) + "\n")
            self._handle.flush()
            if self._sink is not None:
                self._sink.record(record)
            self._c_trials.inc()
            if record.get("error"):
                self._c_errors.inc()
            state = self._current
            if state is not None:
                state["done"] += 1
                if record.get("success"):
                    state["ok"] += 1
                if record.get("error"):
                    state["errors"] += 1
                if record.get("cached"):
                    state["cached"] += 1
                self._refresh_gauges(state)
                self._render_progress(state)

    def drain(self, queue: Any) -> None:
        """Consume records from a worker queue until a ``None`` sentinel
        (the runner's drain-thread target)."""
        for record in iter(queue.get, None):
            self.record(record)

    def end_campaign(self) -> Optional[Dict[str, Any]]:
        """Close out the current campaign; returns its summary."""
        with self._lock:
            state = self._current
            if state is None:
                return None
            state["wall_time_s"] = time.monotonic() - self._campaign_started
            self._refresh_gauges(state)
            if self.mode != "off":
                self._clear_live_line()
                self._emit_line(self._format_progress(state, final=True))
            self._campaigns.append(state)
            self._current = None
            return state

    def close(self, extra: Optional[Mapping[str, Any]] = None) -> Path:
        """Flush the stream and write the ``run.json`` summary.

        ``extra`` keys are merged into the summary — how a profiled
        run's attribution (``{"profile": {...}}``) gets keyed into the
        run dir and, through the store sink, the run store.
        """
        if self._current is not None:
            self.end_campaign()
        with self._lock:
            self._handle.close()
            summary = {
                "format": TELEMETRY_FORMAT,
                "run_id": self.run_id,
                "wall_time_s": time.monotonic() - self._started,
                "trials": int(self._c_trials.value),
                "errors": int(self._c_errors.value),
                "campaigns": self._campaigns,
            }
            if extra:
                summary.update(extra)
            summary_path = self.run_dir / "run.json"
            with open(summary_path, "w", encoding="utf-8") as handle:
                json.dump(summary, handle, indent=1, sort_keys=True)
                handle.write("\n")
            if self._sink is not None:
                self._sink.close(summary)
            return summary_path

    def __enter__(self) -> "CampaignTelemetry":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------- rendering

    def _refresh_gauges(self, state: Dict[str, Any]) -> None:
        elapsed = max(time.monotonic() - self._campaign_started, 1e-9)
        rate = state["done"] / elapsed
        self._g_throughput.set(rate)
        remaining = max(state["total"] - state["done"], 0)
        self._g_eta.set(remaining / rate if rate > 0 else 0.0)

    def _format_progress(
        self, state: Dict[str, Any], final: bool = False
    ) -> str:
        rate = self._g_throughput.value
        text = (
            f"[{self.run_id}] {state['scenario']}: "
            f"{state['done']}/{state['total']} trials, "
            f"{state['ok']} ok, {state['errors']} err"
        )
        if state["cached"]:
            text += f", {state['cached']} cached"
        if final:
            text += f" in {state.get('wall_time_s', 0.0):.2f}s"
        else:
            text += f", {rate:.1f}/s eta {self._g_eta.value:.0f}s"
        return text

    def _render_progress(self, state: Dict[str, Any]) -> None:
        if self.mode in ("off", "quiet"):
            return
        if self.mode == "live":
            line = self._format_progress(state)
            pad = " " * max(self._line_width - len(line), 0)
            self._line_width = len(line)
            self.stream.write("\r" + line + pad)
            self.stream.flush()
            return
        # plain: rate-limited full lines, plus the very last trial
        now = time.monotonic()
        if (
            now - self._last_render >= self.plain_interval_s
            or state["done"] >= state["total"]
        ):
            self._last_render = now
            self._emit_line(self._format_progress(state))

    def _clear_live_line(self) -> None:
        if self.mode == "live" and self._line_width:
            self.stream.write("\r" + " " * self._line_width + "\r")
            self._line_width = 0

    def _emit_line(self, text: str) -> None:
        self.stream.write(text + "\n")
        self.stream.flush()


def read_telemetry(run_dir: Path) -> List[Dict[str, Any]]:
    """Parsed ``telemetry.jsonl`` records from a run directory (torn
    tail lines skipped — a live run may still be appending)."""
    records: List[Dict[str, Any]] = []
    try:
        with open(Path(run_dir) / "telemetry.jsonl", encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if isinstance(record, dict):
                    records.append(record)
    except OSError:
        pass
    return records
