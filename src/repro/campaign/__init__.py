"""Unified trial API + sharded parallel campaign engine.

The paper's headline numbers are Monte-Carlo campaigns — 100 trials ×
7 devices × 2 conditions for Table II alone.  This package runs them
at scale behind one calling convention:

* :mod:`repro.campaign.trial` — the :class:`Scenario` protocol
  (``build(world, config) -> Trial``, ``Trial.run() -> TrialResult``)
  and the scenario registry;
* :mod:`repro.campaign.scenarios` — every attack in
  :mod:`repro.attacks` wrapped as a registered scenario;
* :mod:`repro.campaign.runner` — :class:`CampaignRunner`: seed ranges
  fanned across worker processes, isolated per-seed metrics merged via
  :meth:`MetricsRegistry.merge`, per-trial timeout + retry;
* :mod:`repro.campaign.cache` — on-disk results keyed by
  (scenario, seed, params, code version) for incremental re-runs.

Quick start::

    from repro.campaign import CampaignRunner, CampaignSpec

    spec = CampaignSpec("baseline-race", seeds=range(2000, 2100),
                        params={"m_spec": "galaxy_s8_android9"})
    print(CampaignRunner(workers=4).run(spec).success_rate)
"""

from repro.campaign.cache import (
    ResultCache,
    code_version,
    default_cache_dir,
    trial_key,
)
from repro.campaign.captures import (
    attack_capture,
    benign_capture,
    produce_captures,
)
from repro.campaign.runner import (
    CampaignResult,
    CampaignRunner,
    CampaignSpec,
    TrialTimeout,
    run_trial,
)
from repro.campaign.telemetry import (
    CampaignTelemetry,
    new_run_id,
    read_telemetry,
    runs_root,
    trial_record,
)
from repro.campaign.trial import (
    Scenario,
    ScenarioTrial,
    Trial,
    TrialConfig,
    TrialResult,
    get_scenario,
    register_scenario,
    scenario_names,
)

__all__ = [
    "CampaignResult",
    "CampaignRunner",
    "CampaignSpec",
    "CampaignTelemetry",
    "ResultCache",
    "Scenario",
    "ScenarioTrial",
    "Trial",
    "TrialConfig",
    "TrialResult",
    "TrialTimeout",
    "attack_capture",
    "benign_capture",
    "code_version",
    "produce_captures",
    "default_cache_dir",
    "get_scenario",
    "new_run_id",
    "read_telemetry",
    "register_scenario",
    "run_trial",
    "runs_root",
    "scenario_names",
    "trial_key",
    "trial_record",
]
