"""Every attack in :mod:`repro.attacks`, wrapped as a Scenario.

Each scenario stages exactly the same procedure as its legacy
entrypoint (the free functions and attack classes the tests pin), so
``TrialResult.success`` carries identical semantics — verified by the
equivalence tests over fixed seeds in ``tests/test_campaign_scenarios``.

Device knobs are catalog *keys* (strings), not ``DeviceSpec`` objects,
so params stay JSON-serialisable and usable as cache-key material.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.attacks.baseline import race_in_world
from repro.attacks.eavesdrop import AirCapture, OfflineDecryptor
from repro.attacks.exfiltration import exfiltrate
from repro.attacks.knob import brute_force_low_entropy_session
from repro.attacks.link_key_extraction import LinkKeyExtractionAttack
from repro.attacks.page_blocking import PageBlockingAttack
from repro.attacks.pin_crack import (
    crack_pin,
    numeric_pins,
    transcript_from_capture,
)
from repro.attacks.scenario import World, bond, standard_cast
from repro.campaign.trial import Scenario, register_scenario
from repro.core.types import LinkKey
from repro.faults import FaultPlan, FaultSpec, apply_fault_plan
from repro.devices.catalog import spec_by_key
from repro.host.map_profile import Message
from repro.host.pbap import Contact
from repro.snoop.hcidump import render_dump_table

#: the known-plaintext marker carried by SDP responses (the "Personal
#: Ad-hoc" PAN service name), used by the offline-decryption checks.
PLAINTEXT_MARKER = b"Personal Ad-hoc"


def _cast(world: World, params: Dict[str, Any]):
    """The M / C / A trio from catalog keys in ``params``."""
    return standard_cast(
        world,
        m_spec=spec_by_key(params["m_spec"]),
        c_spec=spec_by_key(params["c_spec"]),
        a_spec=spec_by_key(params["a_spec"]),
    )


@register_scenario
class BaselineRaceScenario(Scenario):
    """Table II left column: the un-blocked MITM connection race."""

    name = "baseline-race"
    description = "MITM connection race without page blocking (Table II w/o)"
    default_params = {
        "m_spec": "lg_velvet_android11",
        "c_spec": "nexus_5x_android8",
        "a_spec": "nexus_5x_android6",
        "attacker_scan_interval_slots": None,
    }

    def execute(
        self, world: World, params: Dict[str, Any], seed: int
    ) -> Tuple[bool, str, Dict[str, Any]]:
        trial = race_in_world(
            world,
            spec_by_key(params["m_spec"]),
            c_spec=spec_by_key(params["c_spec"]),
            a_spec=spec_by_key(params["a_spec"]),
            attacker_scan_interval_slots=params["attacker_scan_interval_slots"],
            seed=seed,
        )
        if not trial.connected:
            outcome = "no_connection"
        elif trial.attacker_won:
            outcome = "attacker_won"
        else:
            outcome = "victim_won"
        return (
            trial.attacker_won,
            outcome,
            {"connected": trial.connected, "attacker_won": trial.attacker_won},
        )


@register_scenario
class PageBlockingScenario(Scenario):
    """§V: PLOC page blocking + Just Works downgrade (Table II with)."""

    name = "page-blocking"
    description = "PLOC page blocking + SSP downgrade (Table II with)"
    default_params = {
        "m_spec": "lg_velvet_android11",
        "c_spec": "nexus_5x_android8",
        "a_spec": "nexus_5x_android6",
        "pairing_delay": 5.0,
        "ploc_hold_seconds": 10.0,
        "capture_m_dump": False,
        "run_discovery": False,
    }

    def execute(
        self, world: World, params: Dict[str, Any], seed: int
    ) -> Tuple[bool, str, Dict[str, Any]]:
        m, c, a = _cast(world, params)
        report = PageBlockingAttack(
            world, a, c, m, ploc_hold_seconds=params["ploc_hold_seconds"]
        ).run(
            pairing_delay=params["pairing_delay"],
            capture_m_dump=params["capture_m_dump"],
            run_discovery=params["run_discovery"],
        )
        detail = {
            "mitm_connection": report.mitm_connection,
            "paired": report.paired,
            "downgraded_to_just_works": report.downgraded_to_just_works,
            "popup_shown_on_m": report.popup_shown_on_m,
            "notes": list(report.notes),
        }
        if report.m_dump is not None:
            detail["m_flow"] = list(report.m_flow)
            detail["m_dump_table"] = render_dump_table(
                report.m_dump.entries(), max_rows=14
            )
        return (
            report.success,
            "mitm" if report.success else "lost",
            detail,
        )


@register_scenario
class DegradedRaceScenario(Scenario):
    """Page blocking under degraded RF — the robustness sweep surface.

    Sweeps the Table II page-blocking race against a parameterised
    fault grid (frame loss, latency jitter, an optional channel
    blackout window): how much channel degradation does the PLOC
    attack tolerate before its win rate collapses?  The degradation
    knobs are ordinary scenario params, so campaign grids sweep them
    exactly like device specs; an additional external fault plan
    (``--fault-plan``) composes on top.
    """

    name = "degraded-race"
    description = "page blocking win-rate under RF loss/jitter (robustness)"
    default_params = {
        "m_spec": "lg_velvet_android11",
        "c_spec": "nexus_5x_android8",
        "a_spec": "nexus_5x_android6",
        "pairing_delay": 5.0,
        "ploc_hold_seconds": 10.0,
        "loss_rate": 0.05,
        "jitter_probability": 0.25,
        "jitter_s": 0.002,
        "blackout_start_s": None,
        "blackout_end_s": None,
    }

    @staticmethod
    def _plan(params: Dict[str, Any]) -> FaultPlan:
        specs = []
        if params["loss_rate"]:
            specs.append(
                FaultSpec("phy.frame_loss", probability=params["loss_rate"])
            )
        if params["jitter_probability"] and params["jitter_s"]:
            specs.append(
                FaultSpec(
                    "phy.latency_jitter",
                    probability=params["jitter_probability"],
                    params={"jitter_s": params["jitter_s"]},
                )
            )
        if params["blackout_start_s"] is not None:
            specs.append(
                FaultSpec(
                    "phy.blackout",
                    mode="window",
                    start_s=params["blackout_start_s"],
                    end_s=params["blackout_end_s"],
                )
            )
        return FaultPlan(specs=tuple(specs), name="degraded-race")

    def execute(
        self, world: World, params: Dict[str, Any], seed: int
    ) -> Tuple[bool, str, Dict[str, Any]]:
        plan = self._plan(params)
        if plan:
            apply_fault_plan(world, plan)
        m, c, a = _cast(world, params)
        report = PageBlockingAttack(
            world, a, c, m, ploc_hold_seconds=params["ploc_hold_seconds"]
        ).run(pairing_delay=params["pairing_delay"])
        detail = {
            "mitm_connection": report.mitm_connection,
            "paired": report.paired,
            "downgraded_to_just_works": report.downgraded_to_just_works,
            "popup_shown_on_m": report.popup_shown_on_m,
            "notes": list(report.notes),
            "degradation": plan.to_jsonable(),
        }
        if world.faults is not None:
            detail["faults_injected"] = world.faults.summary()
        return (
            report.success,
            "mitm" if report.success else "lost",
            detail,
        )


@register_scenario
class ExtractionScenario(Scenario):
    """§IV / Fig. 5: link key extraction from C's HCI recording."""

    name = "extraction"
    description = "link key extraction via HCI dump / USB sniff (Table I)"
    default_params = {
        "m_spec": "lg_velvet_android11",
        "c_spec": "nexus_5x_android8",
        "a_spec": "nexus_5x_android6",
        "validate": True,
    }

    def execute(
        self, world: World, params: Dict[str, Any], seed: int
    ) -> Tuple[bool, str, Dict[str, Any]]:
        m, c, a = _cast(world, params)
        bond(world, c, m)
        report = LinkKeyExtractionAttack(world, a, c, m).run(
            validate=params["validate"]
        )
        detail = {
            "c_device": report.c_device,
            "c_os": report.c_os,
            "c_stack": report.c_stack,
            "extraction_channel": report.extraction_channel,
            "su_required": report.su_required,
            "extraction_success": report.extraction_success,
            "key_survived_on_c": report.key_survived_on_c,
            "validated_against_m": report.validated_against_m,
            "vulnerable": report.vulnerable,
            "extracted_key": (
                report.extracted_key.hex() if report.extracted_key else None
            ),
            "notes": list(report.notes),
        }
        return (
            report.vulnerable,
            "extracted" if report.vulnerable else "not_vulnerable",
            detail,
        )


@register_scenario
class ExfiltrationScenario(Scenario):
    """§III end goal: extraction, then PBAP/MAP exfiltration from M."""

    name = "exfiltration"
    description = "extraction + silent PBAP/MAP data theft from M"
    default_params = {
        "m_spec": "lg_velvet_android11",
        "c_spec": "nexus_5x_android8",
        "a_spec": "nexus_5x_android6",
    }

    def execute(
        self, world: World, params: Dict[str, Any], seed: int
    ) -> Tuple[bool, str, Dict[str, Any]]:
        m, c, a = _cast(world, params)
        m.host.pbap.load_phonebook([Contact("Alice Example", "+1-555-0100")])
        m.host.map.load_messages([Message("Alice Example", "Dinner at 8?")])
        bond(world, c, m)
        report = LinkKeyExtractionAttack(world, a, c, m).run(validate=False)
        if not report.extraction_success:
            return False, "extraction_failed", {"extraction_success": False}
        world.set_in_range(c, m, False)
        a.host.drop_link_key_requests = False
        c.host.gap.set_scan_mode(connectable=False, discoverable=False)
        exfil = exfiltrate(
            world,
            a,
            m,
            trusted_c_addr=c.bd_addr,
            trusted_c_cod=c.controller.class_of_device,
            trusted_c_name=c.controller.local_name,
            link_key=report.extracted_key,
        )
        detail = {
            "extraction_success": True,
            "phonebook": [
                {"name": contact.name, "phone": contact.phone}
                for contact in exfil.phonebook
            ],
            "messages": [
                {"sender": message.sender, "body": message.body}
                for message in exfil.messages
            ],
            "silent": exfil.silent,
            "notes": list(exfil.notes),
        }
        return (
            exfil.success,
            "exfiltrated" if exfil.success else "exfil_failed",
            detail,
        )


def _encrypted_session(
    world: World, params: Dict[str, Any]
) -> Tuple[Any, Any, Any, AirCapture, Any]:
    """Bond C↔M, then sniff one encrypted SDP exchange off the air."""
    m, c, a = _cast(world, params)
    bond(world, c, m)
    if params.get("max_key_size_on_m") is not None:
        m.controller.max_encryption_key_size = params["max_key_size_on_m"]
    if params.get("min_key_size_on_c") is not None:
        c.controller.min_encryption_key_size = params["min_key_size_on_c"]
    capture = AirCapture().attach(world.medium)
    operation = m.host.gap.pair(c.bd_addr)
    world.run_for(10.0)
    if not operation.success:
        raise RuntimeError("session setup pairing failed")
    encryption = m.host.gap.enable_encryption(c.bd_addr)
    world.run_for(2.0)
    m.host.sdp.query(c.bd_addr)
    world.run_for(5.0)
    return m, c, a, capture, encryption


@register_scenario
class EavesdropScenario(Scenario):
    """§IV-C: decrypt past sniffed traffic with an extracted key."""

    name = "eavesdrop"
    description = "offline E0 decryption of sniffed traffic (§IV-C)"
    default_params = {
        "m_spec": "lg_velvet_android11",
        "c_spec": "nexus_5x_android8",
        "a_spec": "nexus_5x_android6",
        "max_key_size_on_m": None,
        "min_key_size_on_c": None,
    }

    def execute(
        self, world: World, params: Dict[str, Any], seed: int
    ) -> Tuple[bool, str, Dict[str, Any]]:
        m, c, a, capture, _ = _encrypted_session(world, params)
        m.host.gap.disconnect(c.bd_addr)
        world.run_for(2.0)
        report = LinkKeyExtractionAttack(world, a, c, m).run(validate=False)
        if not report.extraction_success:
            return False, "extraction_failed", {"extraction_success": False}
        decryptor = OfflineDecryptor(
            capture,
            report.extracted_key,
            prover_addr=c.bd_addr,
            master_addr=m.bd_addr,
            master_name=m.name,
        )
        plaintexts = decryptor.decrypt_all()
        wrong = decryptor.try_wrong_key(LinkKey(b"\x00" * 16))
        detail = {
            "extraction_success": True,
            "captured_frames": len(capture.encrypted_acl_frames()),
            "decrypted_hit": any(PLAINTEXT_MARKER in p for p in plaintexts),
            "wrong_key_hit": any(PLAINTEXT_MARKER in p for p in wrong),
        }
        success = detail["decrypted_hit"] and not detail["wrong_key_hit"]
        return success, "decrypted" if success else "no_plaintext", detail


@register_scenario
class KnobScenario(Scenario):
    """§VIII contrast: KNOB'd 1-byte-entropy session brute force."""

    name = "knob"
    description = "KNOB-style low-entropy session brute force (§VIII)"
    default_params = {
        "m_spec": "lg_velvet_android11",
        "c_spec": "nexus_5x_android8",
        "a_spec": "nexus_5x_android6",
        "max_key_size_on_m": 1,
        "min_key_size_on_c": 1,
        "entropy_bytes": 1,
    }

    def execute(
        self, world: World, params: Dict[str, Any], seed: int
    ) -> Tuple[bool, str, Dict[str, Any]]:
        m, c, a, capture, encryption = _encrypted_session(world, params)
        if not encryption.success:
            # The post-KNOB minimum key size mitigation refused the
            # negotiation — the attack dies before any brute force.
            return (
                False,
                "negotiation_refused",
                {"encryption_established": False, "status": encryption.status},
            )
        result = brute_force_low_entropy_session(
            capture,
            m.bd_addr,
            m.name,
            params["entropy_bytes"],
            plaintext_predicate=lambda ps: any(
                PLAINTEXT_MARKER in p for p in ps
            ),
        )
        if result is None:
            return False, "key_not_found", {"encryption_established": True}
        return (
            True,
            "session_cracked",
            {
                "encryption_established": True,
                "candidates_tried": result.candidates_tried,
                "kc_prime": result.kc_prime.hex(),
            },
        )


@register_scenario
class PinCrackScenario(Scenario):
    """Historical contrast: offline PIN crack of a legacy pairing."""

    name = "pin-crack"
    description = "offline PIN crack of a sniffed legacy pairing"
    default_params = {
        "m_spec": "lg_velvet_android11",
        "c_spec": "nexus_5x_android8",
        "pin": "8341",
        "digits": 4,
    }

    def execute(
        self, world: World, params: Dict[str, Any], seed: int
    ) -> Tuple[bool, str, Dict[str, Any]]:
        m = world.add_device("M", spec_by_key(params["m_spec"]))
        c = world.add_device("C", spec_by_key(params["c_spec"]))
        m.host.ssp_enabled = False
        c.host.ssp_enabled = False
        m.user.pin_code = params["pin"]
        c.user.pin_code = params["pin"]
        m.power_on()
        c.power_on()
        world.run_for(0.5)
        capture = AirCapture().attach(world.medium)
        operation = m.host.gap.pair(c.bd_addr)
        world.run_for(20.0)
        if not operation.success:
            raise RuntimeError("legacy pairing for the sniff failed")
        truth = m.host.security.bond_for(c.bd_addr).link_key
        transcript = transcript_from_capture(capture, "M", m.bd_addr, c.bd_addr)
        result = crack_pin(transcript, numeric_pins(params["digits"]))
        if result is None:
            return False, "pin_not_found", {"candidates_tried": 10 ** params["digits"]}
        detail = {
            "pin": result.pin.decode("ascii"),
            "candidates_tried": result.candidates_tried,
            "key_matches_bond": result.link_key == truth,
        }
        return (
            bool(detail["key_matches_bond"]),
            "pin_recovered" if detail["key_matches_bond"] else "wrong_key",
            detail,
        )
