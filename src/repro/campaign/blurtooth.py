"""The BLURtooth cross-transport scenarios, wrapped for the campaign engine.

Both directions of the CTKD pivot, staged on dual-mode casts:

* ``blurtooth-bredr-to-le`` — BLAP link-key extraction feeds h7/h6 and
  the resulting LTK decrypts the victims' sniffed LE session (and is
  byte-identical to the LTK the victims derived themselves).
* ``blurtooth-le-to-bredr`` — a Just Works LE pairing with a spoofed
  identity address makes the victim's own CTKD overwrite its
  authenticated BR/EDR bond, which the attacker then walks through.

Registered by import side effect, exactly like
:mod:`repro.campaign.scenarios`.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.attacks.blurtooth import (
    run_bredr_to_le_pivot,
    run_le_to_bredr_pivot,
)
from repro.attacks.eavesdrop import AirCapture
from repro.attacks.link_key_extraction import LinkKeyExtractionAttack
from repro.attacks.scenario import World, bond, standard_cast
from repro.campaign.trial import Scenario, register_scenario
from repro.devices.catalog import spec_by_key
from repro.host.pbap import Contact

#: known plaintext the victims exchange over their encrypted LE link
LE_MARKER = b"LE telemetry sync"


def _dual_cast(world: World, params: Dict[str, Any]):
    return standard_cast(
        world,
        m_spec=spec_by_key(params["m_spec"]),
        c_spec=spec_by_key(params["c_spec"]),
        a_spec=spec_by_key(params["a_spec"]),
    )


def _victim_le_session(world: World, m, c) -> AirCapture:
    """Victims run CTKD, then an encrypted LE session, under a sniffer."""
    m.ble.adopt_bredr_bond(c.bd_addr)
    c.ble.adopt_bredr_bond(m.bd_addr)
    capture = AirCapture().attach(world.medium)
    connect_op = c.ble.connect(m.bd_addr)
    world.run_for(5.0)
    if not connect_op.success:
        raise RuntimeError("victim LE connection failed")
    enc_op = c.ble.start_encryption(m.bd_addr)
    world.run_for(2.0)
    if not enc_op.success:
        raise RuntimeError("victim LE encryption start failed")
    c.ble.send_data(m.bd_addr, LE_MARKER)
    m.ble.send_data(c.bd_addr, b"ack " + LE_MARKER)
    world.run_for(1.0)
    c.ble.disconnect(m.bd_addr)
    world.run_for(0.5)
    return capture


@register_scenario
class BlurtoothBredrToLeScenario(Scenario):
    """BLAP extraction → h7/h6 → the victims' own LE LTK."""

    name = "blurtooth-bredr-to-le"
    description = "extracted BR/EDR link key pivots to LE via CTKD (BLURtooth)"
    default_params = {
        "m_spec": "galaxy_s21_dual",
        "c_spec": "nexus_5x_dual",
        "a_spec": "nexus_5x_android6",
        "ct2": True,
    }

    def execute(
        self, world: World, params: Dict[str, Any], seed: int
    ) -> Tuple[bool, str, Dict[str, Any]]:
        m, c, a = _dual_cast(world, params)
        bond(world, c, m)
        capture = _victim_le_session(world, m, c)
        extraction = LinkKeyExtractionAttack(world, a, c, m).run(validate=False)
        if not extraction.extraction_success:
            return False, "extraction_failed", {"extraction_success": False}
        pivot = run_bredr_to_le_pivot(
            capture,
            extraction.extracted_key,
            victim=m,
            victim_peer_addr=c.bd_addr,
            ct2=params["ct2"],
        )
        marker_recovered = any(
            LE_MARKER in payload for payload in pivot.decrypted_payloads
        )
        detail = {
            "extraction_success": True,
            "extracted_link_key": extraction.extracted_key.hex(),
            "derived_ltk": pivot.derived_key.hex(),
            "ltk_matches_victim": pivot.key_matches_victim,
            "payloads_recovered": len(pivot.decrypted_payloads),
            "marker_recovered": marker_recovered,
            "wrong_key_rejected": pivot.wrong_key_rejected,
            "ct2": params["ct2"],
        }
        success = pivot.success and marker_recovered
        return success, "pivoted" if success else "pivot_failed", detail


@register_scenario
class BlurtoothLeToBredrScenario(Scenario):
    """Just Works LE pairing overwrites the authenticated BR/EDR bond."""

    name = "blurtooth-le-to-bredr"
    description = "LE Just Works pairing overwrites BR/EDR bond via CTKD"
    default_params = {
        "m_spec": "galaxy_s21_dual",
        "c_spec": "nexus_5x_dual",
        "a_spec": "nexus_5x_dual",
        "ct2": True,
    }

    def execute(
        self, world: World, params: Dict[str, Any], seed: int
    ) -> Tuple[bool, str, Dict[str, Any]]:
        m, c, a = _dual_cast(world, params)
        m.host.pbap.load_phonebook(
            [Contact("Alice Example", "+1-202-555-0100")]
        )
        bond(world, c, m)
        prior = m.host.security.bond_for(c.bd_addr)
        report = run_le_to_bredr_pivot(world, a, m, c, ct2=params["ct2"])
        detail = {
            "association": report.detail.get("association"),
            "overwrote_bredr_bond": report.overwrote_bredr_bond,
            "prior_key_type": report.prior_key_type,
            "new_key_type": report.new_key_type,
            "derived_key_matches_victim": report.key_matches_victim,
            "bredr_pivot_success": report.bredr_pivot_success,
            "phonebook_entries": report.detail.get("phonebook_entries", 0),
            "error": report.detail.get("error"),
            "prior_bond_existed": prior is not None,
        }
        success = report.overwrote_bredr_bond and report.bredr_pivot_success
        return success, "overwritten" if success else "pivot_failed", detail
