"""On-disk result cache: incremental re-runs of expensive sweeps.

A trial is pure given its identity — (scenario name, seed, params,
code version) fully determines the outcome because worlds are seeded
and isolated.  The cache therefore keys each result by a content hash
of exactly that tuple.  The code-version component is a digest of the
``repro`` package sources, so *any* source edit invalidates every
cached result, and partial sweeps stay incremental: re-running a
Table II campaign recomputes only the seeds it has not seen.

Entries are single JSON files (result + metrics snapshot) fanned out
over 256 prefix directories, so a warm 1400-trial Table II re-run is a
pure read workload.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Mapping, Optional

#: bump when the cache entry layout changes
CACHE_FORMAT = 1

_CODE_VERSION: Optional[str] = None


def code_version() -> str:
    """Digest of every ``repro`` source file (memoised per process)."""
    global _CODE_VERSION
    if _CODE_VERSION is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(b"\x00")
            digest.update(path.read_bytes())
            digest.update(b"\x00")
        _CODE_VERSION = digest.hexdigest()[:20]
    return _CODE_VERSION


def trial_key(
    scenario: str,
    seed: int,
    params: Mapping[str, Any],
    version: Optional[str] = None,
    fault_plan: Optional[Any] = None,
    population: Optional[Any] = None,
) -> str:
    """Content hash identifying one trial's result.

    ``fault_plan`` (a JSON-able plan, normally
    ``FaultPlan.to_jsonable()``) is part of the identity: a faulted
    sweep must never be served a cached no-fault result.  Likewise
    ``population`` (normally ``PopulationSpec.to_jsonable()``): an
    ambient-load sweep must never reuse a quiet-world result.
    """
    payload = json.dumps(
        {
            "format": CACHE_FORMAT,
            "scenario": scenario,
            "seed": seed,
            "params": params,
            "faults": fault_plan,
            "population": population,
            "code": version if version is not None else code_version(),
        },
        sort_keys=True,
        separators=(",", ":"),
        default=str,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def default_cache_dir() -> Path:
    """``$BLAP_CACHE_DIR`` or ``.blap-cache`` under the working dir."""
    return Path(os.environ.get("BLAP_CACHE_DIR", ".blap-cache"))


class ResultCache:
    """JSON-file cache under one directory, keyed by :func:`trial_key`."""

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        if entry.get("format") != CACHE_FORMAT:
            self.misses += 1
            return None
        self.hits += 1
        return entry["payload"]

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump({"format": CACHE_FORMAT, "payload": payload}, handle)
        os.replace(tmp, path)

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for path in self.root.rglob("*.json"):
            path.unlink()
            removed += 1
        return removed
