"""Attack and detection scenarios run under ambient fleet load.

BLAP's headline numbers come from three-device worlds; these wrappers
re-run the same staged scenarios with a :mod:`repro.population` crowd
around them, so campaigns can sweep *attack success rate, detector
FPR and first-alert latency against background device count* — the
result surfaces the ROADMAP's fleet-scale item asks for.

Each wrapper delegates to the registered quiet-world scenario after
populating the world, so the attack staging can never drift between
the quiet and ambient variants.  The ``population`` param accepts a
preset name, a bare device count, or an inline spec mapping — it is
part of the campaign cache key like every other param.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.attacks.scenario import World
from repro.campaign import blurtooth as _blurtooth  # noqa: F401  (registry)
from repro.campaign import detection as _detection  # noqa: F401  (registry)
from repro.campaign import scenarios as _scenarios  # noqa: F401  (registry)
from repro.campaign.trial import (
    Scenario,
    get_scenario,
    register_scenario,
)
from repro.population import populate

#: default crowd for ambient sweeps — small enough for smoke tests,
#: busy enough that sniffer fan-out and page races see real traffic
DEFAULT_POPULATION = "cafe"


class _AmbientScenario(Scenario):
    """Populate the world, then delegate to the quiet-world scenario."""

    #: registry name of the wrapped scenario
    inner = ""

    def execute(
        self, world: World, params: Dict[str, Any], seed: int
    ) -> Tuple[bool, str, Dict[str, Any]]:
        inner_params = dict(params)
        population = populate(world, inner_params.pop("population"))
        success, outcome, detail = get_scenario(self.inner).execute(
            world, inner_params, seed
        )
        detail["population"] = population.summary()
        detail["background_devices"] = len(population.ambient)
        detail["events_processed"] = world.simulator.events_processed
        return success, outcome, detail


@register_scenario
class AmbientPageBlockingScenario(_AmbientScenario):
    """Table II's page-blocking attack inside a busy neighbourhood."""

    name = "page-blocking-ambient"
    description = "page blocking (PLOC) under ambient fleet traffic"
    inner = "page-blocking"
    default_params = {
        **get_scenario("page-blocking").default_params,
        "population": DEFAULT_POPULATION,
    }


@register_scenario
class AmbientExtractionScenario(_AmbientScenario):
    """Table I's link-key extraction with a crowd on the air."""

    name = "extraction-ambient"
    description = "link key extraction under ambient fleet traffic"
    inner = "extraction"
    default_params = {
        **get_scenario("extraction").default_params,
        "population": DEFAULT_POPULATION,
    }


@register_scenario
class AmbientDetectionScenario(_AmbientScenario):
    """Detector quality under load: TPR/latency, or FPR via benign.

    ``attack`` accepts the four staged attacks of ``detection-attack``
    plus ``"benign"``, which delegates to ``detection-benign`` — one
    scenario name sweeps both halves of the ROC picture against the
    same background crowd.
    """

    name = "detection-ambient"
    description = "online detectors vs attacks/benign under fleet load"
    inner = "detection-attack"
    default_params = {
        **get_scenario("detection-attack").default_params,
        "population": DEFAULT_POPULATION,
    }

    def execute(
        self, world: World, params: Dict[str, Any], seed: int
    ) -> Tuple[bool, str, Dict[str, Any]]:
        if params.get("attack") != "benign":
            return super().execute(world, params, seed)
        population = populate(world, params["population"])
        benign = get_scenario("detection-benign")
        benign_params = {
            key: params[key] for key in benign.default_params
        }
        success, outcome, detail = benign.execute(
            world, benign_params, seed
        )
        detail["attack"] = "benign"
        detail["population"] = population.summary()
        detail["background_devices"] = len(population.ambient)
        detail["events_processed"] = world.simulator.events_processed
        return success, outcome, detail
