"""The sharded parallel campaign engine.

A campaign is one scenario swept over a seed range:

    spec = CampaignSpec("page-blocking", seeds=range(2000, 2100),
                        params={"m_spec": "galaxy_s8_android9"})
    result = CampaignRunner(workers=4).run(spec)
    result.success_rate        # Table II cell
    result.metrics.snapshot()  # merged per-trial metrics

Execution model:

* seeds are fanned round-robin across ``ProcessPoolExecutor`` workers
  (inline in-process when ``workers <= 1`` — no pool, no pickling);
* every trial gets a *fresh world* with an isolated per-seed
  :class:`MetricsRegistry` and a bounded tracer, so trials are
  independent and their metric snapshots merge deterministically via
  :meth:`MetricsRegistry.merge`;
* a per-trial wall-clock timeout plus retry-with-fresh-world guards
  the sweep against pathological seeds: a trial that times out or
  raises is retried from scratch, and only after ``max_attempts`` is
  it recorded as an error result (the campaign itself never dies);
* with a :class:`~repro.campaign.cache.ResultCache` attached, finished
  trials are written to disk keyed by (scenario, seed, params, code
  version) — re-runs and partial sweeps only compute missing seeds.
"""

from __future__ import annotations

import math
import multiprocessing
import signal
import threading
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.attacks.scenario import WorldConfig, build_world
from repro.campaign import ambient as _ambient  # noqa: F401  (registry)
from repro.campaign import blurtooth as _blurtooth  # noqa: F401  (registry)
from repro.campaign import detection as _detection  # noqa: F401  (registry)
from repro.campaign import scenarios as _scenarios  # noqa: F401  (registry)
from repro.campaign.cache import ResultCache, trial_key
from repro.campaign.telemetry import (
    CampaignTelemetry,
    _InlineSink,
    trial_record,
)
from repro.campaign.trial import TrialConfig, TrialResult, get_scenario
from repro.faults import FaultPlan
from repro.obs.metrics import MetricsRegistry
from repro.population import PopulationSpec

#: default cap on per-world tracer records — campaigns only need the
#: metrics snapshots, not full traces, so keep worlds lean.
DEFAULT_TRACE_RECORDS = 256


class TrialTimeout(Exception):
    """A single trial exceeded the per-trial wall-clock budget."""


class _TimeLimit:
    """SIGALRM-based wall-clock guard (no-op off the main thread)."""

    def __init__(self, seconds: Optional[float]) -> None:
        self.seconds = seconds
        self.armed = False

    def __enter__(self) -> "_TimeLimit":
        usable = (
            self.seconds is not None
            and self.seconds > 0
            and hasattr(signal, "SIGALRM")
            and threading.current_thread() is threading.main_thread()
        )
        if usable:
            self._previous = signal.signal(signal.SIGALRM, self._on_alarm)
            if hasattr(signal, "setitimer"):
                signal.setitimer(signal.ITIMER_REAL, self.seconds)
            else:
                # signal.alarm only takes whole seconds and treats 0 as
                # "disarm" — round *up* so sub-second budgets still arm
                # a real (if coarser) deadline instead of truncating to
                # nothing.
                signal.alarm(max(1, math.ceil(self.seconds)))
            self.armed = True
        return self

    def __exit__(self, *exc_info: Any) -> None:
        if self.armed:
            if hasattr(signal, "setitimer"):
                signal.setitimer(signal.ITIMER_REAL, 0)
            else:
                signal.alarm(0)
            signal.signal(signal.SIGALRM, self._previous)

    def _on_alarm(self, _signum: int, _frame: Any) -> None:
        raise TrialTimeout(f"trial exceeded {self.seconds}s")


def run_trial(
    scenario_name: str,
    seed: int,
    params: Optional[Mapping[str, Any]] = None,
    max_trace_records: Optional[int] = DEFAULT_TRACE_RECORDS,
    timeout_s: Optional[float] = None,
    max_attempts: int = 1,
    fault_plan: Optional[Any] = None,
    population: Optional[Any] = None,
) -> Tuple[TrialResult, Dict[str, Any]]:
    """One trial in a fresh isolated world; returns (result, metrics).

    This is the single execution path every surface shares — the
    campaign workers, ``blap demo`` and direct library use all go
    through here, so their ``TrialResult`` semantics cannot drift.

    ``fault_plan`` is applied at world-build time.  Fault RNG streams
    are derived from the trial seed inside ``build_world``, *fresh on
    every attempt*: a retried trial replays the identical fault
    sequence instead of continuing a half-exhausted parent stream.
    ``population`` (anything ``PopulationSpec.coerce`` accepts) builds
    the ambient crowd at world-build time the same way — each attempt
    resamples the identical fleet from the same child streams.
    """
    scenario = get_scenario(scenario_name)
    config = TrialConfig(seed=seed, params=dict(params or {}))
    plan = FaultPlan.coerce(fault_plan)
    crowd = PopulationSpec.coerce(population)
    attempts = 0
    while True:
        attempts += 1
        registry = MetricsRegistry()
        world = build_world(
            WorldConfig(
                seed=seed,
                registry=registry,
                max_trace_records=max_trace_records,
                fault_plan=plan,
                population=crowd,
            )
        )
        try:
            with _TimeLimit(timeout_s):
                result = scenario.build(world, config).run()
            result.attempts = attempts
            if plan is not None and world.faults is not None:
                result.detail["faults_injected"] = world.faults.summary()
            if crowd is not None and world.populations:
                result.detail["world_population"] = (
                    world.populations[0].summary()
                )
            return result, registry.snapshot()
        except Exception as exc:  # noqa: BLE001 - campaign must survive
            if attempts >= max_attempts:
                kind = (
                    "timeout" if isinstance(exc, TrialTimeout) else "error"
                )
                detail: Dict[str, Any] = {
                    "traceback": traceback.format_exc(limit=8)
                }
                if plan is not None and world.faults is not None:
                    detail["faults_injected"] = world.faults.summary()
                result = TrialResult(
                    scenario=scenario_name,
                    seed=seed,
                    success=False,
                    outcome=kind,
                    detail=detail,
                    sim_time_s=world.simulator.now,
                    attempts=attempts,
                    error=f"{type(exc).__name__}: {exc}",
                )
                return result, registry.snapshot()
            # retry with a fresh world on the next loop iteration


def _run_shard(args: Tuple[Any, ...]) -> List[Dict[str, Any]]:
    """Worker entrypoint: run a batch of seeds, return plain dicts.

    ``sink`` (a Manager queue proxy in pooled runs, an inline adapter
    in serial ones, or ``None``) receives one telemetry record the
    moment each trial finishes — the parent renders progress from
    these while the shard is still running.

    ``cprofile_dir`` (a path string or ``None``) opts the shard into
    the wall-clock ``cProfile`` sampler: every trial runs under one
    accumulated profiler and the shard dumps ``shard-*.pstats`` there
    on exit for the parent to merge (``repro.profile.sampler``).
    """
    (
        scenario_name,
        seeds,
        params,
        max_trace_records,
        timeout_s,
        max_attempts,
        fault_plan,
        population,
        sink,
        cprofile_dir,
    ) = args
    profiler = None
    if cprofile_dir is not None and seeds:
        from repro.profile.sampler import ShardProfiler

        profiler = ShardProfiler()
    out: List[Dict[str, Any]] = []
    for seed in seeds:
        if profiler is not None:
            with profiler.trial():
                result, metrics = run_trial(
                    scenario_name,
                    seed,
                    params,
                    max_trace_records=max_trace_records,
                    timeout_s=timeout_s,
                    max_attempts=max_attempts,
                    fault_plan=fault_plan,
                    population=population,
                )
        else:
            result, metrics = run_trial(
                scenario_name,
                seed,
                params,
                max_trace_records=max_trace_records,
                timeout_s=timeout_s,
                max_attempts=max_attempts,
                fault_plan=fault_plan,
                population=population,
            )
        entry = {"result": result.to_dict(), "metrics": metrics}
        out.append(entry)
        if sink is not None:
            sink.put(
                trial_record(entry["result"], faulted=fault_plan is not None)
            )
    if profiler is not None:
        import os as _os

        profiler.dump(
            Path(cprofile_dir)
            / f"shard-{scenario_name}-{seeds[0]}-{_os.getpid()}.pstats"
        )
    return out


@dataclass(frozen=True)
class CampaignSpec:
    """One scenario swept over a seed range with fixed params."""

    scenario: str
    seeds: Sequence[int]
    params: Mapping[str, Any] = field(default_factory=dict)
    #: optional fault plan applied to every trial (part of the cache key)
    fault_plan: Optional[Any] = None
    #: optional device population built into every trial's world
    #: (also part of the cache key)
    population: Optional[Any] = None


@dataclass
class CampaignResult:
    """Everything one campaign produced, in seed order."""

    spec: CampaignSpec
    results: List[TrialResult]
    metrics: MetricsRegistry
    wall_time_s: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def trials(self) -> int:
        return len(self.results)

    @property
    def successes(self) -> int:
        return sum(1 for result in self.results if result.success)

    @property
    def errors(self) -> List[TrialResult]:
        return [result for result in self.results if result.error]

    @property
    def success_rate(self) -> float:
        return self.successes / self.trials if self.trials else 0.0


class CampaignRunner:
    """Fans a campaign's seeds across workers and merges the results."""

    def __init__(
        self,
        workers: int = 1,
        timeout_s: Optional[float] = 120.0,
        max_attempts: int = 2,
        max_trace_records: Optional[int] = DEFAULT_TRACE_RECORDS,
        cache: Optional[ResultCache] = None,
        progress: Optional[Callable[[int, int], None]] = None,
        telemetry: Optional[CampaignTelemetry] = None,
        cprofile_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        self.workers = max(1, workers)
        self.timeout_s = timeout_s
        self.max_attempts = max_attempts
        self.max_trace_records = max_trace_records
        self.cache = cache
        self.progress = progress
        self.telemetry = telemetry
        #: opt-in wall-clock cProfile sampling: shards dump pstats here
        self.cprofile_dir = (
            str(cprofile_dir) if cprofile_dir is not None else None
        )
        if self.cprofile_dir is not None:
            Path(self.cprofile_dir).mkdir(parents=True, exist_ok=True)

    # ----------------------------------------------------------------- run

    def run(self, spec: CampaignSpec) -> CampaignResult:
        started = time.perf_counter()
        get_scenario(spec.scenario)  # fail fast on unknown names
        params = dict(spec.params)
        seeds = list(spec.seeds)
        plan = FaultPlan.coerce(spec.fault_plan)
        plan_json = plan.to_jsonable() if plan is not None else None
        crowd = PopulationSpec.coerce(spec.population)
        crowd_json = crowd.to_jsonable() if crowd is not None else None

        by_seed: Dict[int, Dict[str, Any]] = {}
        keys: Dict[int, str] = {}
        pending: List[int] = []
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.begin_campaign(
                spec.scenario,
                total=len(dict.fromkeys(seeds)),
                faulted=plan is not None,
            )
        if self.cache is not None:
            for seed in seeds:
                keys[seed] = trial_key(
                    spec.scenario,
                    seed,
                    params,
                    fault_plan=plan_json,
                    population=crowd_json,
                )
            for seed in dict.fromkeys(seeds):
                entry = self.cache.get(keys[seed])
                if entry is not None:
                    by_seed[seed] = entry
                    if telemetry is not None:
                        telemetry.record(
                            trial_record(
                                entry["result"],
                                cached=True,
                                faulted=plan is not None,
                            )
                        )
                else:
                    pending.append(seed)
        else:
            pending = list(dict.fromkeys(seeds))
        cache_hits = len(set(seeds)) - len(pending)
        done = len(seeds) - len(pending)
        if self.progress is not None and done:
            self.progress(done, len(seeds))

        for seed, entry in self._execute(
            spec.scenario, pending, params, plan_json, crowd_json
        ):
            by_seed[seed] = entry
            if self.cache is not None:
                self.cache.put(keys[seed], entry)
            done += 1
            if self.progress is not None:
                self.progress(done, len(seeds))
        if telemetry is not None:
            telemetry.end_campaign()

        results: List[TrialResult] = []
        merged = MetricsRegistry()
        computed = set(pending)
        for seed in seeds:
            entry = by_seed[seed]
            result = TrialResult.from_dict(entry["result"])
            result.cached = self.cache is not None and seed not in computed
            results.append(result)
            merged.merge(entry["metrics"])
        return CampaignResult(
            spec=spec,
            results=results,
            metrics=merged,
            wall_time_s=time.perf_counter() - started,
            cache_hits=cache_hits if self.cache is not None else 0,
            cache_misses=len(pending) if self.cache is not None else 0,
        )

    # ------------------------------------------------------------ internals

    def _execute(
        self,
        scenario_name: str,
        seeds: List[int],
        params: Dict[str, Any],
        fault_plan: Optional[Dict[str, Any]] = None,
        population: Optional[Dict[str, Any]] = None,
    ):
        """Yield (seed, entry) for every missing seed, sharded.

        With telemetry attached, pooled workers stream one record per
        finished trial over a Manager queue; a parent-side drain thread
        feeds them to :class:`CampaignTelemetry` while ``pool.map`` is
        still blocked on whole shards.  Serial runs skip the queue and
        record inline.
        """
        if not seeds:
            return
        workers = min(self.workers, len(seeds))
        telemetry = self.telemetry
        if workers <= 1:
            sink = _InlineSink(telemetry) if telemetry is not None else None
            shard_args = (
                scenario_name,
                seeds,
                params,
                self.max_trace_records,
                self.timeout_s,
                self.max_attempts,
                fault_plan,
                population,
                sink,
                self.cprofile_dir,
            )
            for entry, seed in zip(_run_shard(shard_args), seeds):
                yield seed, entry
            return
        manager = drain = queue = None
        if telemetry is not None:
            manager = multiprocessing.Manager()
            queue = manager.Queue()
            drain = threading.Thread(
                target=telemetry.drain, args=(queue,), daemon=True
            )
            drain.start()
        shard_args = [
            (
                scenario_name,
                shard,
                params,
                self.max_trace_records,
                self.timeout_s,
                self.max_attempts,
                fault_plan,
                population,
                queue,
                self.cprofile_dir,
            )
            for shard in self._shards(seeds, workers)
        ]
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                for shard, entries in zip(
                    (args[1] for args in shard_args),
                    pool.map(_run_shard, shard_args),
                ):
                    for seed, entry in zip(shard, entries):
                        yield seed, entry
        finally:
            if queue is not None:
                queue.put(None)  # sentinel: stop the drain thread
                drain.join(timeout=30.0)
                manager.shutdown()

    @staticmethod
    def _shards(seeds: List[int], workers: int) -> List[List[int]]:
        """Round-robin split: balances unequal per-seed costs."""
        shards: List[List[int]] = [[] for _ in range(workers)]
        for index, seed in enumerate(seeds):
            shards[index % workers].append(seed)
        return [shard for shard in shards if shard]
