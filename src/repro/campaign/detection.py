"""Detection-evaluation campaign scenarios.

Two scenarios quantify the :mod:`repro.detect` subsystem at campaign
scale:

* ``detection-attack`` — stage one of the four attack classes against
  a monitored victim and record every detector's maximum score and
  first-alert time.  ``success`` means the *expected* detector cleared
  the scenario threshold (a true positive at that operating point).
* ``detection-benign`` — a day of ordinary traffic (discovery,
  pairing, reconnect with re-authentication, an encrypted session) on
  monitored devices.  ``success`` means *no* detector cleared the
  threshold (no false positive).

Both record raw scores in ``detail`` so ROC threshold sweeps
(:mod:`repro.detect.evaluation`) re-use cached trials — sweeping a new
threshold grid never re-simulates.  Under a ``--fault-plan`` the same
scenarios become robustness probes: how does detector quality degrade
on a lossy channel?
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.attacks.link_key_extraction import LinkKeyExtractionAttack
from repro.attacks.page_blocking import PageBlockingAttack
from repro.attacks.scenario import World, bond, standard_cast
from repro.campaign.trial import Scenario, register_scenario
from repro.detect import DetectionEngine
from repro.devices.catalog import spec_by_key

#: which detector is expected to catch which staged attack
DETECTOR_FOR_ATTACK = {
    "page-blocking": "page-blocking",
    "extraction": "link-key-anomaly",
    "knob": "entropy-downgrade",
    "surveillance": "surveillance",
    "blurtooth-bredr-to-le": "ctkd-anomaly",
    "blurtooth-le-to-bredr": "ctkd-anomaly",
}

#: catalog upgrades for stagings that need an LE transport: same
#: phone, dual-mode variant (see :mod:`repro.devices.catalog`)
_DUAL_MODE_SPEC = {
    "lg_velvet_android11": "lg_velvet_dual",
    "galaxy_s21_android11": "galaxy_s21_dual",
    "nexus_5x_android8": "nexus_5x_dual",
    "nexus_5x_android6": "nexus_5x_dual",
}


def _le_params(params: Dict[str, Any], *roles: str) -> Dict[str, Any]:
    """Swap the named cast roles to dual-mode spec variants."""
    upgraded = dict(params)
    for role in roles:
        key = upgraded[role]
        if not spec_by_key(key).has_le:
            upgraded[role] = _DUAL_MODE_SPEC.get(key, "nexus_5x_dual")
    return upgraded


def _cast(world: World, params: Dict[str, Any]):
    return standard_cast(
        world,
        m_spec=spec_by_key(params["m_spec"]),
        c_spec=spec_by_key(params["c_spec"]),
        a_spec=spec_by_key(params["a_spec"]),
    )


def _engine_detail(
    engine: DetectionEngine, threshold: float
) -> Dict[str, Any]:
    summary = engine.summary()
    summary["threshold"] = threshold
    summary["scores"] = summary.pop("max_scores")
    return summary


@register_scenario
class DetectionAttackScenario(Scenario):
    """One staged attack against a monitored victim (TPR material)."""

    name = "detection-attack"
    description = "staged attack vs the online detectors (TPR/latency)"
    default_params = {
        "m_spec": "lg_velvet_android11",
        "c_spec": "nexus_5x_android8",
        "a_spec": "nexus_5x_android6",
        "attack": "page-blocking",
        "threshold": 0.7,
        "respond": False,
        "pairing_delay": 5.0,
    }

    def execute(
        self, world: World, params: Dict[str, Any], seed: int
    ) -> Tuple[bool, str, Dict[str, Any]]:
        attack = params["attack"]
        expected = DETECTOR_FOR_ATTACK.get(attack)
        if expected is None:
            raise ValueError(
                f"unknown attack {attack!r}; "
                f"known: {sorted(DETECTOR_FOR_ATTACK)}"
            )
        threshold = params["threshold"]
        stage = getattr(self, f"_stage_{attack.replace('-', '_')}")
        engine, attack_succeeded = stage(world, params)
        engine.finish()
        scores = engine.max_scores()
        detected = scores.get(expected, 0.0) >= threshold
        detail = _engine_detail(engine, threshold)
        detail.update(
            {
                "attack": attack,
                "expected_detector": expected,
                "detected": detected,
                "attack_succeeded": bool(attack_succeeded),
            }
        )
        return detected, "detected" if detected else "missed", detail

    # ------------------------------------------------------------- stagings

    def _stage_page_blocking(self, world: World, params: Dict[str, Any]):
        m, c, a = _cast(world, params)
        engine = DetectionEngine().attach_world(world, roles=["M"])
        if params["respond"]:
            engine.install_response(m)
        report = PageBlockingAttack(world, a, c, m).run(
            pairing_delay=params["pairing_delay"]
        )
        return engine, report.success

    def _stage_extraction(self, world: World, params: Dict[str, Any]):
        m, c, a = _cast(world, params)
        bond(world, c, m)
        engine = DetectionEngine().attach_world(world, roles=["C"])
        report = LinkKeyExtractionAttack(world, a, c, m).run(validate=False)
        return engine, report.extraction_success

    def _stage_knob(self, world: World, params: Dict[str, Any]):
        m, c, a = _cast(world, params)
        bond(world, c, m)
        m.controller.max_encryption_key_size = 1
        c.controller.min_encryption_key_size = 1
        engine = DetectionEngine().attach_world(world, roles=["M"])
        operation = m.host.gap.pair(c.bd_addr)
        world.run_for(10.0)
        encryption = m.host.gap.enable_encryption(c.bd_addr)
        world.run_for(2.0)
        return engine, bool(operation.success and encryption.success)

    def _stage_surveillance(self, world: World, params: Dict[str, Any]):
        m, c, a = _cast(world, params)
        engine = DetectionEngine().attach_world(world, roles=["M"])
        # The attacker sweeps the neighbourhood: repeated short
        # inquiries plus a few pages toward the victim.
        for _ in range(6):
            a.host.gap.start_discovery(inquiry_length=2)
            world.run_for(3.5)
        for _ in range(3):
            a.host.gap.connect(m.bd_addr)
            world.run_for(1.5)
            a.host.gap.disconnect(m.bd_addr)
            world.run_for(0.5)
        return engine, True

    def _stage_blurtooth_bredr_to_le(
        self, world: World, params: Dict[str, Any]
    ):
        from repro.attacks.blurtooth import run_bredr_to_le_pivot
        from repro.campaign.blurtooth import _victim_le_session

        m, c, a = _cast(world, _le_params(params, "m_spec", "c_spec"))
        bond(world, c, m)
        engine = DetectionEngine().attach_world(world, roles=["M"])
        capture = _victim_le_session(world, m, c)
        report = LinkKeyExtractionAttack(world, a, c, m).run(validate=False)
        if not report.extraction_success:
            return engine, False
        pivot = run_bredr_to_le_pivot(
            capture, report.extracted_key, victim=m, victim_peer_addr=c.bd_addr
        )
        return engine, pivot.success

    def _stage_blurtooth_le_to_bredr(
        self, world: World, params: Dict[str, Any]
    ):
        from repro.attacks.blurtooth import run_le_to_bredr_pivot
        from repro.host.pbap import Contact

        m, c, a = _cast(
            world, _le_params(params, "m_spec", "c_spec", "a_spec")
        )
        m.host.pbap.load_phonebook(
            [Contact("Alice Example", "+1-202-555-0100")]
        )
        bond(world, c, m)
        engine = DetectionEngine().attach_world(world, roles=["M"])
        report = run_le_to_bredr_pivot(world, a, m, c)
        return engine, bool(
            report.overwrote_bredr_bond and report.bredr_pivot_success
        )


@register_scenario
class DetectionBenignScenario(Scenario):
    """Ordinary traffic on monitored devices (FPR material)."""

    name = "detection-benign"
    description = "benign traffic vs the online detectors (FPR)"
    default_params = {
        "m_spec": "lg_velvet_android11",
        "c_spec": "nexus_5x_android8",
        "threshold": 0.7,
    }

    def execute(
        self, world: World, params: Dict[str, Any], seed: int
    ) -> Tuple[bool, str, Dict[str, Any]]:
        threshold = params["threshold"]
        m = world.add_device("M", spec_by_key(params["m_spec"]))
        c = world.add_device("C", spec_by_key(params["c_spec"]))
        m.power_on()
        c.power_on()
        world.run_for(0.5)
        engine = DetectionEngine().attach_world(world, roles=["M", "C"])

        # One discovery, a consented pairing, a reconnect with
        # re-authentication (the peer serves its stored key — the
        # benign twin of the extraction pattern), an encrypted session.
        m.host.gap.start_discovery(inquiry_length=4)
        world.run_for(6.0)
        c.user.note_pairing_initiated(m.bd_addr, world.simulator.now)
        pairing = m.host.gap.pair(c.bd_addr)
        world.run_for(20.0)
        paired = bool(pairing.success)
        if paired:
            m.host.gap.disconnect(c.bd_addr)
            world.run_for(2.0)
            c.host.gap.connect(m.bd_addr)
            world.run_for(2.0)
            c.host.gap.enable_encryption(m.bd_addr)
            world.run_for(3.0)
            c.host.sdp.query(m.bd_addr)
            world.run_for(3.0)
            c.host.gap.disconnect(m.bd_addr)
            world.run_for(2.0)

        engine.finish()
        false_alerts = [
            alert for alert in engine.alerts if alert.score >= threshold
        ]
        detail = _engine_detail(engine, threshold)
        detail.update(
            {
                "paired": paired,
                "false_alerts": [str(alert) for alert in false_alerts],
            }
        )
        clean = not false_alerts
        return clean, "clean" if clean else "false_alarm", detail
