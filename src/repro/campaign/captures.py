"""Campaign-produced captures: seeded btsnoop corpora for the service.

The load generator (``blap service loadgen``) and the CI smoke job
need realistic traffic without shipping binary fixtures: these helpers
run the same seeded worlds the detection campaigns use and hand back
the victim-side btsnoop bytes — an attack capture carries the BLAP
page-blocking signature, a benign capture is an ordinary pairing.
Every capture is a pure function of its seed, so a loadgen corpus is
reproducible run to run.
"""

from __future__ import annotations

from typing import List

from repro.attacks.page_blocking import PageBlockingAttack
from repro.attacks.scenario import WorldConfig, build_world, standard_cast
from repro.snoop.hcidump import HciDump

#: seeds mirroring the detection-campaign fixtures
DEFAULT_ATTACK_SEED = 44
DEFAULT_BENIGN_SEED = 45


def attack_capture(seed: int = DEFAULT_ATTACK_SEED) -> bytes:
    """Victim-M btsnoop bytes from one seeded page-blocking attack."""
    world = build_world(WorldConfig(seed=seed))
    m, c, a = standard_cast(world)
    report = PageBlockingAttack(world, a, c, m).run()
    return report.m_dump.to_btsnoop_bytes()


def benign_capture(seed: int = DEFAULT_BENIGN_SEED) -> bytes:
    """Victim-M btsnoop bytes from one ordinary seeded pairing."""
    world = build_world(WorldConfig(seed=seed))
    m, c, a = standard_cast(world)
    dump = HciDump().attach(m.transport)
    c.user.note_pairing_initiated(m.bd_addr, world.simulator.now)
    m.host.gap.pair(c.bd_addr)
    world.run_for(20.0)
    return dump.to_btsnoop_bytes()


def produce_captures(
    count: int = 2,
    kind: str = "mixed",
    seed_base: int = 0,
) -> List[bytes]:
    """A corpus of ``count`` captures for loadgen clients to replay.

    ``kind`` is ``"attack"``, ``"benign"`` or ``"mixed"``
    (alternating).  Seeds offset from the campaign defaults by
    ``seed_base + index`` so corpora of any size stay deterministic.
    """
    if kind not in ("attack", "benign", "mixed"):
        raise ValueError(
            f"kind must be attack, benign or mixed, got {kind!r}"
        )
    captures: List[bytes] = []
    for index in range(count):
        if kind == "attack" or (kind == "mixed" and index % 2 == 0):
            captures.append(
                attack_capture(DEFAULT_ATTACK_SEED + seed_base + index)
            )
        else:
            captures.append(
                benign_capture(DEFAULT_BENIGN_SEED + seed_base + index)
            )
    return captures
