"""The uniform trial API every attack runs behind.

One calling convention for every experiment in the repo:

* a :class:`Scenario` knows how to stage one attack inside a fresh
  :class:`~repro.attacks.scenario.World` — ``build(world, config)``
  returns a :class:`Trial`;
* ``Trial.run()`` executes it and reports a :class:`TrialResult` whose
  fields are plain JSON-serialisable values, so results travel across
  worker processes and in and out of the on-disk campaign cache
  unchanged;
* the registry maps scenario names to instances, so the campaign
  runner, the CLI and the benchmarks all launch attacks the same way::

      scenario = get_scenario("page-blocking")
      trial = scenario.build(world, TrialConfig(seed=3))
      result = trial.run()

Scenario ``params`` are free-form per scenario (device keys, delays,
flags) but must stay JSON-serialisable: they are part of the cache key.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.attacks.scenario import World

try:  # pragma: no cover - py3.9 has Protocol in typing
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


@dataclass(frozen=True)
class TrialConfig:
    """One trial's identity: the seed plus scenario parameters."""

    seed: int
    params: Mapping[str, Any] = field(default_factory=dict)


@dataclass
class TrialResult:
    """The uniform outcome record every scenario produces.

    ``success`` carries the same semantics as the scenario's legacy
    report (``report.success`` / ``report.vulnerable`` /
    ``trial.attacker_won`` ...); ``detail`` holds the scenario-specific
    facts, restricted to JSON-serialisable values.
    """

    scenario: str
    seed: int
    success: bool
    outcome: str
    detail: Dict[str, Any] = field(default_factory=dict)
    sim_time_s: float = 0.0
    wall_time_s: float = 0.0
    attempts: int = 1
    error: Optional[str] = None
    cached: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "success": self.success,
            "outcome": self.outcome,
            "detail": self.detail,
            "sim_time_s": self.sim_time_s,
            "wall_time_s": self.wall_time_s,
            "attempts": self.attempts,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TrialResult":
        return cls(
            scenario=data["scenario"],
            seed=data["seed"],
            success=data["success"],
            outcome=data["outcome"],
            detail=dict(data.get("detail", {})),
            sim_time_s=data.get("sim_time_s", 0.0),
            wall_time_s=data.get("wall_time_s", 0.0),
            attempts=data.get("attempts", 1),
            error=data.get("error"),
        )


@runtime_checkable
class Trial(Protocol):
    """Anything with a ``run() -> TrialResult``."""

    def run(self) -> TrialResult:  # pragma: no cover - protocol
        ...


#: a scenario's execute hook: (world, params, seed) ->
#: (success, outcome, detail)
ExecuteFn = Callable[[World, Dict[str, Any], int], Tuple[bool, str, Dict[str, Any]]]


class ScenarioTrial:
    """The standard :class:`Trial`: times the execute hook and wraps
    its verdict into a :class:`TrialResult`."""

    def __init__(
        self,
        scenario: "Scenario",
        world: World,
        config: TrialConfig,
        params: Dict[str, Any],
    ) -> None:
        self.scenario = scenario
        self.world = world
        self.config = config
        self.params = params

    def run(self) -> TrialResult:
        started = time.perf_counter()
        success, outcome, detail = self.scenario.execute(
            self.world, self.params, self.config.seed
        )
        return TrialResult(
            scenario=self.scenario.name,
            seed=self.config.seed,
            success=bool(success),
            outcome=outcome,
            detail=detail,
            sim_time_s=self.world.simulator.now,
            wall_time_s=time.perf_counter() - started,
        )


class Scenario:
    """Base class: stage one attack in a fresh world.

    Subclasses set ``name`` / ``default_params`` and implement
    :meth:`execute`.  ``build`` satisfies the Scenario protocol the
    campaign runner consumes; overriding it is allowed for scenarios
    that need a custom :class:`Trial`.
    """

    #: registry key (CLI spelling, e.g. ``"page-blocking"``)
    name: str = ""
    #: one line for ``blap campaign list``
    description: str = ""
    #: scenario knobs merged under ``TrialConfig.params``
    default_params: Dict[str, Any] = {}

    def merged_params(self, config: TrialConfig) -> Dict[str, Any]:
        params = dict(self.default_params)
        unknown = set(config.params) - set(params)
        if unknown:
            raise KeyError(
                f"{self.name}: unknown params {sorted(unknown)}; "
                f"known: {sorted(params)}"
            )
        params.update(config.params)
        return params

    def build(self, world: World, config: TrialConfig) -> Trial:
        return ScenarioTrial(self, world, config, self.merged_params(config))

    def execute(
        self, world: World, params: Dict[str, Any], seed: int
    ) -> Tuple[bool, str, Dict[str, Any]]:
        raise NotImplementedError


# ------------------------------------------------------------------ registry

_REGISTRY: Dict[str, Scenario] = {}


def register_scenario(scenario: Scenario) -> Scenario:
    """Add a scenario (instance or class — classes are instantiated)."""
    if isinstance(scenario, type):
        scenario = scenario()
    if not scenario.name:
        raise ValueError(f"{scenario!r} has no name")
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: {scenario_names()}"
        ) from None


def scenario_names() -> List[str]:
    return sorted(_REGISTRY)
