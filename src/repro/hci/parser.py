"""Parse raw HCI bytes back into typed packets.

This is the foundation of both forensic tools in the reproduction: the
HCI dump renderer (Fig. 3 / Fig. 12) and the link key extractor.  The
parser is deliberately tolerant — an unknown opcode or event becomes a
raw packet instead of an error, because real dump files contain vendor
traffic the tools must skim over.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.core.errors import HciError
from repro.hci.constants import PacketIndicator
from repro.hci.packets import (
    COMMAND_REGISTRY,
    EVENT_REGISTRY,
    HciAclData,
    HciCommand,
    HciEvent,
    HciPacket,
)


def parse_packet(indicator: int, payload: bytes) -> HciPacket:
    """Parse one packet given its H4 indicator and body bytes."""
    if indicator == PacketIndicator.COMMAND:
        return parse_command(payload)
    if indicator == PacketIndicator.EVENT:
        return parse_event(payload)
    if indicator == PacketIndicator.ACL_DATA:
        return HciAclData.from_bytes(payload)
    raise HciError(f"unsupported packet indicator {indicator:#x}")


def parse_command(payload: bytes) -> HciCommand:
    """Parse command bytes (opcode + length + params)."""
    if len(payload) < 3:
        raise HciError("command packet too short")
    opcode = int.from_bytes(payload[0:2], "little")
    length = payload[2]
    params = payload[3 : 3 + length]
    if len(params) != length:
        raise HciError(
            f"command truncated: declared {length} bytes, got {len(params)}"
        )
    cls = COMMAND_REGISTRY.get(opcode)
    if cls is None:
        return HciCommand.raw(opcode, params)
    try:
        return cls.from_parameters(params)
    except (IndexError, ValueError) as exc:
        raise HciError(f"malformed {cls.__name__} parameters: {exc}") from exc


def parse_event(payload: bytes) -> HciEvent:
    """Parse event bytes (event code + length + params)."""
    if len(payload) < 2:
        raise HciError("event packet too short")
    code = payload[0]
    length = payload[1]
    params = payload[2 : 2 + length]
    if len(params) != length:
        raise HciError(
            f"event truncated: declared {length} bytes, got {len(params)}"
        )
    cls = EVENT_REGISTRY.get(code)
    if cls is None:
        return HciEvent.raw(code, params)
    try:
        return cls.from_parameters(params)
    except (IndexError, ValueError) as exc:
        raise HciError(f"malformed {cls.__name__} parameters: {exc}") from exc


def parse_h4_stream(stream: bytes) -> Iterator[Tuple[int, HciPacket]]:
    """Walk a concatenated H4 byte stream, yielding (offset, packet).

    This is what the USB-sniff extractor runs over the captured
    transfer stream after the binary-to-hex conversion step.
    """
    offset = 0
    total = len(stream)
    while offset < total:
        indicator = stream[offset]
        if indicator == PacketIndicator.COMMAND:
            if offset + 4 > total:
                raise HciError(f"truncated command at offset {offset}")
            length = stream[offset + 3]
            end = offset + 4 + length
            body = stream[offset + 1 : end]
        elif indicator == PacketIndicator.EVENT:
            if offset + 3 > total:
                raise HciError(f"truncated event at offset {offset}")
            length = stream[offset + 2]
            end = offset + 3 + length
            body = stream[offset + 1 : end]
        elif indicator == PacketIndicator.ACL_DATA:
            if offset + 5 > total:
                raise HciError(f"truncated ACL packet at offset {offset}")
            length = int.from_bytes(stream[offset + 3 : offset + 5], "little")
            end = offset + 5 + length
            body = stream[offset + 1 : end]
        else:
            raise HciError(
                f"unknown packet indicator {indicator:#04x} at offset {offset}"
            )
        if end > total:
            raise HciError(f"packet at offset {offset} runs past end of stream")
        yield offset, parse_packet(indicator, body)
        offset = end
