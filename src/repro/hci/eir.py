"""Extended Inquiry Response data structures (Vol 3, Part C, §8).

EIR payloads are a sequence of ``length | type | data`` structures.
We implement the types discovery needs: the complete/shortened local
name and the 16-bit service UUID list — enough for a scanner to show
"LG VELVET (phone, PBAP/MAP)" without a round trip, which is also why
spoofing a name is trivial for the attacker (it's self-reported).
"""

from __future__ import annotations

from typing import Dict, List, Optional

EIR_FLAGS = 0x01
EIR_UUID16_INCOMPLETE = 0x02
EIR_UUID16_COMPLETE = 0x03
EIR_SHORTENED_LOCAL_NAME = 0x08
EIR_COMPLETE_LOCAL_NAME = 0x09
EIR_TX_POWER = 0x0A

_MAX_EIR = 240


def build_eir(
    name: Optional[str] = None,
    uuid16s: Optional[List[int]] = None,
    tx_power: Optional[int] = None,
) -> bytes:
    """Assemble an EIR payload (truncating the name to fit 240 bytes)."""
    out = bytearray()
    if uuid16s:
        data = b"".join(uuid.to_bytes(2, "little") for uuid in uuid16s)
        out += bytes([len(data) + 1, EIR_UUID16_COMPLETE]) + data
    if tx_power is not None:
        out += bytes([2, EIR_TX_POWER, tx_power & 0xFF])
    if name is not None:
        raw = name.encode("utf-8")
        room = _MAX_EIR - len(out) - 2
        if len(raw) <= room:
            out += bytes([len(raw) + 1, EIR_COMPLETE_LOCAL_NAME]) + raw
        else:
            out += bytes([room + 1, EIR_SHORTENED_LOCAL_NAME]) + raw[:room]
    if len(out) > _MAX_EIR:
        raise ValueError("EIR payload exceeds 240 bytes")
    return bytes(out)


def parse_eir(raw: bytes) -> Dict[int, bytes]:
    """Walk the EIR structures → {type: data}; tolerant of padding."""
    structures: Dict[int, bytes] = {}
    offset = 0
    while offset < len(raw):
        length = raw[offset]
        if length == 0:  # zero-padding terminates the significant part
            break
        chunk = raw[offset + 1 : offset + 1 + length]
        if len(chunk) < 1:
            break
        structures[chunk[0]] = chunk[1:]
        offset += 1 + length
    return structures


def eir_local_name(raw: bytes) -> Optional[str]:
    """Extract the (complete or shortened) local name, if present."""
    structures = parse_eir(raw)
    for kind in (EIR_COMPLETE_LOCAL_NAME, EIR_SHORTENED_LOCAL_NAME):
        if kind in structures:
            return structures[kind].decode("utf-8", errors="replace")
    return None


def eir_uuid16s(raw: bytes) -> List[int]:
    """Extract the advertised 16-bit service UUIDs."""
    structures = parse_eir(raw)
    for kind in (EIR_UUID16_COMPLETE, EIR_UUID16_INCOMPLETE):
        if kind in structures:
            data = structures[kind]
            return [
                int.from_bytes(data[i : i + 2], "little")
                for i in range(0, len(data) - 1, 2)
            ]
    return []
