"""HCI numeric constants from the Core Specification (Vol 4, Part E).

Opcodes are 16-bit values combining a 6-bit Opcode Group Field (OGF)
and a 10-bit Opcode Command Field (OCF): ``opcode = (ogf << 10) | ocf``.
On the wire they are little-endian, which is why the paper's USB
extractor greps for ``0b 04 16`` — opcode 0x040B
(HCI_Link_Key_Request_Reply) followed by its 0x16-byte payload length.
"""

from __future__ import annotations

import enum


class PacketIndicator(enum.IntEnum):
    """H4/UART packet indicator bytes (also used as btsnoop hints)."""

    COMMAND = 0x01
    ACL_DATA = 0x02
    SCO_DATA = 0x03
    EVENT = 0x04


class Ogf(enum.IntEnum):
    """Opcode Group Fields."""

    LINK_CONTROL = 0x01
    LINK_POLICY = 0x02
    CONTROLLER_BASEBAND = 0x03
    INFORMATIONAL = 0x04
    STATUS = 0x05
    TESTING = 0x06


def make_opcode(ogf: int, ocf: int) -> int:
    """Combine OGF and OCF into a 16-bit opcode."""
    return ((ogf & 0x3F) << 10) | (ocf & 0x3FF)


class Opcode(enum.IntEnum):
    """Command opcodes used by the simulated stack."""

    # Link Control (OGF 0x01)
    INQUIRY = make_opcode(0x01, 0x0001)
    INQUIRY_CANCEL = make_opcode(0x01, 0x0002)
    CREATE_CONNECTION = make_opcode(0x01, 0x0005)
    DISCONNECT = make_opcode(0x01, 0x0006)
    CREATE_CONNECTION_CANCEL = make_opcode(0x01, 0x0008)
    ACCEPT_CONNECTION_REQUEST = make_opcode(0x01, 0x0009)
    REJECT_CONNECTION_REQUEST = make_opcode(0x01, 0x000A)
    LINK_KEY_REQUEST_REPLY = make_opcode(0x01, 0x000B)
    LINK_KEY_REQUEST_NEGATIVE_REPLY = make_opcode(0x01, 0x000C)
    PIN_CODE_REQUEST_REPLY = make_opcode(0x01, 0x000D)
    PIN_CODE_REQUEST_NEGATIVE_REPLY = make_opcode(0x01, 0x000E)
    AUTHENTICATION_REQUESTED = make_opcode(0x01, 0x0011)
    SET_CONNECTION_ENCRYPTION = make_opcode(0x01, 0x0013)
    REMOTE_NAME_REQUEST = make_opcode(0x01, 0x0019)
    READ_REMOTE_SUPPORTED_FEATURES = make_opcode(0x01, 0x001B)
    READ_REMOTE_VERSION_INFORMATION = make_opcode(0x01, 0x001D)
    IO_CAPABILITY_REQUEST_REPLY = make_opcode(0x01, 0x002B)
    USER_CONFIRMATION_REQUEST_REPLY = make_opcode(0x01, 0x002C)
    USER_CONFIRMATION_REQUEST_NEGATIVE_REPLY = make_opcode(0x01, 0x002D)
    USER_PASSKEY_REQUEST_REPLY = make_opcode(0x01, 0x002E)
    USER_PASSKEY_REQUEST_NEGATIVE_REPLY = make_opcode(0x01, 0x002F)
    SETUP_SYNCHRONOUS_CONNECTION = make_opcode(0x01, 0x0028)
    REMOTE_OOB_DATA_REQUEST_REPLY = make_opcode(0x01, 0x0030)
    REMOTE_OOB_DATA_REQUEST_NEGATIVE_REPLY = make_opcode(0x01, 0x0033)
    IO_CAPABILITY_REQUEST_NEGATIVE_REPLY = make_opcode(0x01, 0x0034)

    # Controller & Baseband (OGF 0x03)
    SET_EVENT_MASK = make_opcode(0x03, 0x0001)
    RESET = make_opcode(0x03, 0x0003)
    WRITE_LOCAL_NAME = make_opcode(0x03, 0x0013)
    READ_LOCAL_NAME = make_opcode(0x03, 0x0014)
    READ_STORED_LINK_KEY = make_opcode(0x03, 0x000D)
    WRITE_STORED_LINK_KEY = make_opcode(0x03, 0x0011)
    DELETE_STORED_LINK_KEY = make_opcode(0x03, 0x0012)
    WRITE_PAGE_TIMEOUT = make_opcode(0x03, 0x0018)
    WRITE_SCAN_ENABLE = make_opcode(0x03, 0x001A)
    WRITE_PAGE_SCAN_ACTIVITY = make_opcode(0x03, 0x001C)
    WRITE_INQUIRY_SCAN_ACTIVITY = make_opcode(0x03, 0x001E)
    WRITE_AUTHENTICATION_ENABLE = make_opcode(0x03, 0x0020)
    WRITE_CLASS_OF_DEVICE = make_opcode(0x03, 0x0024)
    WRITE_INQUIRY_MODE = make_opcode(0x03, 0x0045)
    WRITE_EXTENDED_INQUIRY_RESPONSE = make_opcode(0x03, 0x0052)
    WRITE_SIMPLE_PAIRING_MODE = make_opcode(0x03, 0x0056)
    WRITE_SECURE_CONNECTIONS_HOST_SUPPORT = make_opcode(0x03, 0x007A)

    READ_LOCAL_OOB_DATA = make_opcode(0x03, 0x0057)

    # Informational (OGF 0x04)
    READ_LOCAL_VERSION_INFORMATION = make_opcode(0x04, 0x0001)
    READ_LOCAL_SUPPORTED_FEATURES = make_opcode(0x04, 0x0003)
    READ_BD_ADDR = make_opcode(0x04, 0x0009)

    @property
    def ogf(self) -> int:
        return (self.value >> 10) & 0x3F

    @property
    def ocf(self) -> int:
        return self.value & 0x3FF


_OPCODE_NAMES = {
    Opcode.INQUIRY: "HCI_Inquiry",
    Opcode.INQUIRY_CANCEL: "HCI_Inquiry_Cancel",
    Opcode.CREATE_CONNECTION: "HCI_Create_Connection",
    Opcode.DISCONNECT: "HCI_Disconnect",
    Opcode.CREATE_CONNECTION_CANCEL: "HCI_Create_Connection_Cancel",
    Opcode.ACCEPT_CONNECTION_REQUEST: "HCI_Accept_Connection_Request",
    Opcode.REJECT_CONNECTION_REQUEST: "HCI_Reject_Connection_Request",
    Opcode.LINK_KEY_REQUEST_REPLY: "HCI_Link_Key_Request_Reply",
    Opcode.LINK_KEY_REQUEST_NEGATIVE_REPLY: "HCI_Link_Key_Request_Negative_Reply",
    Opcode.PIN_CODE_REQUEST_REPLY: "HCI_PIN_Code_Request_Reply",
    Opcode.PIN_CODE_REQUEST_NEGATIVE_REPLY: "HCI_PIN_Code_Request_Negative_Reply",
    Opcode.AUTHENTICATION_REQUESTED: "HCI_Authentication_Requested",
    Opcode.SET_CONNECTION_ENCRYPTION: "HCI_Set_Connection_Encryption",
    Opcode.REMOTE_NAME_REQUEST: "HCI_Remote_Name_Request",
    Opcode.READ_REMOTE_SUPPORTED_FEATURES: "HCI_Read_Remote_Supported_Features",
    Opcode.READ_REMOTE_VERSION_INFORMATION: "HCI_Read_Remote_Version_Information",
    Opcode.IO_CAPABILITY_REQUEST_REPLY: "HCI_IO_Capability_Request_Reply",
    Opcode.USER_CONFIRMATION_REQUEST_REPLY: "HCI_User_Confirmation_Request_Reply",
    Opcode.USER_CONFIRMATION_REQUEST_NEGATIVE_REPLY: (
        "HCI_User_Confirmation_Request_Negative_Reply"
    ),
    Opcode.USER_PASSKEY_REQUEST_REPLY: "HCI_User_Passkey_Request_Reply",
    Opcode.USER_PASSKEY_REQUEST_NEGATIVE_REPLY: (
        "HCI_User_Passkey_Request_Negative_Reply"
    ),
    Opcode.IO_CAPABILITY_REQUEST_NEGATIVE_REPLY: (
        "HCI_IO_Capability_Request_Negative_Reply"
    ),
    Opcode.SETUP_SYNCHRONOUS_CONNECTION: "HCI_Setup_Synchronous_Connection",
    Opcode.REMOTE_OOB_DATA_REQUEST_REPLY: "HCI_Remote_OOB_Data_Request_Reply",
    Opcode.REMOTE_OOB_DATA_REQUEST_NEGATIVE_REPLY: (
        "HCI_Remote_OOB_Data_Request_Negative_Reply"
    ),
    Opcode.READ_LOCAL_OOB_DATA: "HCI_Read_Local_OOB_Data",
    Opcode.SET_EVENT_MASK: "HCI_Set_Event_Mask",
    Opcode.RESET: "HCI_Reset",
    Opcode.WRITE_LOCAL_NAME: "HCI_Write_Local_Name",
    Opcode.READ_LOCAL_NAME: "HCI_Read_Local_Name",
    Opcode.READ_STORED_LINK_KEY: "HCI_Read_Stored_Link_Key",
    Opcode.WRITE_STORED_LINK_KEY: "HCI_Write_Stored_Link_Key",
    Opcode.DELETE_STORED_LINK_KEY: "HCI_Delete_Stored_Link_Key",
    Opcode.WRITE_PAGE_TIMEOUT: "HCI_Write_Page_Timeout",
    Opcode.WRITE_SCAN_ENABLE: "HCI_Write_Scan_Enable",
    Opcode.WRITE_PAGE_SCAN_ACTIVITY: "HCI_Write_Page_Scan_Activity",
    Opcode.WRITE_INQUIRY_SCAN_ACTIVITY: "HCI_Write_Inquiry_Scan_Activity",
    Opcode.WRITE_AUTHENTICATION_ENABLE: "HCI_Write_Authentication_Enable",
    Opcode.WRITE_CLASS_OF_DEVICE: "HCI_Write_Class_Of_Device",
    Opcode.WRITE_INQUIRY_MODE: "HCI_Write_Inquiry_Mode",
    Opcode.WRITE_EXTENDED_INQUIRY_RESPONSE: "HCI_Write_Extended_Inquiry_Response",
    Opcode.WRITE_SIMPLE_PAIRING_MODE: "HCI_Write_Simple_Pairing_Mode",
    Opcode.WRITE_SECURE_CONNECTIONS_HOST_SUPPORT: (
        "HCI_Write_Secure_Connections_Host_Support"
    ),
    Opcode.READ_LOCAL_VERSION_INFORMATION: "HCI_Read_Local_Version_Information",
    Opcode.READ_LOCAL_SUPPORTED_FEATURES: "HCI_Read_Local_Supported_Features",
    Opcode.READ_BD_ADDR: "HCI_Read_BD_ADDR",
}


def opcode_name(opcode: int) -> str:
    """Human-readable command name for an opcode value."""
    try:
        return _OPCODE_NAMES[Opcode(opcode)]
    except ValueError:
        return f"HCI_Unknown_Opcode_{opcode:#06x}"


class EventCode(enum.IntEnum):
    """Event codes used by the simulated stack."""

    INQUIRY_COMPLETE = 0x01
    INQUIRY_RESULT = 0x02
    CONNECTION_COMPLETE = 0x03
    CONNECTION_REQUEST = 0x04
    DISCONNECTION_COMPLETE = 0x05
    AUTHENTICATION_COMPLETE = 0x06
    REMOTE_NAME_REQUEST_COMPLETE = 0x07
    ENCRYPTION_CHANGE = 0x08
    READ_REMOTE_SUPPORTED_FEATURES_COMPLETE = 0x0B
    READ_REMOTE_VERSION_INFORMATION_COMPLETE = 0x0C
    COMMAND_COMPLETE = 0x0E
    COMMAND_STATUS = 0x0F
    HARDWARE_ERROR = 0x10
    ROLE_CHANGE = 0x12
    MODE_CHANGE = 0x14
    RETURN_LINK_KEYS = 0x15
    PIN_CODE_REQUEST = 0x16
    LINK_KEY_REQUEST = 0x17
    LINK_KEY_NOTIFICATION = 0x18
    EXTENDED_INQUIRY_RESULT = 0x2F
    IO_CAPABILITY_REQUEST = 0x31
    IO_CAPABILITY_RESPONSE = 0x32
    USER_CONFIRMATION_REQUEST = 0x33
    USER_PASSKEY_REQUEST = 0x34
    REMOTE_OOB_DATA_REQUEST = 0x35
    SYNCHRONOUS_CONNECTION_COMPLETE = 0x2C
    SIMPLE_PAIRING_COMPLETE = 0x36
    USER_PASSKEY_NOTIFICATION = 0x3B


_EVENT_NAMES = {
    EventCode.INQUIRY_COMPLETE: "HCI_Inquiry_Complete",
    EventCode.INQUIRY_RESULT: "HCI_Inquiry_Result",
    EventCode.CONNECTION_COMPLETE: "HCI_Connection_Complete",
    EventCode.CONNECTION_REQUEST: "HCI_Connection_Request",
    EventCode.DISCONNECTION_COMPLETE: "HCI_Disconnection_Complete",
    EventCode.AUTHENTICATION_COMPLETE: "HCI_Authentication_Complete",
    EventCode.REMOTE_NAME_REQUEST_COMPLETE: "HCI_Remote_Name_Request_Complete",
    EventCode.ENCRYPTION_CHANGE: "HCI_Encryption_Change",
    EventCode.READ_REMOTE_SUPPORTED_FEATURES_COMPLETE: (
        "HCI_Read_Remote_Supported_Features_Complete"
    ),
    EventCode.READ_REMOTE_VERSION_INFORMATION_COMPLETE: (
        "HCI_Read_Remote_Version_Information_Complete"
    ),
    EventCode.COMMAND_COMPLETE: "HCI_Command_Complete",
    EventCode.COMMAND_STATUS: "HCI_Command_Status",
    EventCode.HARDWARE_ERROR: "HCI_Hardware_Error",
    EventCode.ROLE_CHANGE: "HCI_Role_Change",
    EventCode.MODE_CHANGE: "HCI_Mode_Change",
    EventCode.RETURN_LINK_KEYS: "HCI_Return_Link_Keys",
    EventCode.PIN_CODE_REQUEST: "HCI_PIN_Code_Request",
    EventCode.LINK_KEY_REQUEST: "HCI_Link_Key_Request",
    EventCode.LINK_KEY_NOTIFICATION: "HCI_Link_Key_Notification",
    EventCode.EXTENDED_INQUIRY_RESULT: "HCI_Extended_Inquiry_Result",
    EventCode.IO_CAPABILITY_REQUEST: "HCI_IO_Capability_Request",
    EventCode.IO_CAPABILITY_RESPONSE: "HCI_IO_Capability_Response",
    EventCode.USER_CONFIRMATION_REQUEST: "HCI_User_Confirmation_Request",
    EventCode.USER_PASSKEY_REQUEST: "HCI_User_Passkey_Request",
    EventCode.REMOTE_OOB_DATA_REQUEST: "HCI_Remote_OOB_Data_Request",
    EventCode.SYNCHRONOUS_CONNECTION_COMPLETE: "HCI_Synchronous_Connection_Complete",
    EventCode.SIMPLE_PAIRING_COMPLETE: "HCI_Simple_Pairing_Complete",
    EventCode.USER_PASSKEY_NOTIFICATION: "HCI_User_Passkey_Notification",
}


def event_name(code: int) -> str:
    """Human-readable event name for an event code value."""
    try:
        return _EVENT_NAMES[EventCode(code)]
    except ValueError:
        return f"HCI_Unknown_Event_{code:#04x}"


class ErrorCode(enum.IntEnum):
    """HCI error codes (Vol 1, Part F)."""

    SUCCESS = 0x00
    UNKNOWN_HCI_COMMAND = 0x01
    UNKNOWN_CONNECTION_IDENTIFIER = 0x02
    PAGE_TIMEOUT = 0x04
    AUTHENTICATION_FAILURE = 0x05
    PIN_OR_KEY_MISSING = 0x06
    CONNECTION_TIMEOUT = 0x08
    CONNECTION_ALREADY_EXISTS = 0x0B
    COMMAND_DISALLOWED = 0x0C
    CONNECTION_REJECTED_SECURITY = 0x0E
    CONNECTION_ACCEPT_TIMEOUT = 0x10
    INVALID_HCI_COMMAND_PARAMETERS = 0x12
    REMOTE_USER_TERMINATED_CONNECTION = 0x13
    CONNECTION_TERMINATED_BY_LOCAL_HOST = 0x16
    PAIRING_NOT_ALLOWED = 0x18
    UNSPECIFIED_ERROR = 0x1F
    LMP_RESPONSE_TIMEOUT = 0x22
    PAIRING_WITH_UNIT_KEY_NOT_SUPPORTED = 0x29
    INSUFFICIENT_SECURITY = 0x2F
    CONNECTION_FAILED_TO_BE_ESTABLISHED = 0x3E

    def describe(self) -> str:
        return self.name.replace("_", " ").title()


class ScanEnable(enum.IntEnum):
    """Write_Scan_Enable parameter values."""

    NONE = 0x00
    INQUIRY_ONLY = 0x01
    PAGE_ONLY = 0x02
    INQUIRY_AND_PAGE = 0x03

    @property
    def inquiry_scan(self) -> bool:
        return bool(self.value & 0x01)

    @property
    def page_scan(self) -> bool:
        return bool(self.value & 0x02)


class Role(enum.IntEnum):
    """Connection role in Accept_Connection_Request."""

    MASTER = 0x00
    SLAVE = 0x01
