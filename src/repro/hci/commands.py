"""Typed HCI commands for BR/EDR discovery, connection and security.

The parameter layouts follow the Core Specification Vol 4, Part E 7.1
(Link Control), 7.3 (Controller & Baseband) and 7.4 (Informational).

The command the whole first attack revolves around is
:class:`LinkKeyRequestReply`: its wire form starts with ``0b 04 16``
(little-endian opcode 0x040B, parameter length 0x16), which is the
byte signature the paper's USB extractor searches for.
"""

from __future__ import annotations

from repro.hci.constants import Opcode
from repro.hci.packets import HciCommand, register_command


@register_command
class Inquiry(HciCommand):
    """Start device discovery (broadcast the inquiry train)."""

    OPCODE = Opcode.INQUIRY
    FIELDS = [("lap", "u24"), ("inquiry_length", "u8"), ("num_responses", "u8")]

    GIAC = 0x9E8B33  # General Inquiry Access Code


@register_command
class InquiryCancel(HciCommand):
    """Stop an ongoing inquiry."""

    OPCODE = Opcode.INQUIRY_CANCEL
    FIELDS = []


@register_command
class CreateConnection(HciCommand):
    """Page a remote device to create an ACL connection."""

    OPCODE = Opcode.CREATE_CONNECTION
    FIELDS = [
        ("bd_addr", "bdaddr"),
        ("packet_type", "u16"),
        ("page_scan_repetition_mode", "u8"),
        ("reserved", "u8"),
        ("clock_offset", "u16"),
        ("allow_role_switch", "u8"),
    ]


@register_command
class Disconnect(HciCommand):
    """Terminate an existing connection."""

    OPCODE = Opcode.DISCONNECT
    FIELDS = [("connection_handle", "u16"), ("reason", "u8")]


@register_command
class CreateConnectionCancel(HciCommand):
    """Cancel a pending Create_Connection."""

    OPCODE = Opcode.CREATE_CONNECTION_CANCEL
    FIELDS = [("bd_addr", "bdaddr")]


@register_command
class AcceptConnectionRequest(HciCommand):
    """Accept an incoming connection (the page-blocked victim sends this)."""

    OPCODE = Opcode.ACCEPT_CONNECTION_REQUEST
    FIELDS = [("bd_addr", "bdaddr"), ("role", "u8")]


@register_command
class RejectConnectionRequest(HciCommand):
    """Reject an incoming connection."""

    OPCODE = Opcode.REJECT_CONNECTION_REQUEST
    FIELDS = [("bd_addr", "bdaddr"), ("reason", "u8")]


@register_command
class LinkKeyRequestReply(HciCommand):
    """Hand the stored link key to the controller — **in plaintext**.

    Parameter length is always 0x16 (6 address + 16 key bytes): the
    ``0b 04 16`` signature of the paper's Fig. 11 extractor.
    """

    OPCODE = Opcode.LINK_KEY_REQUEST_REPLY
    FIELDS = [("bd_addr", "bdaddr"), ("link_key", "linkkey")]


@register_command
class LinkKeyRequestNegativeReply(HciCommand):
    """Tell the controller no link key is stored (triggers pairing)."""

    OPCODE = Opcode.LINK_KEY_REQUEST_NEGATIVE_REPLY
    FIELDS = [("bd_addr", "bdaddr")]


@register_command
class PinCodeRequestReply(HciCommand):
    """Legacy pairing PIN reply."""

    OPCODE = Opcode.PIN_CODE_REQUEST_REPLY
    FIELDS = [("bd_addr", "bdaddr"), ("pin_length", "u8"), ("pin", "bytes:16")]


@register_command
class PinCodeRequestNegativeReply(HciCommand):
    """Refuse a legacy pairing PIN request."""

    OPCODE = Opcode.PIN_CODE_REQUEST_NEGATIVE_REPLY
    FIELDS = [("bd_addr", "bdaddr")]


@register_command
class AuthenticationRequested(HciCommand):
    """Start LMP authentication (the first HCI message of a pairing)."""

    OPCODE = Opcode.AUTHENTICATION_REQUESTED
    FIELDS = [("connection_handle", "u16")]


@register_command
class SetConnectionEncryption(HciCommand):
    """Enable or disable link-level E0 encryption."""

    OPCODE = Opcode.SET_CONNECTION_ENCRYPTION
    FIELDS = [("connection_handle", "u16"), ("encryption_enable", "u8")]


@register_command
class RemoteNameRequest(HciCommand):
    """Fetch a remote device's user-friendly name."""

    OPCODE = Opcode.REMOTE_NAME_REQUEST
    FIELDS = [
        ("bd_addr", "bdaddr"),
        ("page_scan_repetition_mode", "u8"),
        ("reserved", "u8"),
        ("clock_offset", "u16"),
    ]


@register_command
class IoCapabilityRequestReply(HciCommand):
    """Declare local IO capability for SSP association model selection.

    The page blocking attacker replies ``NoInputNoOutput`` here, which
    forces Just Works.
    """

    OPCODE = Opcode.IO_CAPABILITY_REQUEST_REPLY
    FIELDS = [
        ("bd_addr", "bdaddr"),
        ("io_capability", "u8"),
        ("oob_data_present", "u8"),
        ("authentication_requirements", "u8"),
    ]


@register_command
class UserConfirmationRequestReply(HciCommand):
    """User accepted the (numeric comparison / Just Works) confirmation."""

    OPCODE = Opcode.USER_CONFIRMATION_REQUEST_REPLY
    FIELDS = [("bd_addr", "bdaddr")]


@register_command
class UserConfirmationRequestNegativeReply(HciCommand):
    """User rejected the confirmation."""

    OPCODE = Opcode.USER_CONFIRMATION_REQUEST_NEGATIVE_REPLY
    FIELDS = [("bd_addr", "bdaddr")]


@register_command
class UserPasskeyRequestReply(HciCommand):
    """The user typed the 6-digit passkey (Passkey Entry model)."""

    OPCODE = Opcode.USER_PASSKEY_REQUEST_REPLY
    FIELDS = [("bd_addr", "bdaddr"), ("numeric_value", "u32")]


@register_command
class UserPasskeyRequestNegativeReply(HciCommand):
    """User refused / failed to provide the passkey."""

    OPCODE = Opcode.USER_PASSKEY_REQUEST_NEGATIVE_REPLY
    FIELDS = [("bd_addr", "bdaddr")]


@register_command
class SetupSynchronousConnection(HciCommand):
    """Open a SCO/eSCO audio channel on an existing ACL link."""

    OPCODE = Opcode.SETUP_SYNCHRONOUS_CONNECTION
    FIELDS = [
        ("connection_handle", "u16"),
        ("transmit_bandwidth", "u32"),
        ("receive_bandwidth", "u32"),
        ("max_latency", "u16"),
        ("voice_setting", "u16"),
        ("retransmission_effort", "u8"),
        ("packet_type", "u16"),
    ]


@register_command
class RemoteOobDataRequestReply(HciCommand):
    """Hand the controller the peer's OOB data (C, R) received over the
    out-of-band channel (e.g. an NFC tap)."""

    OPCODE = Opcode.REMOTE_OOB_DATA_REQUEST_REPLY
    FIELDS = [("bd_addr", "bdaddr"), ("c", "bytes:16"), ("r", "bytes:16")]


@register_command
class RemoteOobDataRequestNegativeReply(HciCommand):
    """No OOB data available for this peer."""

    OPCODE = Opcode.REMOTE_OOB_DATA_REQUEST_NEGATIVE_REPLY
    FIELDS = [("bd_addr", "bdaddr")]


@register_command
class ReadLocalOobData(HciCommand):
    """Generate the local OOB commitment (C, R) for out-of-band transfer."""

    OPCODE = Opcode.READ_LOCAL_OOB_DATA
    FIELDS = []


@register_command
class IoCapabilityRequestNegativeReply(HciCommand):
    """Refuse the SSP IO capability exchange."""

    OPCODE = Opcode.IO_CAPABILITY_REQUEST_NEGATIVE_REPLY
    FIELDS = [("bd_addr", "bdaddr"), ("reason", "u8")]


@register_command
class SetEventMask(HciCommand):
    """Select which events the controller delivers."""

    OPCODE = Opcode.SET_EVENT_MASK
    FIELDS = [("event_mask", "bytes:8")]


@register_command
class Reset(HciCommand):
    """Reset the controller to its power-on state."""

    OPCODE = Opcode.RESET
    FIELDS = []


@register_command
class WriteLocalName(HciCommand):
    """Set the user-friendly device name."""

    OPCODE = Opcode.WRITE_LOCAL_NAME
    FIELDS = [("local_name", "name248")]


@register_command
class ReadLocalName(HciCommand):
    """Read the user-friendly device name."""

    OPCODE = Opcode.READ_LOCAL_NAME
    FIELDS = []


@register_command
class ReadStoredLinkKey(HciCommand):
    """Ask the controller to return keys from its (tiny) local store.

    The keys come back via HCI_Return_Link_Keys — plaintext again.
    """

    OPCODE = Opcode.READ_STORED_LINK_KEY
    FIELDS = [("bd_addr", "bdaddr"), ("read_all_flag", "u8")]


@register_command
class WriteStoredLinkKey(HciCommand):
    """Push a link key into the controller's local store.

    One more plaintext key crossing the HCI: the extractor scans this
    command too.
    """

    OPCODE = Opcode.WRITE_STORED_LINK_KEY
    FIELDS = [("num_keys_to_write", "u8"), ("bd_addr", "bdaddr"), ("link_key", "linkkey")]


@register_command
class DeleteStoredLinkKey(HciCommand):
    """Remove keys from the controller's local store."""

    OPCODE = Opcode.DELETE_STORED_LINK_KEY
    FIELDS = [("bd_addr", "bdaddr"), ("delete_all_flag", "u8")]


@register_command
class WritePageTimeout(HciCommand):
    """Set how long paging may take before giving up (slots)."""

    OPCODE = Opcode.WRITE_PAGE_TIMEOUT
    FIELDS = [("page_timeout", "u16")]


@register_command
class WriteScanEnable(HciCommand):
    """Enable/disable inquiry scan and page scan."""

    OPCODE = Opcode.WRITE_SCAN_ENABLE
    FIELDS = [("scan_enable", "u8")]


@register_command
class WritePageScanActivity(HciCommand):
    """Set page scan interval/window (slots) — the race knob of Table II."""

    OPCODE = Opcode.WRITE_PAGE_SCAN_ACTIVITY
    FIELDS = [("page_scan_interval", "u16"), ("page_scan_window", "u16")]


@register_command
class WriteInquiryScanActivity(HciCommand):
    """Set inquiry scan interval/window (slots)."""

    OPCODE = Opcode.WRITE_INQUIRY_SCAN_ACTIVITY
    FIELDS = [("inquiry_scan_interval", "u16"), ("inquiry_scan_window", "u16")]


@register_command
class WriteAuthenticationEnable(HciCommand):
    """Require authentication for all connections."""

    OPCODE = Opcode.WRITE_AUTHENTICATION_ENABLE
    FIELDS = [("authentication_enable", "u8")]


@register_command
class WriteClassOfDevice(HciCommand):
    """Set the Class of Device (the attacker rewrites this — Fig. 8)."""

    OPCODE = Opcode.WRITE_CLASS_OF_DEVICE
    FIELDS = [("class_of_device", "u24")]


@register_command
class WriteInquiryMode(HciCommand):
    """Standard / with-RSSI / extended inquiry result mode."""

    OPCODE = Opcode.WRITE_INQUIRY_MODE
    FIELDS = [("inquiry_mode", "u8")]


@register_command
class WriteSimplePairingMode(HciCommand):
    """Enable Secure Simple Pairing in the controller."""

    OPCODE = Opcode.WRITE_SIMPLE_PAIRING_MODE
    FIELDS = [("simple_pairing_mode", "u8")]


@register_command
class WriteSecureConnectionsHostSupport(HciCommand):
    """Advertise Secure Connections (P-256) host support."""

    OPCODE = Opcode.WRITE_SECURE_CONNECTIONS_HOST_SUPPORT
    FIELDS = [("secure_connections_host_support", "u8")]


@register_command
class ReadLocalVersionInformation(HciCommand):
    """Read HCI/LMP version info."""

    OPCODE = Opcode.READ_LOCAL_VERSION_INFORMATION
    FIELDS = []


@register_command
class ReadBdAddr(HciCommand):
    """Read the controller's BD_ADDR."""

    OPCODE = Opcode.READ_BD_ADDR
    FIELDS = []
