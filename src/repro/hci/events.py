"""Typed HCI events (Core Specification Vol 4, Part E 7.7).

Two events carry the secret the link key extraction attack steals:

* :class:`LinkKeyNotification` — the controller hands a freshly
  generated link key up to the host for storage, and
* :class:`LinkKeyRequest` — the controller asks for it back on every
  re-authentication, answered by the plaintext
  ``HCI_Link_Key_Request_Reply`` command.

Both cross the HCI boundary unencrypted and are captured verbatim by
HCI dump tools.
"""

from __future__ import annotations

from repro.hci.constants import EventCode
from repro.hci.packets import HciEvent, register_event


@register_event
class InquiryComplete(HciEvent):
    """Inquiry finished."""

    EVENT_CODE = EventCode.INQUIRY_COMPLETE
    FIELDS = [("status", "u8")]


@register_event
class InquiryResult(HciEvent):
    """A single discovered device (we emit one event per response)."""

    EVENT_CODE = EventCode.INQUIRY_RESULT
    FIELDS = [
        ("num_responses", "u8"),
        ("bd_addr", "bdaddr"),
        ("page_scan_repetition_mode", "u8"),
        ("reserved", "bytes:2"),
        ("class_of_device", "u24"),
        ("clock_offset", "u16"),
    ]


@register_event
class ConnectionComplete(HciEvent):
    """An ACL (or SCO) connection attempt finished."""

    EVENT_CODE = EventCode.CONNECTION_COMPLETE
    FIELDS = [
        ("status", "u8"),
        ("connection_handle", "u16"),
        ("bd_addr", "bdaddr"),
        ("link_type", "u8"),
        ("encryption_enabled", "u8"),
    ]


@register_event
class ConnectionRequest(HciEvent):
    """A remote device paged us — Fig. 12b's tell-tale first event."""

    EVENT_CODE = EventCode.CONNECTION_REQUEST
    FIELDS = [("bd_addr", "bdaddr"), ("class_of_device", "u24"), ("link_type", "u8")]


@register_event
class DisconnectionComplete(HciEvent):
    """A connection went away (with the HCI reason code)."""

    EVENT_CODE = EventCode.DISCONNECTION_COMPLETE
    FIELDS = [("status", "u8"), ("connection_handle", "u16"), ("reason", "u8")]


@register_event
class AuthenticationComplete(HciEvent):
    """LMP authentication finished for a connection handle."""

    EVENT_CODE = EventCode.AUTHENTICATION_COMPLETE
    FIELDS = [("status", "u8"), ("connection_handle", "u16")]


@register_event
class RemoteNameRequestComplete(HciEvent):
    """Result of a Remote_Name_Request."""

    EVENT_CODE = EventCode.REMOTE_NAME_REQUEST_COMPLETE
    FIELDS = [("status", "u8"), ("bd_addr", "bdaddr"), ("remote_name", "name248")]


@register_event
class EncryptionChange(HciEvent):
    """Link encryption was switched on or off."""

    EVENT_CODE = EventCode.ENCRYPTION_CHANGE
    FIELDS = [
        ("status", "u8"),
        ("connection_handle", "u16"),
        ("encryption_enabled", "u8"),
    ]


@register_event
class CommandComplete(HciEvent):
    """A command finished; return parameters ride in ``return_parameters``."""

    EVENT_CODE = EventCode.COMMAND_COMPLETE
    FIELDS = [
        ("num_hci_command_packets", "u8"),
        ("command_opcode", "u16"),
        ("return_parameters", "rest"),
    ]


@register_event
class CommandStatus(HciEvent):
    """A command was accepted (or failed) and will complete asynchronously."""

    EVENT_CODE = EventCode.COMMAND_STATUS
    FIELDS = [
        ("status", "u8"),
        ("num_hci_command_packets", "u8"),
        ("command_opcode", "u16"),
    ]


@register_event
class RoleChange(HciEvent):
    """Master/slave role switch completed."""

    EVENT_CODE = EventCode.ROLE_CHANGE
    FIELDS = [("status", "u8"), ("bd_addr", "bdaddr"), ("new_role", "u8")]


@register_event
class ReturnLinkKeys(HciEvent):
    """The controller dumps stored keys up to the host — plaintext.

    We emit one event per key (num_keys always 1) for parsing clarity.
    """

    EVENT_CODE = EventCode.RETURN_LINK_KEYS
    FIELDS = [("num_keys", "u8"), ("bd_addr", "bdaddr"), ("link_key", "linkkey")]


@register_event
class PinCodeRequest(HciEvent):
    """Controller asks for a legacy pairing PIN."""

    EVENT_CODE = EventCode.PIN_CODE_REQUEST
    FIELDS = [("bd_addr", "bdaddr")]


@register_event
class LinkKeyRequest(HciEvent):
    """Controller asks the host for the stored link key of ``bd_addr``."""

    EVENT_CODE = EventCode.LINK_KEY_REQUEST
    FIELDS = [("bd_addr", "bdaddr")]


@register_event
class LinkKeyNotification(HciEvent):
    """Controller delivers a new link key to the host — in plaintext."""

    EVENT_CODE = EventCode.LINK_KEY_NOTIFICATION
    FIELDS = [("bd_addr", "bdaddr"), ("link_key", "linkkey"), ("key_type", "u8")]


@register_event
class ExtendedInquiryResult(HciEvent):
    """Inquiry result with RSSI and EIR payload."""

    EVENT_CODE = EventCode.EXTENDED_INQUIRY_RESULT
    FIELDS = [
        ("num_responses", "u8"),
        ("bd_addr", "bdaddr"),
        ("page_scan_repetition_mode", "u8"),
        ("reserved", "u8"),
        ("class_of_device", "u24"),
        ("clock_offset", "u16"),
        ("rssi", "u8"),
        ("extended_inquiry_response", "rest"),
    ]


@register_event
class IoCapabilityRequest(HciEvent):
    """Controller asks the host for its IO capability (SSP start)."""

    EVENT_CODE = EventCode.IO_CAPABILITY_REQUEST
    FIELDS = [("bd_addr", "bdaddr")]


@register_event
class IoCapabilityResponse(HciEvent):
    """The remote side's declared IO capability."""

    EVENT_CODE = EventCode.IO_CAPABILITY_RESPONSE
    FIELDS = [
        ("bd_addr", "bdaddr"),
        ("io_capability", "u8"),
        ("oob_data_present", "u8"),
        ("authentication_requirements", "u8"),
    ]


@register_event
class UserConfirmationRequest(HciEvent):
    """Ask the user to confirm (shows ``numeric_value`` for Numeric
    Comparison; Just Works auto-confirms without displaying it)."""

    EVENT_CODE = EventCode.USER_CONFIRMATION_REQUEST
    FIELDS = [("bd_addr", "bdaddr"), ("numeric_value", "u32")]


@register_event
class UserPasskeyRequest(HciEvent):
    """Ask the user to type the passkey."""

    EVENT_CODE = EventCode.USER_PASSKEY_REQUEST
    FIELDS = [("bd_addr", "bdaddr")]


@register_event
class SynchronousConnectionComplete(HciEvent):
    """A SCO/eSCO audio channel came up (or failed)."""

    EVENT_CODE = EventCode.SYNCHRONOUS_CONNECTION_COMPLETE
    FIELDS = [
        ("status", "u8"),
        ("connection_handle", "u16"),
        ("bd_addr", "bdaddr"),
        ("link_type", "u8"),
        ("transmission_interval", "u8"),
        ("retransmission_window", "u8"),
        ("rx_packet_length", "u16"),
        ("tx_packet_length", "u16"),
        ("air_mode", "u8"),
    ]


@register_event
class RemoteOobDataRequest(HciEvent):
    """Controller asks the host for the peer's out-of-band data."""

    EVENT_CODE = EventCode.REMOTE_OOB_DATA_REQUEST
    FIELDS = [("bd_addr", "bdaddr")]


@register_event
class SimplePairingComplete(HciEvent):
    """SSP finished (status 0 = link key established)."""

    EVENT_CODE = EventCode.SIMPLE_PAIRING_COMPLETE
    FIELDS = [("status", "u8"), ("bd_addr", "bdaddr")]


@register_event
class UserPasskeyNotification(HciEvent):
    """Display this passkey to the user."""

    EVENT_CODE = EventCode.USER_PASSKEY_NOTIFICATION
    FIELDS = [("bd_addr", "bdaddr"), ("passkey", "u32")]
