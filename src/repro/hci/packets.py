"""Raw HCI packet framing and the typed-packet machinery.

Wire formats (Vol 4, Part E, 5.4):

* Command:  ``opcode(2, LE) | param_len(1) | params``
* Event:    ``event_code(1) | param_len(1) | params``
* ACL data: ``handle+flags(2, LE) | data_len(2, LE) | data``

On a serial transport each packet is preceded by the H4 indicator byte
(0x01 command, 0x02 ACL, 0x04 event).  The HCI dump and the USB sniffer
both capture these exact bytes, which is what makes the link key
extractor work on real formats rather than on Python objects.

Typed packets declare their parameter layout with a small field spec —
a list of ``(name, kind)`` tuples — from which serialization and
parsing are derived.  Kinds:

``u8`` / ``u16`` / ``u24`` / ``u32``
    little-endian unsigned integers,
``bdaddr``
    6-byte little-endian device address (:class:`~repro.core.types.BdAddr`),
``linkkey``
    16-byte little-endian link key (:class:`~repro.core.types.LinkKey`),
``bytes:N``
    fixed-length raw bytes,
``name248``
    zero-padded 248-byte UTF-8 device name,
``rest``
    all remaining bytes.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple, Type

from repro.core.errors import HciError
from repro.core.types import BdAddr, LinkKey
from repro.hci.constants import (
    EventCode,
    PacketIndicator,
    event_name,
    opcode_name,
)

FieldSpec = Tuple[str, str]


def _encode_field(kind: str, value: Any) -> bytes:
    if kind == "u8":
        return int(value).to_bytes(1, "little")
    if kind == "u16":
        return int(value).to_bytes(2, "little")
    if kind == "u24":
        return int(value).to_bytes(3, "little")
    if kind == "u32":
        return int(value).to_bytes(4, "little")
    if kind == "bdaddr":
        return value.to_hci_bytes()
    if kind == "linkkey":
        return value.to_hci_bytes()
    if kind == "name248":
        raw = str(value).encode("utf-8")[:247]
        return raw + b"\x00" * (248 - len(raw))
    if kind == "rest":
        return bytes(value)
    if kind.startswith("bytes:"):
        length = int(kind.split(":", 1)[1])
        raw = bytes(value)
        if len(raw) != length:
            raise HciError(f"field expects {length} bytes, got {len(raw)}")
        return raw
    raise HciError(f"unknown field kind {kind!r}")


def _decode_field(kind: str, raw: bytes, offset: int) -> Tuple[Any, int]:
    if kind == "u8":
        return raw[offset], offset + 1
    if kind == "u16":
        return int.from_bytes(raw[offset : offset + 2], "little"), offset + 2
    if kind == "u24":
        return int.from_bytes(raw[offset : offset + 3], "little"), offset + 3
    if kind == "u32":
        return int.from_bytes(raw[offset : offset + 4], "little"), offset + 4
    if kind == "bdaddr":
        return BdAddr.from_hci_bytes(raw[offset : offset + 6]), offset + 6
    if kind == "linkkey":
        return LinkKey.from_hci_bytes(raw[offset : offset + 16]), offset + 16
    if kind == "name248":
        chunk = raw[offset : offset + 248]
        text = chunk.split(b"\x00", 1)[0].decode("utf-8", errors="replace")
        return text, offset + 248
    if kind == "rest":
        return raw[offset:], len(raw)
    if kind.startswith("bytes:"):
        length = int(kind.split(":", 1)[1])
        return raw[offset : offset + length], offset + length
    raise HciError(f"unknown field kind {kind!r}")


class HciPacket:
    """Base class for anything that can travel over an HCI transport."""

    indicator: PacketIndicator

    def to_bytes(self) -> bytes:
        """Packet bytes *without* the H4 indicator."""
        raise NotImplementedError

    def to_h4_bytes(self) -> bytes:
        """Packet bytes prefixed with the H4 indicator byte."""
        return bytes([self.indicator]) + self.to_bytes()

    @property
    def display_name(self) -> str:
        """Name shown in HCI dump listings."""
        raise NotImplementedError


class HciCommand(HciPacket):
    """A host-to-controller command.

    Subclasses set ``OPCODE`` and ``FIELDS``; instances carry the field
    values as attributes.  An untyped command can be built directly
    with :meth:`raw`.
    """

    indicator = PacketIndicator.COMMAND
    OPCODE: int = 0x0000
    FIELDS: List[FieldSpec] = []

    def __init__(self, **kwargs: Any) -> None:
        for name, _ in self.FIELDS:
            if name not in kwargs:
                raise HciError(
                    f"{type(self).__name__} missing field {name!r}"
                )
            setattr(self, name, kwargs.pop(name))
        if kwargs:
            raise HciError(
                f"{type(self).__name__} got unexpected fields {sorted(kwargs)}"
            )

    @classmethod
    def raw(cls, opcode: int, params: bytes = b"") -> "HciCommand":
        """Build an untyped command with explicit opcode and parameters."""
        command = cls.__new__(cls)
        command._raw_opcode = opcode  # type: ignore[attr-defined]
        command._raw_params = params  # type: ignore[attr-defined]
        return command

    @property
    def opcode(self) -> int:
        return getattr(self, "_raw_opcode", self.OPCODE)

    def parameters(self) -> bytes:
        if hasattr(self, "_raw_params"):
            return self._raw_params  # type: ignore[attr-defined]
        return b"".join(
            _encode_field(kind, getattr(self, name)) for name, kind in self.FIELDS
        )

    def to_bytes(self) -> bytes:
        params = self.parameters()
        if len(params) > 255:
            raise HciError(f"command parameters exceed 255 bytes: {len(params)}")
        return self.opcode.to_bytes(2, "little") + bytes([len(params)]) + params

    @classmethod
    def from_parameters(cls, params: bytes) -> "HciCommand":
        """Parse parameter bytes into a typed instance."""
        values: Dict[str, Any] = {}
        offset = 0
        for name, kind in cls.FIELDS:
            values[name], offset = _decode_field(kind, params, offset)
        return cls(**values)

    @property
    def display_name(self) -> str:
        return opcode_name(self.opcode)

    def __repr__(self) -> str:
        fields = ", ".join(
            f"{name}={getattr(self, name)!r}" for name, _ in self.FIELDS
        )
        return f"{type(self).__name__}({fields})"


class HciEvent(HciPacket):
    """A controller-to-host event."""

    indicator = PacketIndicator.EVENT
    EVENT_CODE: int = 0x00
    FIELDS: List[FieldSpec] = []

    def __init__(self, **kwargs: Any) -> None:
        for name, _ in self.FIELDS:
            if name not in kwargs:
                raise HciError(f"{type(self).__name__} missing field {name!r}")
            setattr(self, name, kwargs.pop(name))
        if kwargs:
            raise HciError(
                f"{type(self).__name__} got unexpected fields {sorted(kwargs)}"
            )

    @classmethod
    def raw(cls, event_code: int, params: bytes = b"") -> "HciEvent":
        event = cls.__new__(cls)
        event._raw_code = event_code  # type: ignore[attr-defined]
        event._raw_params = params  # type: ignore[attr-defined]
        return event

    @property
    def event_code(self) -> int:
        return getattr(self, "_raw_code", self.EVENT_CODE)

    def parameters(self) -> bytes:
        if hasattr(self, "_raw_params"):
            return self._raw_params  # type: ignore[attr-defined]
        return b"".join(
            _encode_field(kind, getattr(self, name)) for name, kind in self.FIELDS
        )

    def to_bytes(self) -> bytes:
        params = self.parameters()
        if len(params) > 255:
            raise HciError(f"event parameters exceed 255 bytes: {len(params)}")
        return bytes([self.event_code, len(params)]) + params

    @classmethod
    def from_parameters(cls, params: bytes) -> "HciEvent":
        values: Dict[str, Any] = {}
        offset = 0
        for name, kind in cls.FIELDS:
            values[name], offset = _decode_field(kind, params, offset)
        return cls(**values)

    @property
    def display_name(self) -> str:
        return event_name(self.event_code)

    def __repr__(self) -> str:
        fields = ", ".join(
            f"{name}={getattr(self, name)!r}" for name, _ in self.FIELDS
        )
        return f"{type(self).__name__}({fields})"


class HciAclData(HciPacket):
    """An ACL data packet (L2CAP payloads ride inside these)."""

    indicator = PacketIndicator.ACL_DATA

    PB_FIRST_NON_FLUSHABLE = 0x0
    PB_CONTINUING = 0x1
    PB_FIRST_FLUSHABLE = 0x2

    def __init__(
        self,
        handle: int,
        data: bytes,
        pb_flag: int = PB_FIRST_FLUSHABLE,
        bc_flag: int = 0,
    ) -> None:
        if not 0 <= handle <= 0x0FFF:
            raise HciError(f"connection handle out of range: {handle:#x}")
        self.handle = handle
        self.data = data
        self.pb_flag = pb_flag
        self.bc_flag = bc_flag

    def to_bytes(self) -> bytes:
        word = self.handle | (self.pb_flag << 12) | (self.bc_flag << 14)
        return (
            word.to_bytes(2, "little")
            + len(self.data).to_bytes(2, "little")
            + self.data
        )

    @classmethod
    def from_bytes(cls, raw: bytes) -> "HciAclData":
        if len(raw) < 4:
            raise HciError("ACL packet too short")
        word = int.from_bytes(raw[0:2], "little")
        length = int.from_bytes(raw[2:4], "little")
        data = raw[4 : 4 + length]
        if len(data) != length:
            raise HciError("ACL packet truncated")
        return cls(
            handle=word & 0x0FFF,
            data=data,
            pb_flag=(word >> 12) & 0x3,
            bc_flag=(word >> 14) & 0x3,
        )

    @property
    def display_name(self) -> str:
        return f"ACL_Data(handle={self.handle:#06x}, {len(self.data)}B)"

    def __repr__(self) -> str:
        return (
            f"HciAclData(handle={self.handle:#x}, pb={self.pb_flag}, "
            f"len={len(self.data)})"
        )


# Registries filled in by the commands/events modules.
COMMAND_REGISTRY: Dict[int, Type[HciCommand]] = {}
EVENT_REGISTRY: Dict[int, Type[HciEvent]] = {}


def register_command(cls: Type[HciCommand]) -> Type[HciCommand]:
    """Class decorator: register a typed command for parsing."""
    COMMAND_REGISTRY[cls.OPCODE] = cls
    return cls


def register_event(cls: Type[HciEvent]) -> Type[HciEvent]:
    """Class decorator: register a typed event for parsing."""
    EVENT_REGISTRY[cls.EVENT_CODE] = cls
    return cls
