"""Host Controller Interface (HCI) packet model.

HCI is the boundary the paper's link key extraction attack lives on:
the host and controller exchange commands and events across a serial
transport, link keys included, in plaintext.  This package models that
boundary bit-exactly:

* :mod:`repro.hci.constants` — opcodes, event codes, error codes.
* :mod:`repro.hci.packets` — raw packet framing (command / event /
  ACL data, with the H4 indicator bytes).
* :mod:`repro.hci.commands` / :mod:`repro.hci.events` — typed packets
  for every command and event used by BR/EDR discovery, connection,
  pairing and encryption.
* :mod:`repro.hci.parser` — bytes back into typed packets (what the
  HCI dump renderer and the link key extractor are built on).
"""

from repro.hci.constants import (
    ErrorCode,
    EventCode,
    Ogf,
    Opcode,
    PacketIndicator,
    ScanEnable,
    opcode_name,
)
from repro.hci.packets import HciAclData, HciCommand, HciEvent, HciPacket
from repro.hci import commands, events
from repro.hci.parser import parse_packet, parse_h4_stream

__all__ = [
    "ErrorCode",
    "EventCode",
    "Ogf",
    "Opcode",
    "PacketIndicator",
    "ScanEnable",
    "opcode_name",
    "HciAclData",
    "HciCommand",
    "HciEvent",
    "HciPacket",
    "commands",
    "events",
    "parse_packet",
    "parse_h4_stream",
]
