"""BLAP reproduction: Bluetooth link key extraction and page blocking.

A from-scratch simulated Bluetooth BR/EDR system — crypto, controller,
HCI, host stacks, radio medium — plus full implementations of the two
attacks from *"BLAP: Bluetooth Link Key Extraction and Page Blocking
Attacks"* (Koh, Kwon, Hur — DSN 2022) and their mitigations.

Quick start::

    from repro.attacks import WorldConfig, build_world, LinkKeyExtractionAttack
    from repro.attacks.scenario import standard_cast, bond

    world = build_world(WorldConfig(seed=1))
    m, c, a = standard_cast(world)
    bond(world, c, m)                       # the legitimate pre-state
    report = LinkKeyExtractionAttack(world, a, c, m).run()
    print(report.extracted_key, report.validated_against_m)
"""

__version__ = "1.0.0"

from repro.core.types import (
    AssociationModel,
    BdAddr,
    BluetoothVersion,
    ClassOfDevice,
    IoCapability,
    LinkKey,
)

__all__ = [
    "__version__",
    "AssociationModel",
    "BdAddr",
    "BluetoothVersion",
    "ClassOfDevice",
    "IoCapability",
    "LinkKey",
]
