"""Feed adapters: bridging foreign event streams into detector order.

The live :class:`~repro.detect.feed.DetectionFeed` delivers events in
``(time, seq)`` order for free — the simulator is single-threaded and
taps fire synchronously at emission.  Remote streams (the
:mod:`repro.service` ingest server, multi-source captures merged
client-side) lose that guarantee: frames race over the network, and a
client replaying several monitors can interleave them arbitrarily.

:class:`ReorderBuffer` restores the ordering contract with a *bounded*
window: events are held in a min-heap keyed by ``(time, seq)`` and
released in order once the buffer exceeds its window (or on
:meth:`flush` at end of stream).  Events that arrive *behind* the
release watermark cannot be re-ordered any more; they are counted in
:attr:`late_events` and delivered immediately — detectors degrade
gracefully on mildly stale input, and the count surfaces in service
verdicts so operators can size the window.

The buffer is pure data-structure code — no clocks, no threads — so a
given arrival sequence always produces the same release sequence,
which is what keeps service verdicts deterministic and replayable.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from repro.detect.feed import DetectionEvent

#: default reordering window (events held before in-order release)
DEFAULT_WINDOW = 64


class ReorderBuffer:
    """Bounded ``(time, seq)`` re-sequencer for out-of-order arrival."""

    def __init__(self, window: int = DEFAULT_WINDOW) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window
        # (time, seq, arrival, event): arrival breaks (time, seq) ties
        # deterministically and keeps events themselves un-compared.
        self._heap: List[Tuple[float, int, int, DetectionEvent]] = []
        self._arrivals = 0
        self._watermark: Optional[Tuple[float, int]] = None
        self.late_events = 0

    @property
    def pending(self) -> int:
        """Events currently held back for reordering."""
        return len(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, event: DetectionEvent) -> List[DetectionEvent]:
        """Accept one event; return any events released in order."""
        key = (event.time, event.seq)
        if self._watermark is not None and key < self._watermark:
            # Arrived behind history already released — reordering is
            # no longer possible; deliver as-is and count it.
            self.late_events += 1
            return [event]
        heapq.heappush(
            self._heap, (event.time, event.seq, self._arrivals, event)
        )
        self._arrivals += 1
        released: List[DetectionEvent] = []
        while len(self._heap) > self.window:
            released.append(self._pop())
        return released

    def flush(self) -> List[DetectionEvent]:
        """Drain everything still held, in order (end of stream)."""
        released: List[DetectionEvent] = []
        while self._heap:
            released.append(self._pop())
        return released

    def _pop(self) -> DetectionEvent:
        time_s, seq, _, event = heapq.heappop(self._heap)
        self._watermark = (time_s, seq)
        return event
