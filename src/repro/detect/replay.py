"""Offline replay: stream a finished capture through the detectors.

This is the bridge between the forensic tools and the streaming
framework: a btsnoop file (or an in-memory :class:`HciDump`) is
re-played entry by entry as ``channel="hci"`` events, so the *same*
detector state machines serve both the live engine and after-the-fact
triage — one signature implementation, two consumption modes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from repro.detect.base import Alert, Detector, create_detector, detector_names
from repro.detect.feed import DetectionEvent
from repro.snoop.hcidump import DumpEntry, HciDump, entries_from_btsnoop

Capture = Union[bytes, bytearray, HciDump, Sequence[DumpEntry]]


def coerce_entries(capture: Capture) -> List[DumpEntry]:
    """btsnoop bytes / HciDump / entry sequence -> dump entries."""
    if isinstance(capture, (bytes, bytearray)):
        return entries_from_btsnoop(bytes(capture))
    if isinstance(capture, HciDump):
        return capture.entries()
    return list(capture)


@dataclass
class ReplayResult:
    """Alerts plus the (finished) detector instances that produced them."""

    alerts: List[Alert]
    detectors: List[Detector]

    def by_detector(self, name: str) -> List[Alert]:
        return [alert for alert in self.alerts if alert.detector == name]


def replay_capture(
    capture: Capture,
    detectors: Optional[Sequence[Union[str, Detector]]] = None,
    monitor: str = "capture",
) -> ReplayResult:
    """Run a capture through fresh (or given) detector instances.

    Only HCI-channel detectors can see anything in a capture — air and
    trace detectors are accepted but stay silent.  Detector instances
    passed in are used as-is (not reset), which lets callers pre-bind
    config; names are instantiated fresh.
    """
    if detectors is None:
        detectors = detector_names()
    instances = [
        d if isinstance(d, Detector) else create_detector(d)
        for d in detectors
    ]
    alerts: List[Alert] = []
    for seq, entry in enumerate(coerce_entries(capture)):
        event = DetectionEvent(
            time=entry.timestamp,
            seq=seq,
            monitor=monitor,
            channel="hci",
            kind=type(entry.packet).__name__,
            packet=entry.packet,
            frame_no=entry.frame,
            direction=entry.direction,
        )
        for detector in instances:
            if "hci" in detector.channels:
                alerts.extend(detector.on_event(event))
    for detector in instances:
        alerts.extend(detector.finish())
    return ReplayResult(alerts=alerts, detectors=instances)
