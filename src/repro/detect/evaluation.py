"""ROC evaluation over detection campaign results.

The ``detection-attack`` and ``detection-benign`` scenarios record
per-trial *scores* (each detector's maximum over the trial), not
verdicts — so threshold sweeps happen here, after the fact, without
re-simulating anything.  A campaign of N attack trials and M benign
trials yields, per detector and per threshold:

* TPR — attack trials whose score cleared the threshold;
* FPR — benign trials whose score cleared it;
* detection latency — first qualifying alert time minus trial start,
  averaged over true positives.

The cached campaign results (content-hash keyed) make re-sweeping a
different threshold grid free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

#: default threshold grid — spans the calibrated score bands the
#: built-in detectors emit (0.35 informational .. 0.95 confirmed)
DEFAULT_THRESHOLDS = (0.2, 0.35, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95)


def _score(result: Mapping[str, Any], detector: str) -> float:
    return float(result.get("scores", {}).get(detector, 0.0))


def _latency(result: Mapping[str, Any], detector: str) -> Optional[float]:
    value = result.get("first_alert_s", {}).get(detector)
    return float(value) if value is not None else None


@dataclass(frozen=True)
class RocPoint:
    """One (detector, threshold) operating point."""

    detector: str
    threshold: float
    true_positives: int
    false_negatives: int
    false_positives: int
    true_negatives: int
    mean_latency_s: Optional[float]

    @property
    def tpr(self) -> float:
        total = self.true_positives + self.false_negatives
        return self.true_positives / total if total else 0.0

    @property
    def fpr(self) -> float:
        total = self.false_positives + self.true_negatives
        return self.false_positives / total if total else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "detector": self.detector,
            "threshold": self.threshold,
            "tpr": self.tpr,
            "fpr": self.fpr,
            "true_positives": self.true_positives,
            "false_negatives": self.false_negatives,
            "false_positives": self.false_positives,
            "true_negatives": self.true_negatives,
            "mean_latency_s": self.mean_latency_s,
        }


def roc_curve(
    attack_details: Sequence[Mapping[str, Any]],
    benign_details: Sequence[Mapping[str, Any]],
    detector: str,
    thresholds: Sequence[float] = DEFAULT_THRESHOLDS,
) -> List[RocPoint]:
    """Sweep thresholds over per-trial detail dicts.

    ``attack_details`` / ``benign_details`` are the ``detail`` dicts of
    ``detection-attack`` / ``detection-benign`` trial results (each
    carrying ``scores`` and ``first_alert_s`` maps).
    """
    points = []
    for threshold in thresholds:
        tp = fn = fp = tn = 0
        latencies: List[float] = []
        for detail in attack_details:
            if _score(detail, detector) >= threshold:
                tp += 1
                latency = _latency(detail, detector)
                if latency is not None:
                    latencies.append(latency)
            else:
                fn += 1
        for detail in benign_details:
            if _score(detail, detector) >= threshold:
                fp += 1
            else:
                tn += 1
        points.append(
            RocPoint(
                detector=detector,
                threshold=threshold,
                true_positives=tp,
                false_negatives=fn,
                false_positives=fp,
                true_negatives=tn,
                mean_latency_s=(
                    sum(latencies) / len(latencies) if latencies else None
                ),
            )
        )
    return points


def operating_point(
    points: Sequence[RocPoint], max_fpr: float = 0.05
) -> Optional[RocPoint]:
    """Best point: highest TPR with FPR <= ``max_fpr`` (ties -> higher
    threshold, i.e. the more conservative setting)."""
    eligible = [p for p in points if p.fpr <= max_fpr]
    if not eligible:
        return None
    return max(eligible, key=lambda p: (p.tpr, p.threshold))


def render_roc_table(points: Sequence[RocPoint]) -> str:
    """ASCII sweep table, one row per threshold."""
    header = (
        f"{'threshold':>9} {'TPR':>7} {'FPR':>7} "
        f"{'TP':>4} {'FN':>4} {'FP':>4} {'TN':>4} {'latency':>9}"
    )
    lines = [header, "-" * len(header)]
    for p in points:
        latency = (
            f"{p.mean_latency_s:8.3f}s" if p.mean_latency_s is not None else "        -"
        )
        lines.append(
            f"{p.threshold:>9.2f} {p.tpr:>6.0%} {p.fpr:>6.0%} "
            f"{p.true_positives:>4} {p.false_negatives:>4} "
            f"{p.false_positives:>4} {p.true_negatives:>4} {latency}"
        )
    return "\n".join(lines)
