"""The DetectionEngine: feed -> detectors -> alert pipeline.

One engine watches one world.  It owns a :class:`DetectionFeed`,
instantiates the configured detectors *per monitored stream* (HCI
detectors per device, air/trace detectors once for the shared plane)
and fans every alert into the observability stack:

* metrics — ``detect.alerts`` plus a per-detector counter, so campaign
  snapshots carry detection volume;
* tracer — a ``detect``-source ``alert`` record, which lands in the
  merged timeline and the Chrome-trace export like any other layer;
* spans — an instant ``alert:<detector>`` span at the alert's
  simulated time;
* optional callbacks, and the host response hook
  (:meth:`DetectionEngine.install_response`) that lets a device's
  :class:`~repro.host.security.SecurityManager` veto a pairing when a
  high-confidence alert names the peer.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
)

from repro.detect.base import Alert, Detector, create_detector, detector_names
from repro.detect.feed import DetectionEvent, DetectionFeed

if TYPE_CHECKING:
    from repro.attacks.scenario import World
    from repro.devices.device import Device
    from repro.obs import Counter, Observability

#: trace source for the alert pipeline (excluded from feed re-ingest)
TRACE_SOURCE = "detect"

#: default response threshold: only high-confidence alerts veto pairings
DEFAULT_RESPONSE_SCORE = 0.9


class DetectionEngine:
    """Streams a world (or a replayed capture) through detectors."""

    def __init__(
        self,
        detectors: Optional[Sequence[str]] = None,
        detector_config: Optional[Mapping[str, Mapping[str, Any]]] = None,
        obs: Optional["Observability"] = None,
    ) -> None:
        self.detector_names = list(
            detectors if detectors is not None else detector_names()
        )
        self._config = {
            name: dict(cfg) for name, cfg in (detector_config or {}).items()
        }
        self.obs = obs
        self.feed = DetectionFeed().subscribe(self._on_event)
        self.alerts: List[Alert] = []
        self._instances: Dict[str, List[Detector]] = {}
        self._callbacks: List[Callable[[Alert], None]] = []
        self._world: Optional["World"] = None
        # per-detector alert counters, cached so _emit never re-resolves
        # (or re-formats the metric name) per alert
        self._m_alerts_by_detector: Dict[str, "Counter"] = {}
        if obs is not None:
            self._m_alerts = obs.metrics.counter("detect.alerts")
        else:
            self._m_alerts = None

    # ------------------------------------------------------------ attachment

    def attach_world(
        self, world: "World", roles: Optional[Sequence[str]] = None
    ) -> "DetectionEngine":
        """Monitor ``world`` live (device HCI per ``roles`` + air/trace)."""
        self._world = world
        if self.obs is None:
            self.obs = world.obs
            self._m_alerts = world.obs.metrics.counter("detect.alerts")
            self._m_alerts_by_detector.clear()
        self.feed.attach_world(world, roles=roles)
        return self

    def detach(self) -> None:
        self.feed.detach()

    def on_alert(self, callback: Callable[[Alert], None]) -> None:
        self._callbacks.append(callback)

    # -------------------------------------------------------------- routing

    def _detectors_for(self, monitor: str) -> List[Detector]:
        instances = self._instances.get(monitor)
        if instances is None:
            instances = [
                create_detector(name, **self._config.get(name, {}))
                for name in self.detector_names
            ]
            self._instances[monitor] = instances
        return instances

    def _on_event(self, event: DetectionEvent) -> None:
        for detector in self._detectors_for(event.monitor):
            if event.channel not in detector.channels:
                continue
            for alert in detector.on_event(event):
                self._emit(alert)

    def finish(self) -> None:
        """Flush end-of-stream state in every instantiated detector."""
        for instances in self._instances.values():
            for detector in instances:
                for alert in detector.finish():
                    self._emit(alert)

    def _emit(self, alert: Alert) -> None:
        self.alerts.append(alert)
        if self._m_alerts is not None:
            self._m_alerts.inc()
        obs = self.obs
        if obs is not None:
            counter = self._m_alerts_by_detector.get(alert.detector)
            if counter is None:
                counter = obs.metrics.counter(f"detect.alerts.{alert.detector}")
                self._m_alerts_by_detector[alert.detector] = counter
            counter.inc()
            span = obs.spans.begin(
                f"alert:{alert.detector}",
                source=TRACE_SOURCE,
                monitor=alert.monitor,
                score=alert.score,
            )
            obs.spans.finish(span)
        if self._world is not None:
            self._world.tracer.emit(
                alert.time,
                TRACE_SOURCE,
                "alert",
                f"[{alert.detector}] {alert.message}",
                monitor=alert.monitor,
                score=alert.score,
                confidence=alert.confidence,
                peer=alert.peer,
            )
        for callback in list(self._callbacks):
            callback(alert)

    # -------------------------------------------------------------- response

    def install_response(
        self, device: "Device", min_score: float = DEFAULT_RESPONSE_SCORE
    ) -> None:
        """Wire the alert stream into a device's pairing policy.

        The device's :class:`~repro.host.security.SecurityManager`
        consults the returned veto before answering any user
        confirmation request: if an alert with ``score >= min_score``
        names the peer address, the pairing is rejected on the spot —
        §VII-B's mitigation, driven by the online detector instead of
        the built-in predicate.
        """

        def veto(addr) -> Optional[str]:
            wanted = str(addr)
            for alert in self.alerts:
                if alert.peer == wanted and alert.score >= min_score:
                    return f"{alert.detector}: {alert.message}"
            return None

        device.host.security.pairing_veto = veto

    # --------------------------------------------------------------- results

    def max_scores(self) -> Dict[str, float]:
        """Per-detector maximum score seen (0.0 when silent)."""
        scores = {name: 0.0 for name in self.detector_names}
        for alert in self.alerts:
            if alert.score > scores.get(alert.detector, 0.0):
                scores[alert.detector] = alert.score
        return scores

    def first_alert_times(self, min_score: float = 0.0) -> Dict[str, float]:
        """Per-detector simulated time of the first qualifying alert."""
        times: Dict[str, float] = {}
        for alert in self.alerts:
            if alert.score >= min_score and alert.detector not in times:
                times[alert.detector] = alert.time
        return times

    def summary(self) -> Dict[str, Any]:
        """JSON-serialisable digest (campaign ``detail`` material)."""
        return {
            "alerts": len(self.alerts),
            "max_scores": self.max_scores(),
            "first_alert_s": self.first_alert_times(),
            "events": self.feed.events_published,
            "undecodable": self.feed.undecodable_packets,
        }
