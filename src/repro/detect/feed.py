"""The DetectionFeed: one ordered event stream per monitored world.

The feed taps the observability plumbing the earlier layers already
expose — air-sniffer frames from :class:`~repro.phy.medium.RadioMedium`,
raw HCI packets from every :class:`~repro.transport.base.HciTransport`
tap, and live :class:`~repro.sim.trace.Tracer` records — and publishes
them to subscribers as uniform :class:`DetectionEvent` values.

Ordering: the simulator is single-threaded and taps/sniffers/listeners
fire synchronously at emission, so events arrive in simulated-time
order with the process-wide emission sequence as the tie-breaker (the
same ``(time, seq)`` rule the event loop and timeline use).  No
buffering or re-sorting is needed for live streams.

HCI taps observe the *wire image*: on a secure (encrypted) transport
the bytes do not parse, and on a transport with a ``transport.garble``
fault the original bytes are still seen (taps run before injectors).
Unparseable packets become ``kind="undecodable"`` events instead of
errors, so detection keeps running on degraded or hostile inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

from repro.core.errors import HciError
from repro.hci.parser import parse_packet
from repro.sim.trace import TraceRecord, next_sequence
from repro.transport.base import Direction

if TYPE_CHECKING:
    from repro.attacks.scenario import World
    from repro.hci.packets import HciPacket
    from repro.phy.medium import AirFrame, RadioMedium
    from repro.sim.trace import Tracer
    from repro.transport.base import HciTransport


#: trace sources the feed never re-ingests (the alert pipeline itself
#: emits ``detect`` records — forwarding them back would recurse).
EXCLUDED_TRACE_SOURCES = frozenset({"detect"})


@dataclass(frozen=True)
class DetectionEvent:
    """One observation on a monitored stream.

    ``channel`` selects which optional payload fields are set:

    * ``"hci"`` — ``packet`` (parsed, or ``None`` when undecodable),
      ``direction`` and the per-monitor ``frame_no`` (1-based, matching
      btsnoop frame numbering);
    * ``"air"`` — ``frame``, ``link_id`` and ``sender``;
    * ``"trace"`` — the raw :class:`TraceRecord` in ``record``.

    ``kind`` is the packet class name, the air-frame kind, or the
    trace category respectively — a cheap pre-filter so detectors can
    skip events without isinstance checks.
    """

    time: float
    seq: int
    monitor: str
    channel: str  # "hci" | "air" | "trace"
    kind: str
    packet: Optional["HciPacket"] = None
    frame_no: int = 0
    direction: Optional[Direction] = None
    frame: Optional["AirFrame"] = None
    link_id: int = 0
    sender: str = ""
    record: Optional[TraceRecord] = field(default=None, compare=False)


#: feed subscriber callback
EventSink = Callable[[DetectionEvent], None]


class DetectionFeed:
    """Merges taps across layers into one subscriber-facing stream."""

    def __init__(self) -> None:
        self._subscribers: List[EventSink] = []
        self._detachers: List[Callable[[], None]] = []
        self._frame_counts: Dict[str, int] = {}
        self.events_published = 0
        self.undecodable_packets = 0

    # ---------------------------------------------------------- subscribers

    def subscribe(self, sink: EventSink) -> "DetectionFeed":
        if sink not in self._subscribers:
            self._subscribers.append(sink)
        return self

    def unsubscribe(self, sink: EventSink) -> None:
        if sink in self._subscribers:
            self._subscribers.remove(sink)

    def publish(self, event: DetectionEvent) -> None:
        """Deliver one event to every subscriber (also the tap target)."""
        self.events_published += 1
        for sink in list(self._subscribers):
            sink(event)

    # ----------------------------------------------------------------- taps

    def tap_transport(
        self, monitor: str, transport: "HciTransport"
    ) -> "DetectionFeed":
        """Monitor one HCI transport as stream ``monitor``."""

        def tap(now: float, direction: Direction, raw: bytes) -> None:
            count = self._frame_counts.get(monitor, 0) + 1
            self._frame_counts[monitor] = count
            packet: Optional["HciPacket"] = None
            kind = "undecodable"
            if raw:
                try:
                    packet = parse_packet(raw[0], raw[1:])
                    kind = type(packet).__name__
                except HciError:
                    packet = None
            if packet is None:
                self.undecodable_packets += 1
            self.publish(
                DetectionEvent(
                    time=now,
                    seq=next_sequence(),
                    monitor=monitor,
                    channel="hci",
                    kind=kind,
                    packet=packet,
                    frame_no=count,
                    direction=direction,
                )
            )

        transport.add_tap(tap)
        self._detachers.append(lambda: transport.remove_tap(tap))
        return self

    def tap_medium(
        self, medium: "RadioMedium", monitor: str = "phy"
    ) -> "DetectionFeed":
        """Monitor the shared air: every sniffable frame, pages included."""

        def sniffer(
            now: float, link_id: int, sender: str, frame: "AirFrame"
        ) -> None:
            self.publish(
                DetectionEvent(
                    time=now,
                    seq=next_sequence(),
                    monitor=monitor,
                    channel="air",
                    kind=frame.kind,
                    frame=frame,
                    link_id=link_id,
                    sender=sender,
                )
            )

        medium.add_air_sniffer(sniffer)
        self._detachers.append(lambda: medium.remove_air_sniffer(sniffer))
        return self

    def tap_tracer(
        self,
        tracer: "Tracer",
        monitor: str = "phy",
        sources: Optional[Sequence[str]] = None,
    ) -> "DetectionFeed":
        """Monitor live tracer records (``detect``'s own are skipped)."""
        wanted = frozenset(sources) if sources is not None else None

        def listener(record: TraceRecord) -> None:
            if record.source in EXCLUDED_TRACE_SOURCES:
                return
            if wanted is not None and record.source not in wanted:
                return
            self.publish(
                DetectionEvent(
                    time=record.time,
                    seq=record.seq,
                    monitor=monitor,
                    channel="trace",
                    kind=record.category,
                    record=record,
                )
            )

        tracer.add_listener(listener)
        self._detachers.append(lambda: tracer.remove_listener(listener))
        return self

    def attach_world(
        self, world: "World", roles: Optional[Sequence[str]] = None
    ) -> "DetectionFeed":
        """Tap a whole world: medium + tracer + selected device HCI.

        ``roles`` picks which devices' transports to monitor (default:
        all present).  Devices added to the world later are *not*
        auto-tapped — call :meth:`tap_transport` for them.
        """
        self.tap_medium(world.medium)
        self.tap_tracer(world.tracer)
        for role, device in world.devices.items():
            if roles is not None and role not in roles:
                continue
            self.tap_transport(role, device.transport)
        return self

    def detach(self) -> None:
        """Remove every tap and listener this feed installed."""
        while self._detachers:
            self._detachers.pop()()
