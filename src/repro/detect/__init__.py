"""Streaming attack detection (``repro.detect``).

The §VII-B mitigation, promoted from an offline forensic scan to an
online subsystem: a :class:`DetectionFeed` taps the observability
plumbing (air sniffers, HCI transport taps, live tracer records) into
one ordered simulated-time event stream, stateful :class:`Detector`\\ s
match attack signatures as they happen, and the
:class:`DetectionEngine` fans structured :class:`Alert`\\ s into
metrics, spans, the merged timeline and (optionally) a host-side
pairing veto.

Typical entrypoints::

    engine = DetectionEngine().attach_world(world, roles=["M"])
    engine.install_response(m)          # reject flagged pairings
    ...run the attack...
    engine.max_scores()["page-blocking"]

    replay_capture(btsnoop_bytes)       # offline, same detectors

Detector quality is quantified by the ``detection-attack`` /
``detection-benign`` campaign scenarios plus :mod:`.evaluation`'s
threshold sweeps (TPR/FPR/latency) — ``blap detect roc`` end to end.
"""

from repro.detect.adapters import ReorderBuffer
from repro.detect.base import (
    Alert,
    Detector,
    create_detector,
    detector_class,
    detector_names,
    register_detector,
)
from repro.detect.detectors import (
    CtkdAnomalyDetector,
    EntropyDowngradeDetector,
    LinkKeyAnomalyDetector,
    PageBlockingDetector,
    PageBlockingFinding,
    SurveillanceDetector,
)
from repro.detect.engine import DEFAULT_RESPONSE_SCORE, DetectionEngine
from repro.detect.evaluation import (
    DEFAULT_THRESHOLDS,
    RocPoint,
    operating_point,
    render_roc_table,
    roc_curve,
)
from repro.detect.feed import DetectionEvent, DetectionFeed
from repro.detect.replay import ReplayResult, replay_capture

__all__ = [
    "Alert",
    "CtkdAnomalyDetector",
    "DEFAULT_RESPONSE_SCORE",
    "DEFAULT_THRESHOLDS",
    "DetectionEngine",
    "DetectionEvent",
    "DetectionFeed",
    "Detector",
    "EntropyDowngradeDetector",
    "LinkKeyAnomalyDetector",
    "PageBlockingDetector",
    "PageBlockingFinding",
    "ReorderBuffer",
    "ReplayResult",
    "RocPoint",
    "SurveillanceDetector",
    "create_detector",
    "detector_class",
    "detector_names",
    "operating_point",
    "register_detector",
    "render_roc_table",
    "replay_capture",
    "roc_curve",
]
