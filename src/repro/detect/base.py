"""The streaming detector protocol, alert type and detector registry.

A :class:`Detector` is a small per-stream state machine: it receives
:class:`~repro.detect.feed.DetectionEvent` values in ``(time, seq)``
order and yields :class:`Alert` values as signatures complete.  One
detector instance watches one monitored stream (one device's HCI, or
the shared air/trace plane) — the engine instantiates per monitor.

Scores are calibrated confidences in ``[0, 1]``; thresholding is the
*consumer's* decision (the ROC campaigns sweep it after the fact), so
detectors should report every signature hit with an honest score
rather than gate internally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple, Type

from repro.detect.feed import DetectionEvent


@dataclass
class Alert:
    """One detection verdict, JSON-serialisable via :meth:`to_dict`."""

    detector: str
    time: float
    monitor: str
    score: float
    message: str
    peer: str = ""  # BD_ADDR string when the signature names one
    detail: Dict[str, Any] = field(default_factory=dict)

    @property
    def confidence(self) -> str:
        if self.score >= 0.9:
            return "high"
        if self.score >= 0.6:
            return "medium"
        return "low"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "detector": self.detector,
            "time": self.time,
            "monitor": self.monitor,
            "score": self.score,
            "confidence": self.confidence,
            "peer": self.peer,
            "message": self.message,
            "detail": self.detail,
        }

    def __str__(self) -> str:
        peer = f" peer={self.peer}" if self.peer else ""
        return (
            f"[{self.time:10.6f}] {self.detector} "
            f"({self.confidence} {self.score:.2f}){peer}: {self.message}"
        )


class Detector:
    """Base class: stateful, replayable, one instance per stream.

    Subclasses set ``name`` / ``channels`` / ``default_config``,
    implement :meth:`on_event` and keep all mutable state created in
    :meth:`reset` — a reset detector must behave exactly like a fresh
    one, which is what makes offline replay equivalent to live
    streaming.
    """

    #: registry key (CLI spelling)
    name: str = ""
    #: one line for ``blap detect list``
    description: str = ""
    #: which feed channels this detector consumes
    channels: Tuple[str, ...] = ("hci",)
    #: tunable knobs (JSON-serialisable; overridable per instance)
    default_config: Dict[str, Any] = {}

    def __init__(self, **config: Any) -> None:
        unknown = set(config) - set(self.default_config)
        if unknown:
            raise ValueError(
                f"{self.name}: unknown config {sorted(unknown)}; "
                f"known: {sorted(self.default_config)}"
            )
        self.config: Dict[str, Any] = {**self.default_config, **config}
        self.reset()

    def reset(self) -> None:
        """Drop all accumulated state (subclass hook)."""

    def on_event(self, event: DetectionEvent) -> List[Alert]:
        """Consume one event; return any alerts it completes."""
        raise NotImplementedError

    def finish(self) -> List[Alert]:
        """End-of-stream hook for offline replay (default: nothing)."""
        return []


# ------------------------------------------------------------------ registry

_REGISTRY: Dict[str, Type[Detector]] = {}


def register_detector(cls: Type[Detector]) -> Type[Detector]:
    """Class decorator: add a detector to the registry."""
    if not cls.name:
        raise ValueError(f"{cls!r} has no name")
    _REGISTRY[cls.name] = cls
    return cls


def detector_class(name: str) -> Type[Detector]:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown detector {name!r}; known: {detector_names()}"
        ) from None


def create_detector(name: str, **config: Any) -> Detector:
    """A fresh instance of the named detector."""
    return detector_class(name)(**config)


def detector_names() -> List[str]:
    return sorted(_REGISTRY)
