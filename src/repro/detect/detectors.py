"""The built-in streaming detectors.

* ``page-blocking`` — the online generalisation of the §VII-B offline
  predicate (and the single signature implementation behind
  :func:`repro.mitigations.detector.detect_page_blocking`);
* ``link-key-anomaly`` — the §IV extraction access pattern: a link key
  served in plaintext over HCI, then authentication dying by LMP
  response timeout (the bond-preserving abort the attack relies on);
* ``entropy-downgrade`` — KNOB-style encryption key size negotiation
  below a minimum, watched on the air (LMP plane);
* ``surveillance`` — inquiry/page flooding from one radio, watched on
  the phy trace plane;
* ``ctkd-anomaly`` — BLURtooth posture on the BLE trace plane: CTKD
  conversions that overwrite bonds, Just Works-rooted key minting, and
  LE sessions encrypted under cross-derived LTKs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Set, Tuple

from repro.controller import lmp
from repro.core.types import BdAddr, IoCapability
from repro.detect.base import Alert, Detector, register_detector
from repro.detect.feed import DetectionEvent
from repro.hci import commands as cmd
from repro.hci import events as evt
from repro.hci.constants import ErrorCode

# The exact §VII-B indicator strings (pinned by the offline detector's
# public API and its tests — do not reword).
INDICATOR_RESPONDER_PAIRING = (
    "pairing initiated on a remotely-initiated connection"
)
INDICATOR_NO_CREATE = "no outbound HCI_Create_Connection to this peer"
INDICATOR_NINO = "peer claims NoInputNoOutput (Just Works downgrade)"

#: indicator count -> calibrated confidence
_PAGE_BLOCKING_SCORES = {1: 0.5, 2: 0.7, 3: 0.95}


@dataclass
class PageBlockingFinding:
    """One §VII-B signature hit, accumulated while streaming.

    Field-for-field the same shape as the offline
    :class:`~repro.mitigations.detector.SuspiciousPairing`, so the
    offline wrapper converts findings losslessly.
    """

    peer: BdAddr
    connection_request_frame: int
    authentication_frame: int
    peer_io_capability: Optional[IoCapability] = None
    indicators: List[str] = field(default_factory=list)


@register_detector
class PageBlockingDetector(Detector):
    """Online §VII-B: connection responder that turns pairing initiator.

    Emits an alert the moment ``HCI_Authentication_Requested`` goes
    down for a handle whose connection was remotely initiated —
    *before* any confirmation popup, which is what lets the response
    hook veto the pairing.  A NoInputNoOutput IO capability response
    arriving later upgrades the finding with a second, higher-score
    alert (the offline path folds both into one finding).
    """

    name = "page-blocking"
    description = "responder-connection -> initiator-pairing (§VII-B online)"
    channels = ("hci",)
    default_config: Dict[str, Any] = {}

    def reset(self) -> None:
        self._inbound: Dict[BdAddr, int] = {}
        self._created: Set[BdAddr] = set()
        self._accepted: Dict[int, BdAddr] = {}
        self._remote_io: Dict[BdAddr, IoCapability] = {}
        self.findings: List[PageBlockingFinding] = []

    def on_event(self, event: DetectionEvent) -> List[Alert]:
        packet = event.packet
        if isinstance(packet, evt.ConnectionRequest):
            self._inbound[packet.bd_addr] = event.frame_no
        elif isinstance(packet, cmd.CreateConnection):
            self._created.add(packet.bd_addr)
        elif isinstance(packet, evt.ConnectionComplete) and packet.status == 0:
            self._accepted[packet.connection_handle] = packet.bd_addr
        elif isinstance(packet, evt.IoCapabilityResponse):
            io = IoCapability(packet.io_capability)
            self._remote_io[packet.bd_addr] = io
            if io is IoCapability.NO_INPUT_NO_OUTPUT:
                return self._upgrade_late_nino(event, packet.bd_addr)
        elif isinstance(packet, cmd.AuthenticationRequested):
            peer = self._accepted.get(packet.connection_handle)
            if peer is not None and peer in self._inbound:
                return [self._flag(event, peer)]
        return []

    def _flag(self, event: DetectionEvent, peer: BdAddr) -> Alert:
        finding = PageBlockingFinding(
            peer=peer,
            connection_request_frame=self._inbound[peer],
            authentication_frame=event.frame_no,
        )
        finding.indicators.append(INDICATOR_RESPONDER_PAIRING)
        if peer not in self._created:
            finding.indicators.append(INDICATOR_NO_CREATE)
        if self._remote_io.get(peer) is IoCapability.NO_INPUT_NO_OUTPUT:
            finding.peer_io_capability = IoCapability.NO_INPUT_NO_OUTPUT
            finding.indicators.append(INDICATOR_NINO)
        self.findings.append(finding)
        return self._alert(event.time, event.monitor, finding)

    def _upgrade_late_nino(
        self, event: DetectionEvent, peer: BdAddr
    ) -> List[Alert]:
        """NINO arrived after the pairing was flagged: strengthen it."""
        alerts = []
        for finding in self.findings:
            if finding.peer == peer and finding.peer_io_capability is None:
                finding.peer_io_capability = IoCapability.NO_INPUT_NO_OUTPUT
                finding.indicators.append(INDICATOR_NINO)
                alerts.append(self._alert(event.time, event.monitor, finding))
        return alerts

    def _alert(
        self, time: float, monitor: str, finding: PageBlockingFinding
    ) -> Alert:
        count = len(finding.indicators)
        return Alert(
            detector=self.name,
            time=time,
            monitor=monitor,
            score=_PAGE_BLOCKING_SCORES.get(count, 0.95),
            peer=str(finding.peer),
            message=(
                f"page-blocking signature on {finding.peer} "
                f"({count} indicator{'s' if count != 1 else ''})"
            ),
            detail={
                "indicators": list(finding.indicators),
                "connection_request_frame": finding.connection_request_frame,
                "authentication_frame": finding.authentication_frame,
            },
        )


@register_detector
class LinkKeyAnomalyDetector(Detector):
    """§IV extraction signature on the HCI plane.

    The tell is *order plus outcome*: ``HCI_Link_Key_Request_Reply``
    exposes the key in plaintext on the transport, and the extraction
    attack then kills authentication with ``LMP_RESPONSE_TIMEOUT``
    (0x22) — never a real failure, because a failure would delete the
    bond it is stealing.  A served key followed by a successful
    authentication clears the suspicion (normal re-auth); a served key
    on a remotely-initiated connection raises a low informational score
    either way (it is also what a fake-bond exfiltration looks like).
    """

    name = "link-key-anomaly"
    description = "link key served, then auth stalled by LMP timeout (§IV)"
    channels = ("hci",)
    default_config: Dict[str, Any] = {"informational_score": 0.35}

    def reset(self) -> None:
        self._handles: Dict[int, BdAddr] = {}
        self._inbound: Set[BdAddr] = set()
        self._served: Dict[BdAddr, Tuple[float, int]] = {}
        self._flagged: Set[Tuple[BdAddr, int]] = set()

    def on_event(self, event: DetectionEvent) -> List[Alert]:
        packet = event.packet
        if isinstance(packet, evt.ConnectionRequest):
            self._inbound.add(packet.bd_addr)
        elif isinstance(packet, evt.ConnectionComplete) and packet.status == 0:
            self._handles[packet.connection_handle] = packet.bd_addr
        elif isinstance(packet, cmd.LinkKeyRequestReply):
            peer = packet.bd_addr
            self._served[peer] = (event.time, event.frame_no)
            if peer in self._inbound:
                return [
                    Alert(
                        detector=self.name,
                        time=event.time,
                        monitor=event.monitor,
                        score=self.config["informational_score"],
                        peer=str(peer),
                        message=(
                            f"link key served on a remotely-initiated "
                            f"connection from {peer}"
                        ),
                        detail={"frame": event.frame_no},
                    )
                ]
        elif isinstance(packet, evt.AuthenticationComplete):
            peer = self._handles.get(packet.connection_handle)
            if peer is None:
                return []
            if packet.status == 0:
                self._served.pop(peer, None)  # benign re-authentication
            elif packet.status == ErrorCode.LMP_RESPONSE_TIMEOUT:
                return self._stalled(event, peer)
        elif isinstance(packet, evt.DisconnectionComplete):
            peer = self._handles.pop(packet.connection_handle, None)
            if (
                peer is not None
                and packet.reason == ErrorCode.LMP_RESPONSE_TIMEOUT
            ):
                return self._stalled(event, peer)
        return []

    def _stalled(self, event: DetectionEvent, peer: BdAddr) -> List[Alert]:
        served = self._served.get(peer)
        if served is None:
            return []
        served_time, served_frame = served
        key = (peer, served_frame)
        if key in self._flagged:
            return []
        self._flagged.add(key)
        return [
            Alert(
                detector=self.name,
                time=event.time,
                monitor=event.monitor,
                score=0.9,
                peer=str(peer),
                message=(
                    f"link key for {peer} served in plaintext, then "
                    "authentication stalled by LMP response timeout "
                    "(extraction signature)"
                ),
                detail={
                    "served_frame": served_frame,
                    "served_time": served_time,
                    "stall_frame": event.frame_no,
                },
            )
        ]


@register_detector
class EntropyDowngradeDetector(Detector):
    """KNOB posture on the air: key size negotiated below the minimum.

    Watches the unencrypted LMP negotiation
    (``LMP_encryption_key_size_req``/``res``) for proposals and
    accepted sizes under ``min_key_size`` (default 7, the post-KNOB
    erratum floor).  A low proposal alone is suspicious; an *accepted*
    low size means the session entropy is actually degraded.
    """

    name = "entropy-downgrade"
    description = "LMP encryption key size below minimum (KNOB posture)"
    channels = ("air",)
    default_config: Dict[str, Any] = {"min_key_size": 7}

    def reset(self) -> None:
        self._seen: Set[Tuple[str, str, int]] = set()

    def on_event(self, event: DetectionEvent) -> List[Alert]:
        frame = event.frame
        if frame is None or frame.kind != "lmp":
            return []
        payload = frame.payload
        floor = self.config["min_key_size"]
        if isinstance(payload, lmp.LmpEncryptionKeySizeReq):
            if payload.size < floor:
                return self._flag(event, "proposal", payload.size, 0.6)
        elif isinstance(payload, lmp.LmpEncryptionKeySizeRes):
            if payload.accepted and payload.size < floor:
                return self._flag(event, "accepted", payload.size, 0.95)
        return []

    def _flag(
        self, event: DetectionEvent, stage: str, size: int, score: float
    ) -> List[Alert]:
        key = (stage, event.sender, size)
        if key in self._seen:
            return []
        self._seen.add(key)
        noun = "proposed" if stage == "proposal" else "accepted"
        return [
            Alert(
                detector=self.name,
                time=event.time,
                monitor=event.monitor,
                score=score,
                message=(
                    f"{event.sender} {noun} a {size}-byte encryption key "
                    f"(minimum {self.config['min_key_size']})"
                ),
                detail={
                    "sender": event.sender,
                    "stage": stage,
                    "size": size,
                    "link_id": event.link_id,
                },
            )
        ]


@register_detector
class SurveillanceDetector(Detector):
    """Inquiry/page flooding on the phy trace plane.

    Counts ``phy-inquiry`` and ``phy-page`` records per initiating
    radio in a sliding window; crossing the threshold flags the radio
    as scanning/tracking the neighbourhood (the reconnaissance stage
    every BLAP attack starts from).  Scores ramp with the overshoot.
    """

    name = "surveillance"
    description = "inquiry/page flood from one radio (recon posture)"
    channels = ("trace",)
    default_config: Dict[str, Any] = {
        "window_s": 30.0,
        "inquiry_threshold": 4,
        "page_threshold": 6,
    }

    def reset(self) -> None:
        self._inquiries: Dict[str, Deque[float]] = {}
        self._pages: Dict[str, Deque[float]] = {}

    def on_event(self, event: DetectionEvent) -> List[Alert]:
        record = event.record
        if record is None:
            return []
        initiator = record.detail.get("initiator")
        if not initiator:
            return []
        if event.kind == "phy-inquiry":
            return self._count(
                event, self._inquiries, initiator, "inquiry",
                self.config["inquiry_threshold"],
            )
        if event.kind == "phy-page":
            return self._count(
                event, self._pages, initiator, "page",
                self.config["page_threshold"],
            )
        return []

    def _count(
        self,
        event: DetectionEvent,
        table: Dict[str, Deque[float]],
        initiator: str,
        what: str,
        threshold: int,
    ) -> List[Alert]:
        times = table.setdefault(initiator, deque())
        times.append(event.time)
        horizon = event.time - self.config["window_s"]
        while times and times[0] < horizon:
            times.popleft()
        count = len(times)
        if count < threshold:
            return []
        score = min(0.95, 0.6 + 0.1 * (count - threshold))
        return [
            Alert(
                detector=self.name,
                time=event.time,
                monitor=event.monitor,
                score=score,
                message=(
                    f"{initiator} sent {count} {what}s in "
                    f"{self.config['window_s']:.0f}s (threshold {threshold})"
                ),
                detail={
                    "initiator": initiator,
                    "what": what,
                    "count": count,
                    "window_s": self.config["window_s"],
                },
            )
        ]


@register_detector
class CtkdAnomalyDetector(Detector):
    """Cross-transport key derivation abuse (BLURtooth posture).

    Watches the BLE trace plane for the three CTKD facts a monitor can
    observe without keys:

    * a CTKD conversion that **overwrote** an existing bond — the core
      BLURtooth primitive (an LE pairing silently replacing a stronger
      BR/EDR key, or vice versa);
    * an LE→BR/EDR conversion rooted in a **Just Works** pairing — an
      unauthenticated association minting BR/EDR key material;
    * an LE session encrypting under a **CTKD-origin LTK** — the
      transport trusting a key it never negotiated itself.

    Scores are calibrated so routine dual-mode CTKD (fresh derivation,
    authenticated association, no overwrite) stays below the 0.7
    response threshold while both BLURtooth directions cross it.
    """

    name = "ctkd-anomaly"
    description = "cross-transport key derivation overwrite/downgrade"
    channels = ("trace",)
    default_config: Dict[str, Any] = {
        "overwrite_score": 0.95,
        "just_works_score": 0.75,
        "ctkd_session_score": 0.75,
        "baseline_score": 0.3,
    }

    def reset(self) -> None:
        self._seen_sessions: Set[Tuple[str, str]] = set()

    def on_event(self, event: DetectionEvent) -> List[Alert]:
        record = event.record
        if record is None:
            return []
        if event.kind == "ble-ctkd":
            return self._on_ctkd(event)
        if event.kind == "ble-enc":
            return self._on_enc(event)
        return []

    def _on_ctkd(self, event: DetectionEvent) -> List[Alert]:
        detail = event.record.detail
        peer = detail.get("peer", "")
        direction = detail.get("direction", "")
        association = detail.get("association", "")
        if detail.get("overwrote"):
            score = self.config["overwrite_score"]
            what = f"CTKD ({direction}) overwrote an existing bond"
        elif association == "just_works":
            score = self.config["just_works_score"]
            what = (
                f"CTKD ({direction}) minted key material from an "
                "unauthenticated Just Works pairing"
            )
        else:
            score = self.config["baseline_score"]
            what = f"cross-transport key derivation ({direction})"
        return [
            Alert(
                detector=self.name,
                time=event.time,
                monitor=event.monitor,
                score=score,
                message=f"{event.record.source}: {what} for {peer}",
                peer=peer,
                detail={
                    "direction": direction,
                    "association": association,
                    "overwrote": bool(detail.get("overwrote")),
                },
            )
        ]

    def _on_enc(self, event: DetectionEvent) -> List[Alert]:
        detail = event.record.detail
        if detail.get("ltk_origin") != "ctkd":
            return []
        peer = detail.get("peer", "")
        key = (event.record.source, peer)
        if key in self._seen_sessions:
            return []  # one alert per (device, peer) session pair
        self._seen_sessions.add(key)
        return [
            Alert(
                detector=self.name,
                time=event.time,
                monitor=event.monitor,
                score=self.config["ctkd_session_score"],
                message=(
                    f"{event.record.source}: LE session with {peer} "
                    "encrypted under a cross-derived (CTKD) LTK"
                ),
                peer=peer,
                detail={"ltk_origin": "ctkd"},
            )
        ]
