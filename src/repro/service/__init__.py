"""Detection-as-a-service: the async streaming ingest subsystem.

The serving half of :mod:`repro.detect` — an asyncio HTTP/WebSocket
server (standard library only, like ``blap serve``) that accepts live
JSONL HCI/timeline event streams over long-lived connections and
uploaded btsnoop captures, multiplexes each session onto its own set
of detector instances behind a :class:`SessionManager`, and returns
alerts plus scored verdicts identical to offline
:func:`repro.detect.replay_capture`.

Layering:

* :mod:`repro.service.protocol` — the wire protocol: JSONL frames ↔
  :class:`~repro.detect.feed.DetectionEvent`, capture decoding with
  structured one-line errors, the verdict schema;
* :mod:`repro.service.session` — :class:`Session` (one stream, one
  detector pipeline, bounded reorder window, event budget) and
  :class:`SessionManager` (per-tenant metrics, idle eviction,
  optional run-store archiving);
* :mod:`repro.service.websocket` — minimal RFC 6455 framing over
  asyncio streams (server and client sides);
* :mod:`repro.service.server` — :class:`IngestServer`, the routed
  HTTP/WebSocket front-end (``blap service serve``);
* :mod:`repro.service.client` — asyncio client helpers shared by the
  load generator, tests and CI smoke;
* :mod:`repro.service.loadgen` — N concurrent synthetic clients
  replaying campaign-produced captures (``blap service loadgen``),
  recording sustained ingest throughput to ``BENCH_service.json``.

Quick start::

    from repro.service import IngestServer

    async def main():
        async with IngestServer(port=0) as server:
            print(server.url)        # http://127.0.0.1:<port>
            await server.serve_forever()
"""

from repro.service.protocol import (
    CaptureError,
    PROTOCOL_VERSION,
    ProtocolError,
    capture_events,
    decode_capture,
    frame_to_event,
    frames_from_capture,
)
from repro.service.session import (
    Session,
    SessionConfig,
    SessionError,
    SessionManager,
)
from repro.service.server import IngestServer
from repro.service.loadgen import LoadgenReport, run_loadgen

__all__ = [
    "CaptureError",
    "IngestServer",
    "LoadgenReport",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "Session",
    "SessionConfig",
    "SessionError",
    "SessionManager",
    "capture_events",
    "decode_capture",
    "frame_to_event",
    "frames_from_capture",
    "run_loadgen",
]
