"""Minimal RFC 6455 WebSocket framing over asyncio streams.

Just enough of the protocol for the ingest wire: the opening
handshake, unfragmented text frames carrying one JSON object each,
ping/pong, and close.  No extensions, no fragmentation, no binary
frames — a frame that needs them is a protocol error, reported with a
one-line reason like every other malformed input.

Both sides live here: the server-side upgrade/accept used by
:class:`~repro.service.server.IngestServer` and the client used by the
load generator and the tests.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import os
import struct
from typing import Any, Dict, Optional, Tuple

#: RFC 6455 §1.3 handshake GUID
WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

OP_CONT = 0x0
OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA

#: refuse frames beyond this payload size (bounds a hostile client)
MAX_FRAME_BYTES = 16 * 1024 * 1024


class WebSocketError(ConnectionError):
    """Framing or handshake violation: the reason is the message."""


def accept_key(client_key: str) -> str:
    """``Sec-WebSocket-Accept`` for a client's ``Sec-WebSocket-Key``."""
    digest = hashlib.sha1((client_key + WS_GUID).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


def encode_frame(
    payload: bytes, opcode: int = OP_TEXT, mask: bool = False
) -> bytes:
    """One complete (FIN) frame; clients must set ``mask=True``."""
    header = bytearray([0x80 | opcode])
    length = len(payload)
    mask_bit = 0x80 if mask else 0x00
    if length < 126:
        header.append(mask_bit | length)
    elif length < 0x10000:
        header.append(mask_bit | 126)
        header += struct.pack(">H", length)
    else:
        header.append(mask_bit | 127)
        header += struct.pack(">Q", length)
    if mask:
        key = os.urandom(4)
        header += key
        payload = bytes(
            byte ^ key[index % 4] for index, byte in enumerate(payload)
        )
    return bytes(header) + payload


async def read_frame(
    reader: asyncio.StreamReader,
) -> Tuple[int, bytes]:
    """Read one frame; returns ``(opcode, unmasked payload)``."""
    try:
        head = await reader.readexactly(2)
    except (asyncio.IncompleteReadError, ConnectionError) as exc:
        raise WebSocketError("connection closed mid-frame") from exc
    fin = head[0] & 0x80
    opcode = head[0] & 0x0F
    if not fin or opcode == OP_CONT:
        raise WebSocketError("fragmented frames are not supported")
    masked = head[1] & 0x80
    length = head[1] & 0x7F
    try:
        if length == 126:
            (length,) = struct.unpack(">H", await reader.readexactly(2))
        elif length == 127:
            (length,) = struct.unpack(">Q", await reader.readexactly(8))
        if length > MAX_FRAME_BYTES:
            raise WebSocketError(f"frame too large ({length} bytes)")
        key = await reader.readexactly(4) if masked else b""
        payload = await reader.readexactly(length) if length else b""
    except (asyncio.IncompleteReadError, ConnectionError) as exc:
        raise WebSocketError("connection closed mid-frame") from exc
    if masked:
        payload = bytes(
            byte ^ key[index % 4] for index, byte in enumerate(payload)
        )
    return opcode, payload


class WebSocket:
    """One upgraded connection: JSON frames in, JSON frames out."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        mask: bool,
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.mask = mask  # True on the client side (RFC 6455 §5.3)
        self.closed = False

    async def send_json(self, payload: Dict[str, Any]) -> None:
        data = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.writer.write(encode_frame(data, OP_TEXT, mask=self.mask))
        await self.writer.drain()

    async def recv_json(self) -> Optional[Dict[str, Any]]:
        """Next JSON object, or ``None`` once the peer closes.

        Control frames are handled inline: pings are answered, pongs
        ignored.  Non-JSON or non-object text raises
        :class:`WebSocketError` with a one-line reason.
        """
        while True:
            opcode, payload = await read_frame(self.reader)
            if opcode == OP_PING:
                self.writer.write(
                    encode_frame(payload, OP_PONG, mask=self.mask)
                )
                await self.writer.drain()
                continue
            if opcode == OP_PONG:
                continue
            if opcode == OP_CLOSE:
                await self.close()
                return None
            if opcode != OP_TEXT:
                raise WebSocketError(f"unsupported opcode {opcode:#x}")
            try:
                frame = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, ValueError) as exc:
                raise WebSocketError(f"frame is not JSON: {exc}") from exc
            if not isinstance(frame, dict):
                raise WebSocketError("frame must be a JSON object")
            return frame

    async def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        try:
            self.writer.write(encode_frame(b"", OP_CLOSE, mask=self.mask))
            await self.writer.drain()
        except (ConnectionError, RuntimeError):
            pass
        self.writer.close()


async def client_handshake(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    host: str,
    path: str,
) -> WebSocket:
    """Perform the client side of the upgrade on an open connection."""
    key = base64.b64encode(os.urandom(16)).decode("ascii")
    request = (
        f"GET {path} HTTP/1.1\r\n"
        f"Host: {host}\r\n"
        "Upgrade: websocket\r\n"
        "Connection: Upgrade\r\n"
        f"Sec-WebSocket-Key: {key}\r\n"
        "Sec-WebSocket-Version: 13\r\n"
        "\r\n"
    )
    writer.write(request.encode("ascii"))
    await writer.drain()
    status = await reader.readline()
    if b"101" not in status:
        raise WebSocketError(
            f"upgrade refused: {status.decode('latin-1').strip()!r}"
        )
    accept = None
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "sec-websocket-accept":
            accept = value.strip()
    if accept != accept_key(key):
        raise WebSocketError("bad Sec-WebSocket-Accept from server")
    return WebSocket(reader, writer, mask=True)


async def connect(host: str, port: int, path: str) -> WebSocket:
    """Open a TCP connection and upgrade it (client side)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        return await client_handshake(reader, writer, f"{host}:{port}", path)
    except Exception:
        writer.close()
        raise


def handshake_response(headers: Dict[str, str]) -> bytes:
    """The 101 response for a server-side upgrade, or raise.

    ``headers`` are the request headers, lower-cased keys.
    """
    key = headers.get("sec-websocket-key")
    if not key:
        raise WebSocketError("missing Sec-WebSocket-Key")
    upgrade = headers.get("upgrade", "").lower()
    if upgrade != "websocket":
        raise WebSocketError(f"not a websocket upgrade: {upgrade!r}")
    return (
        "HTTP/1.1 101 Switching Protocols\r\n"
        "Upgrade: websocket\r\n"
        "Connection: Upgrade\r\n"
        f"Sec-WebSocket-Accept: {accept_key(key)}\r\n"
        "\r\n"
    ).encode("ascii")
