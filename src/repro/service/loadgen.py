"""The load generator: N concurrent synthetic clients, one bench number.

``blap service loadgen`` replays campaign-produced captures (see
:mod:`repro.campaign.captures`) as N concurrent WebSocket streams
spread across T tenants — the workload shape fielded HCI harvesters
would present — and reports sustained ingest throughput plus the
aggregated verdict counters.  With no ``--url`` it self-hosts an
in-process :class:`~repro.service.server.IngestServer` on an ephemeral
port, so the bench measures the full server path (framing, queueing,
scoring) without external setup.

The report feeds ``repro.core.bench`` (``BENCH_service.json`` /
``BENCH_HISTORY.jsonl``) in CI, making ingest-throughput regressions
visible like any other benchmark.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.service import client as service_client
from repro.service import protocol
from repro.service.server import IngestServer
from repro.service.session import SessionConfig, SessionManager


@dataclass
class LoadgenReport:
    """What one loadgen run measured (JSON-serialisable)."""

    sessions: int
    tenants: int
    events: int
    alerts: int
    dropped_events: int
    wall_s: float
    events_per_s: float
    failures: int = 0
    #: per-tenant session counts (leakage audits key off this)
    by_tenant: Dict[str, int] = field(default_factory=dict)
    #: the individual verdicts, session-id order
    verdicts: List[Dict[str, Any]] = field(default_factory=list)

    def to_dict(self, include_verdicts: bool = False) -> Dict[str, Any]:
        payload = {
            "sessions": self.sessions,
            "tenants": self.tenants,
            "events": self.events,
            "alerts": self.alerts,
            "dropped_events": self.dropped_events,
            "failures": self.failures,
            "wall_s": self.wall_s,
            "events_per_s": self.events_per_s,
            "by_tenant": dict(sorted(self.by_tenant.items())),
        }
        if include_verdicts:
            payload["verdicts"] = self.verdicts
        return payload


async def _run_clients(
    host: str,
    port: int,
    frames_per_capture: Sequence[List[Dict[str, Any]]],
    sessions: int,
    tenants: int,
) -> Tuple[List[Optional[Dict[str, Any]]], float]:
    """Drive every synthetic client concurrently; time the whole wave."""

    async def one_client(index: int) -> Optional[Dict[str, Any]]:
        tenant = f"t{index % tenants}"
        frames = frames_per_capture[index % len(frames_per_capture)]
        try:
            ws, _welcome = await service_client.open_stream(
                host, port, tenant=tenant
            )
        except (ConnectionError, OSError):
            return None
        try:
            for frame in frames:
                await ws.send_json(frame)
            await ws.send_json({"type": "finish"})
            while True:
                reply = await ws.recv_json()
                if reply is None:
                    return None
                if reply.get("type") == "verdict":
                    return reply
                if reply.get("type") == "error":
                    return None
        except (ConnectionError, OSError):
            return None
        finally:
            await ws.close()

    started = time.perf_counter()
    results = await asyncio.gather(
        *(one_client(index) for index in range(sessions))
    )
    wall_s = time.perf_counter() - started
    return list(results), wall_s


def run_loadgen(
    captures: Sequence[bytes],
    sessions: int = 100,
    tenants: int = 4,
    url: Optional[str] = None,
    queue_size: Optional[int] = None,
) -> LoadgenReport:
    """Replay ``captures`` as ``sessions`` concurrent streams.

    Self-hosts a server unless ``url`` (``http://host:port``) points at
    a running one.  Returns the aggregated :class:`LoadgenReport`.
    """
    if not captures:
        raise ValueError("need at least one capture to replay")
    if sessions < 1:
        raise ValueError(f"sessions must be >= 1, got {sessions}")
    tenants = max(1, min(tenants, sessions))
    frames_per_capture = [
        protocol.frames_from_capture(capture) for capture in captures
    ]

    async def main() -> Tuple[List[Optional[Dict[str, Any]]], float]:
        if url is not None:
            netloc = url.split("//", 1)[-1].rstrip("/")
            host, _, port_text = netloc.partition(":")
            return await _run_clients(
                host or "127.0.0.1",
                int(port_text or "80"),
                frames_per_capture,
                sessions,
                tenants,
            )
        defaults = SessionConfig()
        if queue_size is not None:
            defaults = SessionConfig(queue_size=queue_size)
        manager = SessionManager(defaults=defaults)
        async with IngestServer(manager=manager) as server:
            return await _run_clients(
                server.host,
                server.port,
                frames_per_capture,
                sessions,
                tenants,
            )

    results, wall_s = asyncio.run(main())
    verdicts = [verdict for verdict in results if verdict is not None]
    verdicts.sort(key=lambda verdict: verdict.get("session", ""))
    by_tenant: Dict[str, int] = {}
    for verdict in verdicts:
        tenant = verdict.get("tenant", "?")
        by_tenant[tenant] = by_tenant.get(tenant, 0) + 1
    events = sum(verdict.get("events", 0) for verdict in verdicts)
    return LoadgenReport(
        sessions=len(verdicts),
        tenants=len(by_tenant),
        events=events,
        alerts=sum(verdict.get("alert_count", 0) for verdict in verdicts),
        dropped_events=sum(
            verdict.get("dropped_events", 0) for verdict in verdicts
        ),
        wall_s=wall_s,
        events_per_s=events / wall_s if wall_s > 0 else 0.0,
        failures=len(results) - len(verdicts),
        by_tenant=by_tenant,
        verdicts=verdicts,
    )
