"""Sessions: one stream, one detector pipeline, one verdict.

A :class:`Session` is the service-side unit of isolation — its own
detector instances (never shared, so alerts cannot leak across
streams), its own :class:`~repro.detect.adapters.ReorderBuffer`, its
own event budget, and a tenant-scoped
:class:`~repro.obs.MetricsRegistry`.  Ingest is *synchronous and
deterministic*: the same event sequence always produces the same
alerts and the same verdict, no matter how many sessions interleave on
the server — the asyncio layer above only decides *when* `ingest` runs,
never *what* it computes.

The :class:`SessionManager` owns the fleet view: session ids, the
per-tenant registries merged into service-wide metrics, idle-session
eviction, and (optionally) archiving finished sessions' alerts into a
:class:`~repro.store.RunStore`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
)

from repro.detect.adapters import DEFAULT_WINDOW, ReorderBuffer
from repro.detect.base import Alert, Detector, create_detector, detector_names
from repro.detect.feed import DetectionEvent
from repro.obs import MetricsRegistry, Observability

if TYPE_CHECKING:
    from repro.store import RunStore

#: default bound on the per-session ingest queue (WebSocket path)
DEFAULT_QUEUE_SIZE = 1024

#: default idle-session eviction horizon (wall seconds)
DEFAULT_MAX_IDLE_S = 300.0

#: finished verdicts kept addressable after the session closes
FINISHED_VERDICTS_KEPT = 256


class SessionError(ValueError):
    """Session lifecycle misuse: the one-line reason is the message."""


@dataclass
class SessionConfig:
    """Per-session knobs (service defaults overridable per stream)."""

    detectors: Optional[Sequence[str]] = None
    detector_config: Mapping[str, Mapping[str, Any]] = field(
        default_factory=dict
    )
    window: int = DEFAULT_WINDOW
    queue_size: int = DEFAULT_QUEUE_SIZE
    max_events: Optional[int] = None
    tenant: str = "default"
    monitor: str = "capture"


class Session:
    """One ingest stream scored by its own detector instances."""

    def __init__(
        self,
        session_id: str,
        config: SessionConfig,
        registry: Optional[MetricsRegistry] = None,
        on_alert: Optional[Callable[[Alert], None]] = None,
        latency_clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.id = session_id
        self.config = config
        self.detector_names = list(
            config.detectors
            if config.detectors is not None
            else detector_names()
        )
        self._detector_config = {
            name: dict(cfg)
            for name, cfg in dict(config.detector_config).items()
        }
        self.registry = registry if registry is not None else MetricsRegistry()
        self.on_alert = on_alert
        self.reorder = ReorderBuffer(config.window)
        self.alerts: List[Alert] = []
        self.events = 0
        self.dropped_events = 0
        self.undecodable = 0
        self.state = "open"
        self.last_active = 0.0
        self._instances: Dict[str, List[Detector]] = {}
        self._verdict: Optional[Dict[str, Any]] = None
        self._m_events = self.registry.counter("service.events")
        self._m_alerts = self.registry.counter("service.alerts")
        self._m_dropped = self.registry.counter("service.dropped_events")
        self._m_late = self.registry.counter("service.late_events")
        self._m_undecodable = self.registry.counter("service.undecodable")
        # wall-clock ingest latency per event, recorded into the tenant
        # registry so /metrics exposes per-tenant quantiles.  The clock
        # is injectable (the manager passes its own), so deterministic
        # tests aren't polluted by real timings — verdicts never read it.
        self._latency_clock = (
            latency_clock if latency_clock is not None else time.perf_counter
        )
        self._h_latency = self.registry.histogram("service.ingest_latency_s")

    # -------------------------------------------------------------- pipeline

    def _detectors_for(self, monitor: str) -> List[Detector]:
        instances = self._instances.get(monitor)
        if instances is None:
            instances = [
                create_detector(name, **self._detector_config.get(name, {}))
                for name in self.detector_names
            ]
            self._instances[monitor] = instances
        return instances

    def ingest(self, event: DetectionEvent) -> List[Alert]:
        """Score one event; returns any alerts it completed.

        Synchronous and pure with respect to the event sequence: the
        event budget is checked *here*, not in the async queue, so
        shedding under a fixed ``max_events`` is deterministic.
        """
        if self.state != "open":
            raise SessionError(f"session {self.id} is {self.state}")
        started = self._latency_clock()
        try:
            budget = self.config.max_events
            if budget is not None and self.events >= budget:
                self.shed()
                return []
            self.events += 1
            self._m_events.inc()
            if event.channel == "hci" and event.packet is None:
                self.undecodable += 1
                self._m_undecodable.inc()
            late_before = self.reorder.late_events
            released = self.reorder.push(event)
            if self.reorder.late_events > late_before:
                self._m_late.inc(self.reorder.late_events - late_before)
            alerts: List[Alert] = []
            for ready in released:
                alerts.extend(self._process(ready))
            return alerts
        finally:
            self._h_latency.observe(self._latency_clock() - started)

    def shed(self, count: int = 1) -> None:
        """Record ``count`` events dropped before they reached ingest."""
        self.dropped_events += count
        self._m_dropped.inc(count)

    def _process(self, event: DetectionEvent) -> List[Alert]:
        alerts: List[Alert] = []
        for detector in self._detectors_for(event.monitor):
            if event.channel not in detector.channels:
                continue
            alerts.extend(detector.on_event(event))
        for alert in alerts:
            self.alerts.append(alert)
            self._m_alerts.inc()
            if self.on_alert is not None:
                self.on_alert(alert)
        return alerts

    # --------------------------------------------------------------- results

    def finish(self) -> Dict[str, Any]:
        """Flush the pipeline and return the verdict (idempotent)."""
        if self._verdict is not None:
            return self._verdict
        final: List[Alert] = []
        for event in self.reorder.flush():
            final.extend(self._process(event))
        for instances in self._instances.values():
            for detector in instances:
                for alert in detector.finish():
                    self.alerts.append(alert)
                    self._m_alerts.inc()
                    final.append(alert)
                    if self.on_alert is not None:
                        self.on_alert(alert)
        self.state = "finished"
        self._verdict = self._build_verdict(final)
        return self._verdict

    def _build_verdict(self, final_alerts: List[Alert]) -> Dict[str, Any]:
        return {
            "type": "verdict",
            "session": self.id,
            "tenant": self.config.tenant,
            "monitor": self.config.monitor,
            "alerts": [alert.to_dict() for alert in self.alerts],
            "alert_count": len(self.alerts),
            "final_alerts": len(final_alerts),
            "max_scores": self.max_scores(),
            "first_alert_s": self.first_alert_s(),
            "events": self.events,
            "dropped_events": self.dropped_events,
            "late_events": self.reorder.late_events,
            "undecodable": self.undecodable,
            "detectors": list(self.detector_names),
        }

    def max_scores(self) -> Dict[str, float]:
        scores = {name: 0.0 for name in self.detector_names}
        for alert in self.alerts:
            if alert.score > scores.get(alert.detector, 0.0):
                scores[alert.detector] = alert.score
        return scores

    def first_alert_s(self, min_score: float = 0.0) -> Dict[str, float]:
        times: Dict[str, float] = {}
        for alert in self.alerts:
            if alert.score >= min_score and alert.detector not in times:
                times[alert.detector] = alert.time
        return times

    def summary(self) -> Dict[str, Any]:
        """One row for the sessions listing."""
        return {
            "session": self.id,
            "tenant": self.config.tenant,
            "monitor": self.config.monitor,
            "state": self.state,
            "events": self.events,
            "alerts": len(self.alerts),
            "dropped_events": self.dropped_events,
            "late_events": self.reorder.late_events,
            "pending": self.reorder.pending,
            "detectors": list(self.detector_names),
        }


class SessionManager:
    """The fleet view: ids, tenants, eviction, metrics, archiving."""

    def __init__(
        self,
        defaults: Optional[SessionConfig] = None,
        max_idle_s: float = DEFAULT_MAX_IDLE_S,
        store: Optional["RunStore"] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.defaults = defaults if defaults is not None else SessionConfig()
        self.max_idle_s = max_idle_s
        self.store = store
        #: an injected clock also drives ingest-latency timing, so
        #: fake-clock tests stay fully deterministic; the real service
        #: times latency with perf_counter.
        self._clock_injected = clock is not None
        self.clock = clock if clock is not None else time.monotonic
        self.registry = MetricsRegistry()
        self.obs = Observability(clock=self.clock, registry=self.registry)
        self.tenants: Dict[str, MetricsRegistry] = {}
        self.sessions: Dict[str, Session] = {}
        self.finished: Dict[str, Dict[str, Any]] = {}
        self._next_id = 0
        self._m_opened = self.registry.counter("service.sessions_opened")
        self._m_finished = self.registry.counter("service.sessions_finished")
        self._m_evicted = self.registry.counter("service.sessions_evicted")
        self._g_active = self.registry.gauge("service.sessions_active")

    # ------------------------------------------------------------- lifecycle

    def open(
        self,
        config: Optional[SessionConfig] = None,
        on_alert: Optional[Callable[[Alert], None]] = None,
        **overrides: Any,
    ) -> Session:
        """Open a session (service defaults + per-stream overrides)."""
        base = config if config is not None else self.defaults
        if overrides:
            base = replace(base, **overrides)
        self._next_id += 1
        session_id = f"s{self._next_id:04d}"
        tenant_registry = self.tenants.get(base.tenant)
        if tenant_registry is None:
            tenant_registry = self.tenants[base.tenant] = MetricsRegistry()
        session = Session(
            session_id,
            base,
            registry=tenant_registry,
            on_alert=on_alert,
            latency_clock=self.clock if self._clock_injected else None,
        )
        session.last_active = self.clock()
        self.sessions[session_id] = session
        self._m_opened.inc()
        self._g_active.set(len(self.sessions))
        return session

    def get(self, session_id: str) -> Session:
        session = self.sessions.get(session_id)
        if session is None:
            raise SessionError(f"unknown session {session_id!r}")
        return session

    def touch(self, session: Session) -> None:
        session.last_active = self.clock()

    def finish(self, session: Session) -> Dict[str, Any]:
        """Close a session: verdict, metrics, optional store archive."""
        verdict = session.finish()
        if self.sessions.pop(session.id, None) is not None:
            self._m_finished.inc()
            self._g_active.set(len(self.sessions))
            self.finished[session.id] = verdict
            while len(self.finished) > FINISHED_VERDICTS_KEPT:
                self.finished.pop(next(iter(self.finished)))
            if self.store is not None:
                self._archive(session, verdict)
        return verdict

    def _archive(self, session: Session, verdict: Dict[str, Any]) -> None:
        run_id = f"service-{session.id}"
        self.store.upsert_run(
            run_id,
            trials=1,
            errors=0,
            summary={
                "service": session.summary(),
                "max_scores": verdict["max_scores"],
            },
        )
        if session.alerts:
            self.store.add_alerts(
                run_id,
                session.alerts,
                scenario=f"service:{session.config.tenant}",
            )

    def evict_idle(self, now: Optional[float] = None) -> List[str]:
        """Finish every session idle past ``max_idle_s``; return ids."""
        if now is None:
            now = self.clock()
        evicted: List[str] = []
        for session in list(self.sessions.values()):
            if now - session.last_active > self.max_idle_s:
                self.finish(session)
                self._m_evicted.inc()
                evicted.append(session.id)
        return evicted

    # --------------------------------------------------------------- metrics

    def merged_metrics(self) -> MetricsRegistry:
        """Service registry + every tenant registry, folded together."""
        merged = MetricsRegistry()
        merged.merge(self.registry)
        for tenant in sorted(self.tenants):
            merged.merge(self.tenants[tenant])
        return merged

    def service_snapshot(self) -> Dict[str, Any]:
        """The ``/api/metrics`` payload: merged + per-tenant views."""
        return {
            "service": self.merged_metrics().snapshot(),
            "tenants": {
                tenant: self.tenants[tenant].snapshot()
                for tenant in sorted(self.tenants)
            },
            "sessions": {
                "active": len(self.sessions),
                "opened": self.registry.counter_value(
                    "service.sessions_opened"
                ),
                "finished": self.registry.counter_value(
                    "service.sessions_finished"
                ),
                "evicted": self.registry.counter_value(
                    "service.sessions_evicted"
                ),
            },
        }

    def prometheus_metrics(self) -> str:
        """The ``GET /metrics`` page: every instrument in Prometheus
        text exposition — fleet-wide series unlabeled, plus the same
        metrics per tenant under a ``tenant`` label (that includes the
        per-tenant ``service.ingest_latency_s`` quantiles and the
        dropped/late-event counters)."""
        from repro.obs.prom import render_prometheus

        groups = [({}, self.merged_metrics().snapshot())]
        for tenant in sorted(self.tenants):
            groups.append(
                ({"tenant": tenant}, self.tenants[tenant].snapshot())
            )
        return render_prometheus(groups)

    def list_sessions(self) -> List[Dict[str, Any]]:
        """Active-session summaries, id order (deterministic)."""
        return [
            self.sessions[session_id].summary()
            for session_id in sorted(self.sessions)
        ]
