"""The ingest front-end: asyncio HTTP + WebSocket detection service.

:class:`IngestServer` is the serving half of :mod:`repro.detect` —
standard library only, like ``blap serve``.  Routes:

* ``GET /healthz`` — liveness;
* ``GET /api/metrics`` — merged service metrics + per-tenant snapshots
  (JSON);
* ``GET /metrics`` — the same instruments in Prometheus text
  exposition (:mod:`repro.obs.prom`): counters/gauges/histograms with
  digest quantiles, per-tenant series labeled ``tenant="..."``;
* ``GET /api/sessions`` — active-session summaries;
* ``GET /api/sessions/<id>`` — one session summary, or its verdict
  once finished;
* ``POST /api/captures`` — body is a btsnoop capture; scored
  synchronously, response is the verdict (identical alerts to
  :func:`repro.detect.replay_capture` on the same bytes).  Malformed
  bytes are a structured 400 with a one-line ``error`` reason — never
  a 500;
* ``POST /api/sessions`` — JSON ``{"run_id": ...}``: replay an
  archived run out of the attached store through a fresh session;
* ``GET /ws/ingest`` — the long-lived streaming path (wire protocol in
  :mod:`repro.service.protocol`).

Each WebSocket stream gets a bounded queue between the socket reader
and the scoring worker.  When the queue is full the event is *shed* —
counted in the session's ``dropped_events``, never silently lost —
so one slow stream cannot wedge the server.  Scoring itself is
synchronous per session (:meth:`~repro.service.session.Session.ingest`
is pure), which is what keeps concurrent-session verdicts identical
to sequential ones.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import replace
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

from repro.service import protocol
from repro.service.session import Session, SessionConfig, SessionManager
from repro.service.websocket import (
    WebSocket,
    WebSocketError,
    handshake_response,
)

if TYPE_CHECKING:
    from repro.store import RunStore

#: request line + headers are bounded; bodies use Content-Length
MAX_HEADER_BYTES = 64 * 1024

#: refuse capture uploads beyond this size
MAX_BODY_BYTES = 64 * 1024 * 1024

#: how often the idle-eviction task wakes (wall seconds)
EVICTION_TICK_S = 30.0

#: the event a WS worker treats as end-of-stream
_FINISH = object()


def enqueue_or_shed(
    session: Session, queue: "asyncio.Queue", item: Any
) -> bool:
    """Enqueue an event for the session's worker, or shed it.

    Factored out of the WebSocket reader so backpressure is testable
    without sockets: a full queue increments the session's
    ``dropped_events`` (slow-consumer shedding) and the caller moves
    on.  Returns True when the item was queued.
    """
    try:
        queue.put_nowait(item)
        return True
    except asyncio.QueueFull:
        session.shed()
        return False


class _HttpRequest:
    """One parsed request: method, path, query, headers, body."""

    def __init__(
        self,
        method: str,
        target: str,
        headers: Dict[str, str],
        body: bytes,
    ) -> None:
        self.method = method
        path, _, query_string = target.partition("?")
        self.path = path
        self.headers = headers
        self.body = body
        self.query: Dict[str, str] = {}
        if query_string:
            for pair in query_string.split("&"):
                key, _, value = pair.partition("=")
                if key:
                    self.query[key] = value


class IngestServer:
    """The asyncio detection-ingest service (``blap service serve``)."""

    def __init__(
        self,
        manager: Optional[SessionManager] = None,
        store: Optional["RunStore"] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        idle_timeout_s: Optional[float] = None,
        verbose: bool = False,
    ) -> None:
        if manager is None:
            manager = SessionManager(store=store)
        elif store is not None and manager.store is None:
            manager.store = store
        self.manager = manager
        self.store = manager.store
        self.host = host
        self.port = port
        self.verbose = verbose
        if idle_timeout_s is not None:
            self.manager.max_idle_s = idle_timeout_s
        self._server: Optional[asyncio.AbstractServer] = None
        self._evictor: Optional[asyncio.Task] = None

    # ------------------------------------------------------------- lifecycle

    async def start(self) -> "IngestServer":
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._evictor = asyncio.get_running_loop().create_task(
            self._evict_loop()
        )
        return self

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def stop(self) -> None:
        if self._evictor is not None:
            self._evictor.cancel()
            try:
                await self._evictor
            except asyncio.CancelledError:
                pass
            self._evictor = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "IngestServer":
        return await self.start()

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.stop()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def ws_url(self) -> str:
        return f"ws://{self.host}:{self.port}/ws/ingest"

    async def _evict_loop(self) -> None:
        while True:
            await asyncio.sleep(EVICTION_TICK_S)
            evicted = self.manager.evict_idle()
            if evicted:
                self._log(f"evicted idle sessions: {', '.join(evicted)}")

    def _log(self, message: str) -> None:
        if self.verbose:
            print(f"[service] {message}")

    # ------------------------------------------------------------ connection

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            if (
                request.path == "/ws/ingest"
                and request.headers.get("upgrade", "").lower() == "websocket"
            ):
                await self._handle_websocket(request, reader, writer)
                return
            if request.path == "/metrics" and request.method == "GET":
                # Prometheus text exposition, not JSON — the one route
                # real scrapers hit, so it bypasses _respond_json.
                await self._respond_text(
                    writer, 200, self.manager.prometheus_metrics()
                )
                return
            status, payload = await self._route(request)
            await self._respond_json(writer, status, payload)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except WebSocketError as exc:
            self._log(f"websocket error: {exc}")
        except Exception as exc:  # the server must never die on one conn
            self._log(f"internal error: {exc!r}")
            try:
                await self._respond_json(
                    writer, 500, {"error": "internal error"}
                )
            except (ConnectionError, RuntimeError):
                pass
        finally:
            try:
                writer.close()
            except RuntimeError:
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[_HttpRequest]:
        request_line = await reader.readline()
        if not request_line:
            return None
        try:
            method, target, _ = (
                request_line.decode("latin-1").strip().split(" ", 2)
            )
        except ValueError:
            raise WebSocketError(
                f"bad request line: {request_line[:80]!r}"
            ) from None
        headers: Dict[str, str] = {}
        total = len(request_line)
        while True:
            line = await reader.readline()
            total += len(line)
            if total > MAX_HEADER_BYTES:
                raise WebSocketError("request headers too large")
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise WebSocketError(f"request body too large ({length} bytes)")
        if length:
            body = await reader.readexactly(length)
        return _HttpRequest(method.upper(), target, headers, body)

    async def _respond_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, Any],
    ) -> None:
        reasons = {200: "OK", 400: "Bad Request", 404: "Not Found"}
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {reasons.get(status, 'Error')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    async def _respond_text(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body_text: str,
    ) -> None:
        body = body_text.encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {'OK' if status == 200 else 'Error'}\r\n"
            "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # --------------------------------------------------------------- routing

    async def _route(
        self, request: _HttpRequest
    ) -> Tuple[int, Dict[str, Any]]:
        path, method = request.path, request.method
        if path == "/healthz" and method == "GET":
            return 200, {
                "status": "ok",
                "protocol": protocol.PROTOCOL_VERSION,
                "sessions": len(self.manager.sessions),
            }
        if path == "/api/metrics" and method == "GET":
            return 200, self.manager.service_snapshot()
        if path == "/api/sessions" and method == "GET":
            return 200, {"sessions": self.manager.list_sessions()}
        if path.startswith("/api/sessions/") and method == "GET":
            session_id = path[len("/api/sessions/"):]
            session = self.manager.sessions.get(session_id)
            if session is not None:
                return 200, session.summary()
            verdict = self.manager.finished.get(session_id)
            if verdict is not None:
                return 200, verdict
            return 404, {"error": f"unknown session {session_id!r}"}
        if path == "/api/captures" and method == "POST":
            return self._handle_capture(request)
        if path == "/api/sessions" and method == "POST":
            return self._handle_store_session(request)
        return 404, {"error": f"no route for {method} {path}"}

    def _session_config(
        self, params: Dict[str, Any], monitor_default: str
    ) -> SessionConfig:
        """Session overrides from query params / a JSON body / a hello."""
        config = self.manager.defaults
        overrides: Dict[str, Any] = {}
        tenant = params.get("tenant")
        if tenant:
            overrides["tenant"] = str(tenant)
        detectors = params.get("detectors")
        if detectors:
            if isinstance(detectors, str):
                detectors = [
                    name for name in detectors.split(",") if name
                ]
            overrides["detectors"] = list(detectors)
        overrides["monitor"] = str(params.get("monitor") or monitor_default)
        for key in ("window", "max_events", "queue_size"):
            value = params.get(key)
            if value is not None and value != "":
                overrides[key] = int(value)
        return replace(config, **overrides)

    # -------------------------------------------------------------- captures

    def _handle_capture(
        self, request: _HttpRequest
    ) -> Tuple[int, Dict[str, Any]]:
        """Score an uploaded btsnoop capture synchronously."""
        try:
            entries = protocol.decode_capture(request.body)
        except protocol.CaptureError as exc:
            return 400, {"error": str(exc)}
        try:
            config = self._session_config(request.query, "capture")
        except (ValueError, KeyError) as exc:
            return 400, {"error": f"bad session parameters: {exc}"}
        session = self.manager.open(config)
        span = self.manager.obs.spans.begin(
            "service.capture", source="service", session=session.id
        )
        try:
            for event in protocol.capture_events(
                entries, monitor=config.monitor
            ):
                session.ingest(event)
            verdict = self.manager.finish(session)
        finally:
            self.manager.obs.spans.finish(span)
        self._log(
            f"capture scored: session={session.id} "
            f"events={verdict['events']} alerts={verdict['alert_count']}"
        )
        return 200, verdict

    # --------------------------------------------------------- store replay

    def _handle_store_session(
        self, request: _HttpRequest
    ) -> Tuple[int, Dict[str, Any]]:
        """Replay an archived run out of the store through a session."""
        if self.store is None:
            return 400, {"error": "no run store attached (start with --db)"}
        try:
            params = json.loads(request.body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, ValueError) as exc:
            return 400, {"error": f"body is not JSON: {exc}"}
        if not isinstance(params, dict):
            return 400, {"error": "body must be a JSON object"}
        run_id = params.get("run_id")
        if not run_id:
            return 400, {"error": "missing run_id"}
        try:
            config = self._session_config(params, "store")
        except (ValueError, KeyError, TypeError) as exc:
            return 400, {"error": f"bad session parameters: {exc}"}
        from repro.store.replay import detection_events_for_run

        try:
            events = list(
                detection_events_for_run(
                    self.store, str(run_id), monitor=config.monitor
                )
            )
        except KeyError as exc:
            return 404, {"error": str(exc.args[0])}
        session = self.manager.open(config)
        span = self.manager.obs.spans.begin(
            "service.store_replay", source="service", session=session.id
        )
        try:
            for event in events:
                session.ingest(event)
            verdict = self.manager.finish(session)
        finally:
            self.manager.obs.spans.finish(span)
        verdict = dict(verdict)
        verdict["source_run_id"] = str(run_id)
        return 200, verdict

    # -------------------------------------------------------------- streaming

    async def _handle_websocket(
        self,
        request: _HttpRequest,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        writer.write(handshake_response(request.headers))
        await writer.drain()
        ws = WebSocket(reader, writer, mask=False)
        session: Optional[Session] = None
        worker: Optional[asyncio.Task] = None
        try:
            hello = await ws.recv_json()
            if hello is None:
                return
            if hello.get("type") != "hello":
                await ws.send_json(
                    protocol.error_frame(
                        f"expected a hello frame, got {hello.get('type')!r}"
                    )
                )
                return
            try:
                config = self._session_config(hello, "capture")
            except (ValueError, KeyError, TypeError) as exc:
                await ws.send_json(
                    protocol.error_frame(f"bad session parameters: {exc}")
                )
                return
            session = self.manager.open(config)
            queue: "asyncio.Queue" = asyncio.Queue(
                maxsize=max(1, config.queue_size)
            )
            span = self.manager.obs.spans.begin(
                "service.session", source="service", session=session.id
            )
            worker = asyncio.get_running_loop().create_task(
                self._score_worker(session, queue, ws)
            )
            await ws.send_json(
                {
                    "type": "welcome",
                    "protocol": protocol.PROTOCOL_VERSION,
                    "session": session.id,
                    "tenant": config.tenant,
                    "detectors": session.detector_names,
                }
            )
            finished = False
            while not finished:
                frame = await ws.recv_json()
                if frame is None:
                    break
                kind = frame.get("type")
                if kind == "finish":
                    finished = True
                    continue
                if kind != "event":
                    await ws.send_json(
                        protocol.error_frame(
                            f"unexpected frame type {kind!r}"
                        )
                    )
                    continue
                try:
                    event = protocol.frame_to_event(
                        frame, default_monitor=config.monitor
                    )
                except protocol.ProtocolError as exc:
                    await ws.send_json(protocol.error_frame(str(exc)))
                    continue
                self.manager.touch(session)
                enqueue_or_shed(session, queue, event)
            await queue.put(_FINISH)
            verdict = await worker
            worker = None
            self.manager.obs.spans.finish(span)
            if verdict is not None:
                await ws.send_json(verdict)
        except WebSocketError as exc:
            self._log(f"stream error: {exc}")
        finally:
            if worker is not None:
                worker.cancel()
                try:
                    await worker
                except asyncio.CancelledError:
                    pass
            if session is not None and session.state == "open":
                # client vanished mid-stream: close out the session so
                # its verdict is still addressable and archived
                self.manager.finish(session)
            await ws.close()

    async def _score_worker(
        self,
        session: Session,
        queue: "asyncio.Queue",
        ws: WebSocket,
    ) -> Optional[Dict[str, Any]]:
        """Drain the session queue, streaming alerts as they fire."""
        while True:
            item = await queue.get()
            if item is _FINISH:
                return self.manager.finish(session)
            alerts = session.ingest(item)
            for alert in alerts:
                try:
                    await ws.send_json(
                        protocol.alert_frame(session.id, alert)
                    )
                except (ConnectionError, WebSocketError):
                    pass  # verdict still completes server-side


def run_server(
    host: str = "127.0.0.1",
    port: int = 8322,
    store: Optional["RunStore"] = None,
    idle_timeout_s: float = 300.0,
    defaults: Optional[SessionConfig] = None,
    verbose: bool = False,
    ready: Optional[Any] = None,
) -> None:
    """Blocking entry point for ``blap service serve``."""

    async def main() -> None:
        manager = SessionManager(
            defaults=defaults, max_idle_s=idle_timeout_s, store=store
        )
        server = IngestServer(
            manager=manager, host=host, port=port, verbose=verbose
        )
        async with server:
            if ready is not None:
                ready(server)
            await server.serve_forever()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass


__all__ = ["IngestServer", "enqueue_or_shed", "run_server"]
