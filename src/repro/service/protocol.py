"""The service wire protocol: JSONL frames, captures, verdicts.

One frame is one JSON object.  Over the WebSocket ingest endpoint a
frame is one text message; in documentation and fixtures frames are
written as JSON Lines.  Client → server frames:

* ``{"type": "hello", "protocol": 1, "tenant": ..., "monitor": ...,
  "detectors": [...], "window": N, "max_events": N}`` — opens the
  session (first frame on a stream; everything but ``type`` is
  optional);
* ``{"type": "event", "channel": "hci", "time": T, "seq": N,
  "raw": "<hex H4 bytes>", "direction": "h2c"|"c2h", "frame_no": N}``
  — one HCI observation, raw wire bytes included so the server parses
  exactly like a live transport tap (unparseable bytes degrade to
  ``kind="undecodable"`` instead of erroring);
* ``{"type": "event", "channel": "trace", "time": T, "seq": N,
  "kind": <category>, "source": ..., "message": ..., "detail": {...}}``
  — one timeline/trace observation (what a store-sourced feed
  replays);
* ``{"type": "finish"}`` — end of stream; the server answers with the
  verdict frame.

Server → client frames: ``welcome`` (session id), ``alert`` (streamed
as detectors fire), ``verdict`` (the final scored summary — the same
alerts :func:`repro.detect.replay_capture` computes for the same
bytes), and ``error`` (one-line reason; the connection then closes).

:func:`decode_capture` is the upload-endpoint front door: it turns a
truncated or malformed btsnoop body into a :class:`CaptureError` with
a one-line reason — the server maps that to a structured HTTP 400,
never a 500.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.core.errors import HciError, StorageError
from repro.detect.feed import DetectionEvent
from repro.hci.parser import parse_packet
from repro.sim.trace import TraceRecord
from repro.snoop.btsnoop import BtsnoopReader
from repro.snoop.hcidump import DumpEntry, entries_from_btsnoop
from repro.transport.base import Direction

#: bump when a frame field changes meaning
PROTOCOL_VERSION = 1

#: default monitor name for capture-shaped streams (matches
#: :func:`repro.detect.replay_capture`'s default, so verdicts line up)
DEFAULT_MONITOR = "capture"


class ProtocolError(ValueError):
    """A malformed frame: the one-line reason is the message."""


class CaptureError(ValueError):
    """A malformed btsnoop capture: the one-line reason is the message."""


_DIRECTION_WIRE = {
    Direction.HOST_TO_CONTROLLER: "h2c",
    Direction.CONTROLLER_TO_HOST: "c2h",
}
_WIRE_DIRECTION = {wire: d for d, wire in _DIRECTION_WIRE.items()}


# ------------------------------------------------------------------ captures


def decode_capture(raw: bytes) -> List[DumpEntry]:
    """btsnoop bytes → dump entries, or :class:`CaptureError`.

    Every way client bytes can be bad — wrong magic, truncated record,
    a packet that does not parse — funnels into one exception type
    with a one-line reason, so servers can answer 400 uniformly.
    """
    if not raw:
        raise CaptureError("empty capture body")
    try:
        return entries_from_btsnoop(bytes(raw))
    except (StorageError, HciError) as exc:
        raise CaptureError(str(exc)) from exc
    except (ValueError, IndexError) as exc:  # defensive: odd slicing
        raise CaptureError(f"unreadable capture: {exc}") from exc


def capture_events(
    entries: Sequence[DumpEntry], monitor: str = DEFAULT_MONITOR
) -> Iterator[DetectionEvent]:
    """Dump entries → the exact events ``replay_capture`` feeds.

    Shared by the upload endpoint and the identity tests: the event
    construction here must stay byte-for-byte equivalent to
    :func:`repro.detect.replay.replay_capture`'s loop.
    """
    for seq, entry in enumerate(entries):
        yield DetectionEvent(
            time=entry.timestamp,
            seq=seq,
            monitor=monitor,
            channel="hci",
            kind=type(entry.packet).__name__,
            packet=entry.packet,
            frame_no=entry.frame,
            direction=entry.direction,
        )


def frames_from_capture(
    raw: bytes, monitor: Optional[str] = None
) -> List[Dict[str, Any]]:
    """btsnoop bytes → ``event`` frames (the synthetic-client side).

    The raw H4 bytes ride along in hex so the server parses them
    itself — the wire carries observations, not parsed objects.
    """
    try:
        reader = BtsnoopReader(bytes(raw))
        records = list(reader)
    except StorageError as exc:
        raise CaptureError(str(exc)) from exc
    frames: List[Dict[str, Any]] = []
    for seq, record in enumerate(records):
        frame: Dict[str, Any] = {
            "type": "event",
            "channel": "hci",
            "time": record.timestamp_us / 1_000_000,
            "seq": seq,
            "raw": record.data.hex(),
            "direction": _DIRECTION_WIRE[record.direction],
            "frame_no": seq + 1,
        }
        if monitor is not None:
            frame["monitor"] = monitor
        frames.append(frame)
    return frames


# -------------------------------------------------------------------- frames


def _require(frame: Dict[str, Any], key: str) -> Any:
    try:
        return frame[key]
    except KeyError:
        raise ProtocolError(f"event frame missing {key!r}") from None


def frame_to_event(
    frame: Dict[str, Any], default_monitor: str = DEFAULT_MONITOR
) -> DetectionEvent:
    """One ``event`` frame → a :class:`DetectionEvent`.

    HCI payload bytes that fail to parse become
    ``kind="undecodable"`` events (the live-tap contract: detection
    keeps running on degraded or hostile inputs); *structurally*
    malformed frames raise :class:`ProtocolError` with a one-line
    reason instead.
    """
    if not isinstance(frame, dict):
        raise ProtocolError("frame must be a JSON object")
    if frame.get("type") != "event":
        raise ProtocolError(
            f"expected an event frame, got type {frame.get('type')!r}"
        )
    channel = frame.get("channel", "hci")
    monitor = str(frame.get("monitor", default_monitor))
    try:
        time_s = float(_require(frame, "time"))
        seq = int(frame.get("seq", 0))
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"bad event timing fields: {exc}") from exc

    if channel == "hci":
        raw_hex = _require(frame, "raw")
        try:
            raw = bytes.fromhex(raw_hex)
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"bad raw hex payload: {exc}") from exc
        direction_wire = frame.get("direction", "c2h")
        direction = _WIRE_DIRECTION.get(direction_wire)
        if direction is None:
            raise ProtocolError(
                f"bad direction {direction_wire!r} (want h2c or c2h)"
            )
        packet = None
        kind = "undecodable"
        if raw:
            try:
                packet = parse_packet(raw[0], raw[1:])
                kind = type(packet).__name__
            except HciError:
                packet = None
        return DetectionEvent(
            time=time_s,
            seq=seq,
            monitor=monitor,
            channel="hci",
            kind=kind,
            packet=packet,
            frame_no=int(frame.get("frame_no", 0)),
            direction=direction,
        )

    if channel == "trace":
        kind = str(_require(frame, "kind"))
        detail = frame.get("detail") or {}
        if not isinstance(detail, dict):
            raise ProtocolError("trace detail must be a JSON object")
        record = TraceRecord(
            time=time_s,
            source=str(frame.get("source", "")),
            category=kind,
            message=str(frame.get("message", "")),
            detail=detail,
            seq=seq,
        )
        return DetectionEvent(
            time=time_s,
            seq=seq,
            monitor=monitor,
            channel="trace",
            kind=kind,
            record=record,
        )

    raise ProtocolError(
        f"unsupported channel {channel!r} (want hci or trace)"
    )


def alert_frame(session_id: str, alert: Any) -> Dict[str, Any]:
    """One streamed-alert frame."""
    return {
        "type": "alert",
        "session": session_id,
        "alert": alert.to_dict() if hasattr(alert, "to_dict") else alert,
    }


def error_frame(reason: str) -> Dict[str, Any]:
    return {"type": "error", "reason": reason}
