"""Client helpers for the ingest service.

Two flavours, matching the two kinds of caller:

* asyncio (:func:`request`, :func:`stream_capture`) — used by the load
  generator and the tests, which already live inside an event loop and
  want many connections in flight;
* blocking (:func:`fetch_json`, :func:`post_json`) — used by the CLI
  (``blap service sessions``) where one synchronous call is plenty.

Everything speaks plain HTTP/1.1 with ``Connection: close`` — the same
dependency-free style as the server.
"""

from __future__ import annotations

import asyncio
import json
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Tuple

from repro.service import protocol
from repro.service.websocket import WebSocket, connect


async def request(
    host: str,
    port: int,
    method: str,
    path: str,
    body: bytes = b"",
    content_type: str = "application/octet-stream",
) -> Tuple[int, Dict[str, Any]]:
    """One HTTP exchange; returns ``(status, decoded JSON body)``."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()
        status_line = await reader.readline()
        parts = status_line.decode("latin-1").split(" ", 2)
        status = int(parts[1]) if len(parts) > 1 else 0
        length: Optional[int] = None
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        if length is not None:
            payload = await reader.readexactly(length)
        else:
            payload = await reader.read()
        return status, json.loads(payload.decode("utf-8") or "{}")
    finally:
        writer.close()


async def open_stream(
    host: str,
    port: int,
    tenant: str = "default",
    detectors: Optional[List[str]] = None,
    monitor: str = "capture",
    **hello_extra: Any,
) -> Tuple[WebSocket, Dict[str, Any]]:
    """Connect, send the hello, return ``(socket, welcome frame)``."""
    ws = await connect(host, port, "/ws/ingest")
    hello: Dict[str, Any] = {
        "type": "hello",
        "protocol": protocol.PROTOCOL_VERSION,
        "tenant": tenant,
        "monitor": monitor,
    }
    if detectors is not None:
        hello["detectors"] = list(detectors)
    hello.update(hello_extra)
    await ws.send_json(hello)
    welcome = await ws.recv_json()
    if welcome is None or welcome.get("type") != "welcome":
        await ws.close()
        reason = (welcome or {}).get("reason", "connection closed")
        raise ConnectionError(f"stream rejected: {reason}")
    return ws, welcome


async def stream_capture(
    host: str,
    port: int,
    capture: bytes,
    tenant: str = "default",
    **hello_extra: Any,
) -> Dict[str, Any]:
    """Replay one capture over a WebSocket stream; return the verdict.

    Alerts streamed mid-session are folded into the returned dict
    under ``"streamed_alerts"`` so callers can check live delivery.
    """
    frames = protocol.frames_from_capture(capture)
    ws, _welcome = await open_stream(
        host, port, tenant=tenant, **hello_extra
    )
    streamed: List[Dict[str, Any]] = []
    try:
        for frame in frames:
            await ws.send_json(frame)
        await ws.send_json({"type": "finish"})
        while True:
            reply = await ws.recv_json()
            if reply is None:
                raise ConnectionError("stream closed before verdict")
            if reply.get("type") == "alert":
                streamed.append(reply)
                continue
            if reply.get("type") == "verdict":
                verdict = dict(reply)
                verdict["streamed_alerts"] = streamed
                return verdict
            if reply.get("type") == "error":
                raise ConnectionError(f"stream error: {reply.get('reason')}")
    finally:
        await ws.close()


# ----------------------------------------------------------------- blocking


def fetch_json(url: str, timeout: float = 10.0) -> Dict[str, Any]:
    """Blocking GET for the CLI; errors surface as ``ValueError``."""
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return json.loads(response.read().decode("utf-8"))
    except (urllib.error.URLError, OSError, ValueError) as exc:
        raise ValueError(f"request to {url} failed: {exc}") from exc


def post_json(
    url: str, payload: Dict[str, Any], timeout: float = 10.0
) -> Dict[str, Any]:
    """Blocking POST of a JSON body; 4xx bodies are decoded, not raised."""
    data = json.dumps(payload).encode("utf-8")
    req = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as response:
            return json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        try:
            return json.loads(exc.read().decode("utf-8"))
        except ValueError:
            raise ValueError(f"request to {url} failed: {exc}") from exc
    except (urllib.error.URLError, OSError, ValueError) as exc:
        raise ValueError(f"request to {url} failed: {exc}") from exc
