"""Self-time trees: double-count-free performance attribution.

With nested spans (trial → attack → hci → phy) *wall* totals
double-count every parent, so a "slowest span types" table cannot say
where time actually goes.  **Self-time** — a span's wall duration
minus its finished children's wall time — is additive: summed over any
set of span types it never exceeds the root spans' wall time, so a
self-time table is a true cost breakdown.

:class:`SelfTimeTree` aggregates self-time per span-type *path* (the
chain of span names from the root — exactly a collapsed flamegraph
stack).  Trees are built from three sources and all merge:

* a live :class:`~repro.obs.spans.SpanTracker` (``from_spans``);
* a merged :class:`~repro.obs.metrics.MetricsRegistry` snapshot
  (``from_snapshot`` — reads the ``spantree.<a;b;c>_s`` histograms
  every :class:`~repro.obs.Observability` records, which already merge
  across campaign shards via ``MetricsRegistry.merge``);
* a serialized tree (``from_jsonable`` / ``merge``).

Merging is order-independent: per-node sums are kept as partial-sum
lists folded with ``math.fsum`` (the same trick the metrics
histograms use), so shard A+B and B+A serialize byte-identically.

``to_collapsed`` renders the Brendan Gregg collapsed-stack format
(``a;b;c <weight>``, one line per stack, integer microseconds) that
``flamegraph.pl`` and speedscope both import.  All times here are
*simulated* seconds, so every artifact is deterministic per seed.
"""

from __future__ import annotations

from math import fsum
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple, Union

#: serialized-tree schema version
TREE_FORMAT = 1

#: histogram-name prefixes recorded by Observability._observe_span
SPAN_PREFIX = "span."
SPANSELF_PREFIX = "spanself."
SPANTREE_PREFIX = "spantree."

#: collapsed-stack weights are integer microseconds of self-time
COLLAPSED_UNIT = 1e6

Path_ = Tuple[str, ...]


def _tree_path(histogram_name: str) -> Optional[Path_]:
    """``"spantree.a;b;c_s"`` → ``("a", "b", "c")``, else None."""
    if not (
        histogram_name.startswith(SPANTREE_PREFIX)
        and histogram_name.endswith("_s")
    ):
        return None
    body = histogram_name[len(SPANTREE_PREFIX):-len("_s")]
    return tuple(body.split(";")) if body else None


class SelfTimeTree:
    """Per-path self-time aggregates; mergeable like a registry."""

    __slots__ = ("_nodes",)

    def __init__(self) -> None:
        # path -> [count, [self_s parts...]] — one part per merged
        # source, folded exactly with fsum at read time.
        self._nodes: Dict[Path_, List[Any]] = {}

    # ------------------------------------------------------------ building

    def add(self, path: Iterable[str], self_s: float, count: int = 1) -> None:
        key = tuple(path)
        node = self._nodes.get(key)
        if node is None:
            self._nodes[key] = [count, [float(self_s)]]
        else:
            node[0] += count
            node[1].append(float(self_s))

    @classmethod
    def from_spans(cls, spans: Iterable[Any]) -> "SelfTimeTree":
        """Aggregate a span list (finished spans only)."""
        tree = cls()
        for span in spans:
            if not getattr(span, "finished", False):
                continue
            path = span.path or (span.name,)
            tree.add(path, span.self_time)
        return tree

    @classmethod
    def from_snapshot(
        cls, snapshot: Mapping[str, Any]
    ) -> "SelfTimeTree":
        """Rebuild the tree from ``spantree.*`` histograms in a
        (possibly shard-merged) metrics snapshot."""
        tree = cls()
        for name, data in (snapshot.get("histograms") or {}).items():
            path = _tree_path(name)
            if path is None:
                continue
            count = int(data.get("count", 0))
            if count == 0:
                continue
            tree.add(path, float(data.get("sum", 0.0)), count=count)
        return tree

    @classmethod
    def from_jsonable(cls, payload: Mapping[str, Any]) -> "SelfTimeTree":
        tree = cls()
        for node in payload.get("nodes", []):
            tree.add(
                node["path"],
                float(node.get("self_s", 0.0)),
                count=int(node.get("count", 0)),
            )
        return tree

    def merge(
        self, other: Union["SelfTimeTree", Mapping[str, Any]]
    ) -> "SelfTimeTree":
        if not isinstance(other, SelfTimeTree):
            other = SelfTimeTree.from_jsonable(other)
        for path, (count, parts) in other._nodes.items():
            node = self._nodes.get(path)
            if node is None:
                self._nodes[path] = [count, list(parts)]
            else:
                node[0] += count
                node[1].extend(parts)
        return self

    # ------------------------------------------------------------- queries

    def __len__(self) -> int:
        return len(self._nodes)

    def __bool__(self) -> bool:
        return bool(self._nodes)

    def paths(self) -> List[Path_]:
        return sorted(self._nodes)

    def count(self, path: Iterable[str]) -> int:
        node = self._nodes.get(tuple(path))
        return node[0] if node is not None else 0

    def self_s(self, path: Iterable[str]) -> float:
        node = self._nodes.get(tuple(path))
        return fsum(node[1]) if node is not None else 0.0

    def subtree_s(self, path: Iterable[str]) -> float:
        """Self-time summed over a path and all its descendants —
        i.e. that subtree's wall time, reconstructed additively."""
        prefix = tuple(path)
        depth = len(prefix)
        return fsum(
            fsum(node[1])
            for node_path, node in self._nodes.items()
            if node_path[:depth] == prefix
        )

    @property
    def total_self_s(self) -> float:
        return fsum(fsum(node[1]) for node in self._nodes.values())

    # --------------------------------------------------------------- export

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "format": TREE_FORMAT,
            "nodes": [
                {
                    "path": list(path),
                    "count": self._nodes[path][0],
                    "self_s": fsum(self._nodes[path][1]),
                }
                for path in sorted(self._nodes)
            ],
        }

    def to_collapsed(self) -> str:
        """Collapsed-stack text: ``a;b;c <microseconds>`` per line,
        path-sorted — flamegraph.pl / speedscope importable, and
        byte-identical for byte-identical inputs."""
        lines = [
            f"{';'.join(path)} "
            f"{int(round(fsum(self._nodes[path][1]) * COLLAPSED_UNIT))}"
            for path in sorted(self._nodes)
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def render_text(self, indent: str = "  ") -> str:
        """Human-readable tree, siblings sorted by subtree time."""
        subtree: Dict[Path_, float] = {
            path: self.subtree_s(path) for path in self._nodes
        }
        lines = [
            f"{'path':<52} {'count':>7} {'self (s)':>12} {'subtree (s)':>12}"
        ]
        lines.append("-" * len(lines[0]))

        def emit(prefix: Path_) -> None:
            depth = len(prefix)
            children = sorted(
                {
                    path[: depth + 1]
                    for path in self._nodes
                    if len(path) > depth and path[:depth] == prefix
                },
                key=lambda p: (-subtree.get(p, self.subtree_s(p)), p),
            )
            for child in children:
                node = self._nodes.get(child)
                count = node[0] if node is not None else 0
                self_s = fsum(node[1]) if node is not None else 0.0
                label = indent * depth + child[-1]
                lines.append(
                    f"{label:<52} {count:>7} {self_s:>12.6f} "
                    f"{self.subtree_s(child):>12.6f}"
                )
                emit(child)

        emit(())
        return "\n".join(lines)


# ------------------------------------------------------ snapshot helpers


def top_self_time_spans(
    snapshot: Mapping[str, Any], n: int = 5
) -> List[Dict[str, Any]]:
    """The top-N span types by total self-time, from the
    ``spanself.*`` histograms of a merged snapshot."""
    rows: List[Dict[str, Any]] = []
    for name, data in (snapshot.get("histograms") or {}).items():
        if not (
            name.startswith(SPANSELF_PREFIX) and name.endswith("_s")
        ):
            continue
        count = int(data.get("count", 0))
        if count == 0:
            continue
        rows.append(
            {
                "name": name[len(SPANSELF_PREFIX):-len("_s")],
                "count": count,
                "self_s": float(data.get("sum", 0.0)),
            }
        )
    rows.sort(key=lambda row: (-row["self_s"], row["name"]))
    return rows[:n]


def root_wall_s(snapshot: Mapping[str, Any]) -> float:
    """Total wall time of *root* spans (span types that appear as
    length-1 ``spantree`` paths), from the ``span.*`` wall histograms.
    The honest denominator for self-time attribution: per-type
    self-times must sum to at most this."""
    histograms = snapshot.get("histograms") or {}
    roots = set()
    for name in histograms:
        path = _tree_path(name)
        if path is not None and len(path) == 1:
            roots.add(path[0])
    return fsum(
        float(histograms[f"{SPAN_PREFIX}{root}_s"].get("sum", 0.0))
        for root in sorted(roots)
        if f"{SPAN_PREFIX}{root}_s" in histograms
    )


def diff_trees(
    baseline: SelfTimeTree, current: SelfTimeTree
) -> List[Dict[str, Any]]:
    """Per-path self-time deltas, biggest absolute movement first."""
    paths = sorted(set(baseline.paths()) | set(current.paths()))
    rows: List[Dict[str, Any]] = []
    for path in paths:
        base = baseline.self_s(path)
        cur = current.self_s(path)
        if base == 0.0 and cur == 0.0:
            continue
        rows.append(
            {
                "path": list(path),
                "baseline_self_s": base,
                "current_self_s": cur,
                "delta_s": cur - base,
            }
        )
    rows.sort(key=lambda row: (-abs(row["delta_s"]), row["path"]))
    return rows
