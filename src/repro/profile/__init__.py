"""``repro.profile`` — deterministic profiling & perf attribution.

Built on the obs layer's span instrumentation, this package answers
"where does the time go?" without guessing:

* :class:`SelfTimeTree` — per-span-type-path **self-time** aggregates
  (wall minus children; additive, no parent double-counting), built
  from live span trackers or shard-merged metrics snapshots, merged
  order-independently, exported as collapsed flamegraph stacks
  (``flamegraph.pl`` / speedscope) — all in simulated time, so every
  artifact is byte-identical per seed;
* :mod:`repro.profile.sampler` — the opt-in wall-clock complement: a
  per-trial ``cProfile`` sampler in campaign workers with per-shard
  pstats dumps merged into one ``profile.pstats``;
* :func:`write_profile_artifacts` — the one call the CLI and campaign
  runner share to land ``profile/`` artifacts in a run directory.

Surfaces: ``blap profile run|diff|flame``, ``blap campaign run
--profile``, the "Self-time attribution" section of ``blap report``,
and the top-span annotations on bench history entries.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

from repro.profile.sampler import (
    SHARD_GLOB,
    ShardProfiler,
    merge_pstats,
    top_functions,
)
from repro.profile.selftime import (
    SPAN_PREFIX,
    SPANSELF_PREFIX,
    SPANTREE_PREFIX,
    SelfTimeTree,
    diff_trees,
    root_wall_s,
    top_self_time_spans,
)

#: profile.json schema version
PROFILE_FORMAT = 1

__all__ = [
    "PROFILE_FORMAT",
    "SHARD_GLOB",
    "SPAN_PREFIX",
    "SPANSELF_PREFIX",
    "SPANTREE_PREFIX",
    "SelfTimeTree",
    "ShardProfiler",
    "diff_trees",
    "load_profile",
    "merge_pstats",
    "root_wall_s",
    "top_self_time_spans",
    "write_profile_artifacts",
]


def write_profile_artifacts(
    snapshot: Mapping[str, Any],
    out_dir: Union[str, Path],
    shard_pstats_dir: Optional[Union[str, Path]] = None,
    top: int = 10,
) -> Dict[str, Any]:
    """Write a run's ``profile/`` artifacts; returns the summary dict.

    Deterministic artifacts (pure functions of the merged metrics
    snapshot, i.e. of simulated time):

    * ``spans.collapsed`` — collapsed flamegraph stacks;
    * ``profile.json`` — the serialized self-time tree plus the
      top-N self-time span types and totals.

    Wall-clock artifacts, only when ``shard_pstats_dir`` holds shard
    dumps from a ``--cprofile`` campaign (kept out of ``profile.json``
    so the deterministic surface stays byte-identical per seed):

    * ``profile.pstats`` — shard dumps merged with :func:`merge_pstats`;
    * ``cprofile.json`` — the top functions by own time.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    tree = SelfTimeTree.from_snapshot(snapshot)
    (out_dir / "spans.collapsed").write_text(
        tree.to_collapsed(), encoding="utf-8"
    )
    summary: Dict[str, Any] = {
        "format": PROFILE_FORMAT,
        "top_self": top_self_time_spans(snapshot, top),
        "total_self_s": tree.total_self_s,
        "root_wall_s": root_wall_s(snapshot),
        "tree": tree.to_jsonable(),
    }
    with open(out_dir / "profile.json", "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=1, sort_keys=True)
        handle.write("\n")
    if shard_pstats_dir is not None:
        shards = sorted(Path(shard_pstats_dir).glob(SHARD_GLOB))
        if shards:
            pstats_path = merge_pstats(shards, out_dir / "profile.pstats")
            with open(
                out_dir / "cprofile.json", "w", encoding="utf-8"
            ) as handle:
                json.dump(
                    {"top_functions": top_functions(pstats_path, top)},
                    handle,
                    indent=1,
                    sort_keys=True,
                )
                handle.write("\n")
            for shard in shards:
                shard.unlink()
    return summary


def load_profile(path: Union[str, Path]) -> Dict[str, Any]:
    """Read a ``profile.json`` (or a directory containing one)."""
    path = Path(path)
    if path.is_dir():
        for candidate in (path / "profile.json", path / "profile" / "profile.json"):
            if candidate.exists():
                path = candidate
                break
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "tree" not in payload:
        raise ValueError(f"{path} is not a profile.json artifact")
    return payload
