"""Opt-in ``cProfile`` sampling for campaign workers.

The span self-time trees attribute *simulated* time deterministically;
this module is the wall-clock complement — where does the *CPU* go
inside a trial?  It is strictly opt-in (``--cprofile``) because the
numbers are machine- and load-dependent: cProfile output never feeds
deterministic artifacts, it lands in its own files
(``profile.pstats`` + ``cprofile.json``) beside them.

Shape: each campaign shard accumulates one :class:`cProfile.Profile`
across its trials (enable/disable brackets every ``run_trial`` call,
which is the same as merging per-trial stats but with no temp files),
dumps a per-shard ``.pstats`` on exit, and the parent folds the shard
dumps into one stats file with :func:`merge_pstats`.
"""

from __future__ import annotations

import cProfile
import pstats
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Sequence, Union

#: pstats dumps written by campaign shards match this glob
SHARD_GLOB = "shard-*.pstats"


class ShardProfiler:
    """One profiler accumulated across a shard's trials."""

    def __init__(self) -> None:
        self.profile = cProfile.Profile()
        self.trials = 0

    @contextmanager
    def trial(self) -> Iterator[None]:
        """Profile one trial (stats accumulate across calls)."""
        self.profile.enable()
        try:
            yield
        finally:
            self.profile.disable()
            self.trials += 1

    def dump(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        self.profile.dump_stats(str(path))
        return path


def merge_pstats(
    paths: Sequence[Union[str, Path]], out_path: Union[str, Path]
) -> Path:
    """Fold per-shard pstats dumps into one ``profile.pstats``."""
    if not paths:
        raise ValueError("no pstats files to merge")
    stats = pstats.Stats(str(paths[0]))
    for path in paths[1:]:
        stats.add(str(path))
    out_path = Path(out_path)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    stats.dump_stats(str(out_path))
    return out_path


def top_functions(
    stats_path: Union[str, Path], n: int = 25
) -> List[Dict[str, Any]]:
    """The top-N functions by total (own) time from a pstats file."""
    stats = pstats.Stats(str(stats_path))
    rows: List[Dict[str, Any]] = []
    for (filename, line, func), (
        _cc,
        ncalls,
        tottime,
        cumtime,
        _callers,
    ) in stats.stats.items():  # type: ignore[attr-defined]
        short = filename.rsplit("/", 1)[-1] if "/" in filename else filename
        rows.append(
            {
                "function": f"{func} ({short}:{line})",
                "ncalls": int(ncalls),
                "tottime_s": float(tottime),
                "cumtime_s": float(cumtime),
            }
        )
    rows.sort(key=lambda row: (-row["tottime_s"], row["function"]))
    return rows[:n]
