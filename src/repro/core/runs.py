"""Run-directory conventions and discovery.

Every diagnostic producer in the repo lands its artifacts under one
run directory — ``runs/<run-id>/telemetry.jsonl``, ``run.json``,
exported timeline JSONL files — and every consumer (``blap report``,
``blap store ingest``, the serve view) needs to find them again.  This
module is the single home for those conventions:

* :func:`runs_root` — where run directories live
  (``$BLAP_RUNS_DIR`` or ``runs/``);
* :func:`new_run_id` — collision-free timestamped run ids;
* :func:`is_run_dir` / :func:`discover_run_dirs` — recognise and
  enumerate run directories for backfill ingest.

(Originally private helpers of :mod:`repro.campaign.telemetry`; they
moved here so the store layer can discover runs without importing the
campaign engine.)
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import List, Optional, Union

#: artifact names that mark a directory as a run directory
RUN_MARKERS = ("run.json", "telemetry.jsonl")


def runs_root() -> Path:
    """Where run directories land: ``$BLAP_RUNS_DIR`` or ``runs/``."""
    return Path(os.environ.get("BLAP_RUNS_DIR") or "runs")


def new_run_id() -> str:
    """Timestamped id, pid-suffixed so parallel launches never collide."""
    return time.strftime("%Y%m%d-%H%M%S") + f"-{os.getpid():05d}"


def is_run_dir(path: Union[str, Path]) -> bool:
    """True when ``path`` holds at least one known run artifact."""
    path = Path(path)
    return path.is_dir() and any(
        (path / marker).is_file() for marker in RUN_MARKERS
    )


def discover_run_dirs(root: Optional[Union[str, Path]] = None) -> List[Path]:
    """Every run directory directly under ``root`` (default:
    :func:`runs_root`), sorted by run id.

    Only one level deep by design — run dirs are flat children of the
    runs root — and non-directories or stray files are ignored, so a
    ``runs/`` root polluted with editor droppings still enumerates.
    """
    base = Path(root) if root is not None else runs_root()
    if not base.is_dir():
        return []
    return sorted(
        (child for child in base.iterdir() if is_run_dir(child)),
        key=lambda p: p.name,
    )


def timeline_files(run_dir: Union[str, Path]) -> List[Path]:
    """Exported timeline JSONL artifacts inside one run directory.

    ``blap timeline -o runs/<id>/timeline.jsonl`` (or any
    ``timeline*.jsonl`` spelling) is the archival form; ``blap store
    ingest`` backfills these into the events table.
    """
    run_dir = Path(run_dir)
    if not run_dir.is_dir():
        return []
    return sorted(run_dir.glob("timeline*.jsonl"))
