"""Exception hierarchy for the simulated Bluetooth system."""

from __future__ import annotations


class BluetoothError(Exception):
    """Base class for all errors raised by the reproduction."""


class HciError(BluetoothError):
    """An HCI-layer protocol violation (bad packet, unknown opcode...)."""


class PairingError(BluetoothError):
    """A pairing / SSP procedure failed."""


class SecurityError(BluetoothError):
    """An LMP authentication or encryption procedure failed."""


class TransportError(BluetoothError):
    """An HCI transport framing/IO error."""


class StorageError(BluetoothError):
    """A simulated filesystem / bonding-storage error."""


class AttackError(BluetoothError):
    """An attack procedure could not be carried out."""
