"""Association model selection — spec logic shared by host and controller.

Given the two IO capabilities exchanged at the start of SSP, the
specification (Vol 3, Part C, 5.2.2.6) picks one of the association
models.  Both the controller (which must run the right authentication
stage 1 protocol) and the host (which must decide what to show the
user) need this mapping, so it lives in core.
"""

from __future__ import annotations

from repro.core.types import AssociationModel, IoCapability


def select_association_model(
    initiator_io: IoCapability, responder_io: IoCapability
) -> AssociationModel:
    """Pick the SSP association model from the two IO capabilities.

    The downgrade pivot of the page blocking attack: any
    ``NoInputNoOutput`` participant forces Just Works.
    """
    no_io = IoCapability.NO_INPUT_NO_OUTPUT
    if initiator_io is no_io or responder_io is no_io:
        return AssociationModel.JUST_WORKS
    keyboard = IoCapability.KEYBOARD_ONLY
    if initiator_io is keyboard or responder_io is keyboard:
        return AssociationModel.PASSKEY_ENTRY
    display_only = IoCapability.DISPLAY_ONLY
    if initiator_io is display_only or responder_io is display_only:
        # A display-only device cannot answer Yes/No: Just Works.
        return AssociationModel.JUST_WORKS
    return AssociationModel.NUMERIC_COMPARISON


def passkey_displayer_is_initiator(
    initiator_io: IoCapability, responder_io: IoCapability
) -> bool:
    """For Passkey Entry: which side displays (the other side types).

    A KeyboardOnly device always types; if both can display, the
    initiator displays.
    """
    if initiator_io is IoCapability.KEYBOARD_ONLY:
        return False
    if responder_io is IoCapability.KEYBOARD_ONLY:
        return True
    return True
