"""Fundamental Bluetooth value types.

The byte-level conventions follow the Bluetooth Core Specification:
BD_ADDRs and link keys travel over HCI in little-endian byte order,
while humans read addresses as colon-separated big-endian hex.  The
types here own those conversions so the rest of the code never has to
think about endianness.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Union


_ADDR_RE = re.compile(r"^([0-9a-fA-F]{2}[:\-]){5}[0-9a-fA-F]{2}$")


@dataclass(frozen=True, order=True)
class BdAddr:
    """A 48-bit Bluetooth device address.

    Internally stored as 6 big-endian bytes (NAP:UAP:LAP, the human
    display order).  :meth:`to_hci_bytes` gives the little-endian wire
    order used inside HCI packets.
    """

    value: bytes

    def __post_init__(self) -> None:
        if not isinstance(self.value, bytes) or len(self.value) != 6:
            raise ValueError(f"BD_ADDR must be 6 bytes, got {self.value!r}")

    @classmethod
    def parse(cls, text: str) -> "BdAddr":
        """Parse ``aa:bb:cc:dd:ee:ff`` (or ``-`` separated) notation."""
        if not _ADDR_RE.match(text):
            raise ValueError(f"malformed BD_ADDR string: {text!r}")
        return cls(bytes(int(part, 16) for part in re.split(r"[:\-]", text)))

    @classmethod
    def from_hci_bytes(cls, raw: bytes) -> "BdAddr":
        """Build from the 6 little-endian bytes of an HCI packet."""
        if len(raw) != 6:
            raise ValueError(f"BD_ADDR wire form must be 6 bytes, got {len(raw)}")
        return cls(bytes(reversed(raw)))

    def to_hci_bytes(self) -> bytes:
        """Little-endian wire order used inside HCI packets."""
        return bytes(reversed(self.value))

    @property
    def lap(self) -> int:
        """Lower Address Part — lowest 24 bits, used in page/inquiry trains."""
        return int.from_bytes(self.value[3:6], "big")

    @property
    def uap(self) -> int:
        """Upper Address Part — 8 bits."""
        return self.value[2]

    @property
    def nap(self) -> int:
        """Non-significant Address Part — top 16 bits."""
        return int.from_bytes(self.value[0:2], "big")

    def __str__(self) -> str:
        return ":".join(f"{byte:02x}" for byte in self.value)

    def __repr__(self) -> str:
        return f"BdAddr({str(self)!r})"


@dataclass(frozen=True)
class LinkKey:
    """A 128-bit Bluetooth link key.

    This is *the* secret the paper's first attack extracts: the only
    hidden input to LMP authentication and encryption key generation.
    """

    value: bytes

    def __post_init__(self) -> None:
        if not isinstance(self.value, bytes) or len(self.value) != 16:
            raise ValueError(f"link key must be 16 bytes, got {self.value!r}")

    @classmethod
    def parse(cls, text: str) -> "LinkKey":
        """Parse 32 hex characters (the bt_config.conf text form)."""
        cleaned = text.strip().replace(" ", "")
        if len(cleaned) != 32:
            raise ValueError(f"link key hex must be 32 chars, got {text!r}")
        return cls(bytes.fromhex(cleaned))

    def hex(self) -> str:
        """32 lowercase hex characters (display / config-file form)."""
        return self.value.hex()

    def to_hci_bytes(self) -> bytes:
        """Little-endian wire order used inside HCI packets."""
        return bytes(reversed(self.value))

    @classmethod
    def from_hci_bytes(cls, raw: bytes) -> "LinkKey":
        """Build from the 16 little-endian bytes of an HCI packet."""
        if len(raw) != 16:
            raise ValueError(f"link key wire form must be 16 bytes, got {len(raw)}")
        return cls(bytes(reversed(raw)))

    def __str__(self) -> str:
        return self.hex()

    def __repr__(self) -> str:
        return f"LinkKey({self.hex()!r})"


class LinkKeyType(enum.IntEnum):
    """Link key type reported in HCI_Link_Key_Notification (spec Vol 4 E 7.7.24)."""

    COMBINATION = 0x00
    LOCAL_UNIT = 0x01
    REMOTE_UNIT = 0x02
    DEBUG_COMBINATION = 0x03
    UNAUTHENTICATED_COMBINATION_P192 = 0x04
    AUTHENTICATED_COMBINATION_P192 = 0x05
    CHANGED_COMBINATION = 0x06
    UNAUTHENTICATED_COMBINATION_P256 = 0x07
    AUTHENTICATED_COMBINATION_P256 = 0x08


@dataclass(frozen=True)
class ClassOfDevice:
    """24-bit Class of Device / Service field.

    The paper's attacker rewrites this from smartphone (0x5A020C) to
    hands-free (0x3C0404) when impersonating a car-kit (Fig. 8).
    """

    value: int

    SMARTPHONE = 0x5A020C
    HANDSFREE = 0x3C0404
    HEADSET = 0x240404
    COMPUTER = 0x1C010C

    def __post_init__(self) -> None:
        if not 0 <= self.value <= 0xFFFFFF:
            raise ValueError(f"COD must fit in 24 bits, got {self.value:#x}")

    @property
    def major_device_class(self) -> int:
        """Bits 8..12 — phone, audio/video, computer, ..."""
        return (self.value >> 8) & 0x1F

    @property
    def minor_device_class(self) -> int:
        """Bits 2..7 — subtype within the major class."""
        return (self.value >> 2) & 0x3F

    @property
    def major_service_classes(self) -> int:
        """Bits 13..23 — networking, audio, telephony, ..."""
        return (self.value >> 13) & 0x7FF

    def to_hci_bytes(self) -> bytes:
        """Three little-endian bytes as carried in HCI events."""
        return self.value.to_bytes(3, "little")

    @classmethod
    def from_hci_bytes(cls, raw: bytes) -> "ClassOfDevice":
        if len(raw) != 3:
            raise ValueError("COD wire form must be 3 bytes")
        return cls(int.from_bytes(raw, "little"))

    def describe(self) -> str:
        """Human-oriented major class name."""
        names = {
            0x01: "Computer",
            0x02: "Phone",
            0x03: "LAN/Network Access Point",
            0x04: "Audio/Video",
            0x05: "Peripheral",
            0x06: "Imaging",
        }
        return names.get(self.major_device_class, "Miscellaneous")

    def __str__(self) -> str:
        return f"{self.value:#08x} ({self.describe()})"


class IoCapability(enum.IntEnum):
    """IO capability values from the IO_Capability_Request_Reply command."""

    DISPLAY_ONLY = 0x00
    DISPLAY_YES_NO = 0x01
    KEYBOARD_ONLY = 0x02
    NO_INPUT_NO_OUTPUT = 0x03

    def describe(self) -> str:
        return {
            IoCapability.DISPLAY_ONLY: "DisplayOnly",
            IoCapability.DISPLAY_YES_NO: "DisplayYesNo",
            IoCapability.KEYBOARD_ONLY: "KeyboardOnly",
            IoCapability.NO_INPUT_NO_OUTPUT: "NoInputNoOutput",
        }[self]


class AssociationModel(enum.Enum):
    """The four SSP association models (plus legacy PIN pairing)."""

    NUMERIC_COMPARISON = "numeric_comparison"
    JUST_WORKS = "just_works"
    PASSKEY_ENTRY = "passkey_entry"
    OUT_OF_BAND = "out_of_band"
    LEGACY_PIN = "legacy_pin"

    @property
    def mitm_resistant(self) -> bool:
        """Just Works (and legacy PIN) give no MITM protection — the
        property the page blocking attack's downgrade exploits."""
        return self not in (AssociationModel.JUST_WORKS, AssociationModel.LEGACY_PIN)


class AuthenticationRequirements(enum.IntEnum):
    """Authentication_Requirements byte of IO_Capability exchange."""

    NO_MITM_NO_BONDING = 0x00
    MITM_NO_BONDING = 0x01
    NO_MITM_DEDICATED_BONDING = 0x02
    MITM_DEDICATED_BONDING = 0x03
    NO_MITM_GENERAL_BONDING = 0x04
    MITM_GENERAL_BONDING = 0x05

    @property
    def mitm_required(self) -> bool:
        return bool(self.value & 0x01)

    @property
    def bonding(self) -> bool:
        return self.value >= 0x02


class BluetoothVersion(enum.Enum):
    """Core specification versions relevant to the paper.

    The split that matters for the page blocking attack's downgrade is
    4.2-and-lower versus 5.0-and-higher: only the latter mandates a
    Yes/No confirmation popup on DisplayYesNo devices during Just Works
    (paper Fig. 7).
    """

    V2_1 = "2.1"
    V4_0 = "4.0"
    V4_1 = "4.1"
    V4_2 = "4.2"
    V5_0 = "5.0"
    V5_1 = "5.1"
    V5_2 = "5.2"

    @property
    def numeric(self) -> float:
        return float(self.value)

    @property
    def mandates_justworks_popup(self) -> bool:
        """True for 5.0+: DisplayYesNo devices must show a confirmation."""
        return self.numeric >= 5.0


class LinkType(enum.IntEnum):
    """Link type in HCI_Connection_Request / _Complete events."""

    SCO = 0x00
    ACL = 0x01
    ESCO = 0x02


AddressLike = Union[BdAddr, str]


def as_bdaddr(value: AddressLike) -> BdAddr:
    """Coerce a string or BdAddr to a BdAddr."""
    if isinstance(value, BdAddr):
        return value
    return BdAddr.parse(value)
