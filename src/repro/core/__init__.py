"""Core Bluetooth value types shared by every layer.

These are the vocabulary types of the whole reproduction: Bluetooth
device addresses, link keys, Class-of-Device values, IO capabilities,
association models and protocol versions.
"""

from repro.core.types import (
    AssociationModel,
    AuthenticationRequirements,
    BdAddr,
    BluetoothVersion,
    ClassOfDevice,
    IoCapability,
    LinkKey,
    LinkKeyType,
    LinkType,
)
from repro.core.errors import (
    BluetoothError,
    HciError,
    PairingError,
    SecurityError,
)

__all__ = [
    "AssociationModel",
    "AuthenticationRequirements",
    "BdAddr",
    "BluetoothVersion",
    "ClassOfDevice",
    "IoCapability",
    "LinkKey",
    "LinkKeyType",
    "LinkType",
    "BluetoothError",
    "HciError",
    "PairingError",
    "SecurityError",
]
