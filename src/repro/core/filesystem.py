"""A tiny virtual filesystem with permission bits.

Devices store bonding databases, BD_ADDR files and HCI snoop logs in
simulated files.  Each file carries a ``requires_su`` flag: reading it
without superuser raises :class:`PermissionError`, which is how Table
I's rightmost column ("SU privilege required") falls out of the model
— e.g. Android's ``/data/misc/bluetooth/logs`` is SU-protected but the
*bug report* path copies it out unprivileged, while on Ubuntu both
hcidump and ``/var/lib/bluetooth`` genuinely need root.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.errors import StorageError


@dataclass
class FileNode:
    """One file: content plus an SU-required permission bit."""

    content: bytes
    requires_su: bool = False


@dataclass
class VirtualFilesystem:
    """Path → file map with permission-checked access."""

    files: Dict[str, FileNode] = field(default_factory=dict)

    def write(self, path: str, content: bytes, requires_su: bool = False) -> None:
        """Create or overwrite a file (system-side write, no checks)."""
        existing = self.files.get(path)
        if existing is not None:
            existing.content = content
        else:
            self.files[path] = FileNode(content=content, requires_su=requires_su)

    def read(self, path: str, su: bool = False) -> bytes:
        """Read a file, enforcing the SU bit."""
        node = self.files.get(path)
        if node is None:
            raise FileNotFoundError(path)
        if node.requires_su and not su:
            raise PermissionError(f"{path} requires superuser privilege")
        return node.content

    def user_write(self, path: str, content: bytes, su: bool = False) -> None:
        """Write as a (possibly unprivileged) user."""
        node = self.files.get(path)
        if node is not None and node.requires_su and not su:
            raise PermissionError(f"{path} requires superuser privilege")
        if node is None:
            self.files[path] = FileNode(content=content, requires_su=False)
        else:
            node.content = content

    def exists(self, path: str) -> bool:
        return path in self.files

    def delete(self, path: str, su: bool = False) -> None:
        node = self.files.get(path)
        if node is None:
            raise FileNotFoundError(path)
        if node.requires_su and not su:
            raise PermissionError(f"{path} requires superuser privilege")
        del self.files[path]

    def listdir(self, prefix: str) -> List[str]:
        """All paths under a prefix (no permission check on names)."""
        if not prefix.endswith("/"):
            prefix += "/"
        return sorted(path for path in self.files if path.startswith(prefix))

    def read_text(self, path: str, su: bool = False) -> str:
        return self.read(path, su=su).decode("utf-8")

    def write_text(
        self, path: str, text: str, requires_su: bool = False
    ) -> None:
        self.write(path, text.encode("utf-8"), requires_su=requires_su)


def require(fs: Optional[VirtualFilesystem]) -> VirtualFilesystem:
    """Helper: raise if a filesystem is missing where one is needed."""
    if fs is None:
        raise StorageError("this operation needs a device filesystem")
    return fs
