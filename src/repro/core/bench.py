"""Benchmark number sink: ``BENCH_<name>.json`` emitters plus history.

Perf guards assert *bounds*; the interesting part — the measured
numbers — used to scroll away with the pytest output.  This module
gives every guard one call to persist what it measured:

    record_bench("campaign", "speedup", {"serial_s": 3.1, ...})

merges ``{"speedup": {...}}`` into ``BENCH_campaign.json`` in
``$BLAP_BENCH_DIR`` (default: the current directory).  Files are
ordinary JSON with sorted keys, so CI can archive them as artifacts
and diffs stay readable.  Sections merge shallowly — re-recording a
section replaces it, other sections survive — so independent tests can
contribute to one file without coordinating.

Three guarantees make the numbers trustworthy across PRs:

* **atomic, lock-serialised writes** — the read-modify-write cycle
  runs under an ``flock`` on ``.bench.lock`` and lands via tempfile +
  ``os.replace``, so two campaign workers (or parallel pytest
  processes) recording different sections of the same file can neither
  drop each other's sections nor leave a torn file behind;
* **append-only history** — every record also appends one line to
  ``BENCH_HISTORY.jsonl`` (UTC timestamp, bench, section, values), so
  the perf trajectory survives section overwrites and CI artifact
  rotation;
* **regression comparison** — :func:`compare_bench` diffs two bench
  dicts and flags keys that moved beyond a threshold in the *bad*
  direction, inferred from the key's spelling (``*_s``/``*overhead*``
  are lower-is-better; ``*_per_s``/``*speedup*`` higher-is-better).
  ``blap bench compare`` and the CI perf-regression job sit on top.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Union

try:  # pragma: no cover - always present on the Linux CI fleet
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]

#: history file name (one JSON object per line, append-only)
HISTORY_NAME = "BENCH_HISTORY.jsonl"

_GIT_SHA: Optional[str] = None
_GIT_SHA_RESOLVED = False


def _git_sha() -> Optional[str]:
    """The current commit (memoized): ``$GITHUB_SHA`` in CI, else one
    ``git rev-parse`` — never raises, returns None outside a repo."""
    global _GIT_SHA, _GIT_SHA_RESOLVED
    if _GIT_SHA_RESOLVED:
        return _GIT_SHA
    _GIT_SHA_RESOLVED = True
    sha = os.environ.get("GITHUB_SHA")
    if not sha:
        try:
            sha = subprocess.run(
                ["git", "rev-parse", "HEAD"],
                capture_output=True,
                text=True,
                timeout=5,
                check=True,
            ).stdout.strip()
        except (OSError, subprocess.SubprocessError):
            sha = None
    _GIT_SHA = sha or None
    return _GIT_SHA


def provenance() -> Dict[str, Any]:
    """Who/when/what produced a bench number: commit, python, UTC ts.

    Embedded in every bench file (``_provenance`` key) and history
    entry so ``blap bench history`` can attribute a regression to the
    commit that introduced it.
    """
    info: Dict[str, Any] = {
        "python": platform.python_version(),
        "recorded_ts": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    sha = _git_sha()
    if sha:
        info["git_sha"] = sha
    return info


def bench_dir() -> Path:
    """Where bench files land: ``$BLAP_BENCH_DIR`` or the cwd."""
    return Path(os.environ.get("BLAP_BENCH_DIR") or ".")


def bench_path(name: str) -> Path:
    return bench_dir() / f"BENCH_{name}.json"


def history_path(directory: Optional[Path] = None) -> Path:
    return (directory if directory is not None else bench_dir()) / HISTORY_NAME


@contextmanager
def _bench_lock(directory: Path) -> Iterator[None]:
    """Serialise bench writers within one directory via ``flock``.

    Advisory and per-open-file, so concurrent *processes and threads*
    both serialise (each holder opens its own descriptor).  On
    platforms without ``fcntl`` the lock degrades to a no-op — the
    tempfile + ``os.replace`` path still guarantees unturn files.
    """
    if fcntl is None:  # pragma: no cover - non-POSIX fallback
        yield
        return
    lock_file = directory / ".bench.lock"
    with open(lock_file, "w", encoding="utf-8") as handle:
        fcntl.flock(handle, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(handle, fcntl.LOCK_UN)


def record_bench(
    name: str,
    section: str,
    values: Mapping[str, Any],
    spans: Optional[Sequence[str]] = None,
) -> Path:
    """Merge ``values`` under ``section`` into ``BENCH_<name>.json``.

    Returns the path written.  Unreadable/corrupt existing files are
    replaced rather than crashing the test that measured the numbers.
    Also appends the record to ``BENCH_HISTORY.jsonl`` alongside.

    Every write stamps the file's ``_provenance`` key and the history
    entry with commit / python / timestamp metadata.  ``spans`` is an
    optional list of the top self-time span types behind the measured
    numbers (see :mod:`repro.profile`); it lands in the file's
    ``_spans`` section and the history entry so regression tooling can
    name a culprit, not just a number.
    """
    path = bench_path(name)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = _jsonable(values)
    prov = provenance()
    with _bench_lock(path.parent):
        data: dict = {}
        try:
            with open(path, "r", encoding="utf-8") as handle:
                loaded = json.load(handle)
            if isinstance(loaded, dict):
                data = loaded
        except (OSError, ValueError):
            pass
        data[section] = payload
        data["_provenance"] = prov
        if spans is not None:
            spans_map = data.get("_spans")
            if not isinstance(spans_map, dict):
                spans_map = {}
            spans_map[section] = list(spans)
            data["_spans"] = spans_map
        # tempfile + replace: readers (CI artifact upload, a concurrent
        # compare) never observe a partially written file.
        tmp = path.parent / f".{path.name}.{os.getpid()}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(data, handle, indent=1, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
        entry: Dict[str, Any] = {
            "ts": prov["recorded_ts"],
            "bench": name,
            "section": section,
            "values": payload,
            "python": prov["python"],
        }
        if "git_sha" in prov:
            entry["git_sha"] = prov["git_sha"]
        if spans is not None:
            entry["top_self_spans"] = list(spans)
        run_id = os.environ.get("BLAP_RUN_ID")
        if run_id:
            entry["run"] = run_id
        with open(history_path(path.parent), "a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
    return path


def bench_spans(data: Mapping[str, Any]) -> Dict[str, List[str]]:
    """The ``_spans`` culprit annotations of a loaded bench file:
    section → top self-time span-type names (empty when absent)."""
    spans_map = data.get("_spans")
    if not isinstance(spans_map, Mapping):
        return {}
    return {
        str(section): [str(name) for name in names]
        for section, names in sorted(spans_map.items())
        if isinstance(names, (list, tuple))
    }


def load_bench(path: Union[str, Path]) -> Dict[str, Any]:
    """One bench file as a dict; ``{}`` for missing/corrupt files."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            loaded = json.load(handle)
        return loaded if isinstance(loaded, dict) else {}
    except (OSError, ValueError):
        return {}


def iter_bench_files(directory: Union[str, Path]) -> List[Path]:
    """Every ``BENCH_<name>.json`` under ``directory``, sorted."""
    return sorted(Path(directory).glob("BENCH_*.json"))


def read_history(
    directory: Optional[Path] = None, bench: Optional[str] = None
) -> List[Dict[str, Any]]:
    """Parsed ``BENCH_HISTORY.jsonl`` entries (oldest first).

    Unparseable lines are skipped — the history is telemetry, and a
    torn tail line must not brick ``blap bench history``.
    """
    entries: List[Dict[str, Any]] = []
    try:
        with open(history_path(directory), "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError:
                    continue
                if isinstance(entry, dict) and (
                    bench is None or entry.get("bench") == bench
                ):
                    entries.append(entry)
    except OSError:
        pass
    return entries


# ------------------------------------------------------------- comparison

#: spelling → "is a bigger number worse or better?"  Keys matching
#: neither list (raw counts like ``events`` or ``trials``) are
#: informational and never flagged.
_LOWER_IS_BETTER_SUFFIXES = ("_s", "_seconds", "_ms", "_ns")
_LOWER_IS_BETTER_TOKENS = ("overhead", "latency")
_HIGHER_IS_BETTER_SUFFIXES = ("_per_s", "_per_second", "_hz")
_HIGHER_IS_BETTER_TOKENS = ("speedup", "throughput")


def key_direction(key: str) -> Optional[str]:
    """``"lower"`` / ``"higher"`` is better, or ``None`` (don't gate).

    Higher-is-better spellings win ties: ``events_per_s`` ends in
    ``_s`` only because it ends in ``_per_s``.
    """
    lowered = key.lower()
    if lowered.endswith(_HIGHER_IS_BETTER_SUFFIXES) or any(
        token in lowered for token in _HIGHER_IS_BETTER_TOKENS
    ):
        return "higher"
    if lowered.endswith(_LOWER_IS_BETTER_SUFFIXES) or any(
        token in lowered for token in _LOWER_IS_BETTER_TOKENS
    ):
        return "lower"
    return None


@dataclass(frozen=True)
class BenchRegression:
    """One key that moved beyond the threshold in the bad direction."""

    bench: str
    section: str
    key: str
    baseline: float
    current: float
    change: float  # signed relative change vs baseline
    direction: str  # which way is better for this key

    def __str__(self) -> str:
        return (
            f"{self.bench}/{self.section}/{self.key}: "
            f"{self.baseline:g} -> {self.current:g} "
            f"({self.change:+.0%}, {self.direction} is better)"
        )


def compare_bench(
    current: Mapping[str, Any],
    baseline: Mapping[str, Any],
    threshold: float = 0.25,
    bench: str = "",
) -> List[BenchRegression]:
    """Regressions in ``current`` relative to ``baseline``.

    Only keys present in *both* dicts with non-zero numeric baselines
    are compared — new sections, renamed keys, and counts never flag.
    ``threshold`` is the tolerated relative change (0.25 = 25 %).
    """
    regressions: List[BenchRegression] = []
    for section, values in sorted(current.items()):
        if section.startswith("_"):  # _provenance / _spans metadata
            continue
        base_values = baseline.get(section)
        if not isinstance(values, Mapping) or not isinstance(
            base_values, Mapping
        ):
            continue
        for key, value in sorted(values.items()):
            base = base_values.get(key)
            if (
                isinstance(value, bool)
                or isinstance(base, bool)
                or not isinstance(value, (int, float))
                or not isinstance(base, (int, float))
                or base == 0
            ):
                continue
            direction = key_direction(key)
            if direction is None:
                continue
            change = (value - base) / abs(base)
            worse = change > threshold if direction == "lower" else (
                change < -threshold
            )
            if worse:
                regressions.append(
                    BenchRegression(
                        bench=bench,
                        section=section,
                        key=key,
                        baseline=float(base),
                        current=float(value),
                        change=change,
                        direction=direction,
                    )
                )
    return regressions


def compare_bench_dirs(
    current_dir: Union[str, Path],
    baseline_dir: Union[str, Path],
    threshold: float = 0.25,
) -> List[BenchRegression]:
    """Compare every ``BENCH_*.json`` in ``current_dir`` against its
    same-named baseline; files missing a baseline are skipped (first
    run, new bench)."""
    regressions: List[BenchRegression] = []
    for path in iter_bench_files(current_dir):
        baseline_path = Path(baseline_dir) / path.name
        if not baseline_path.exists():
            continue
        name = path.stem[len("BENCH_"):]
        regressions.extend(
            compare_bench(
                load_bench(path),
                load_bench(baseline_path),
                threshold=threshold,
                bench=name,
            )
        )
    return regressions


def _jsonable(value: Union[Mapping[str, Any], Any]) -> Any:
    """Round-trip through JSON so odd numerics (numpy etc.) fail here,
    at record time, with a clear culprit — not later in CI tooling."""
    return json.loads(json.dumps(value, sort_keys=True, default=float))
