"""Benchmark number sink: ``BENCH_<name>.json`` emitters.

Perf guards assert *bounds*; the interesting part — the measured
numbers — used to scroll away with the pytest output.  This module
gives every guard one call to persist what it measured:

    record_bench("campaign", "speedup", {"serial_s": 3.1, ...})

merges ``{"speedup": {...}}`` into ``BENCH_campaign.json`` in
``$BLAP_BENCH_DIR`` (default: the current directory).  Files are
ordinary JSON with sorted keys, so CI can archive them as artifacts
and diffs stay readable.  Sections merge shallowly — re-recording a
section replaces it, other sections survive — so independent tests can
contribute to one file without coordinating.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Mapping, Union


def bench_dir() -> Path:
    """Where bench files land: ``$BLAP_BENCH_DIR`` or the cwd."""
    return Path(os.environ.get("BLAP_BENCH_DIR") or ".")


def bench_path(name: str) -> Path:
    return bench_dir() / f"BENCH_{name}.json"


def record_bench(
    name: str, section: str, values: Mapping[str, Any]
) -> Path:
    """Merge ``values`` under ``section`` into ``BENCH_<name>.json``.

    Returns the path written.  Unreadable/corrupt existing files are
    replaced rather than crashing the test that measured the numbers.
    """
    path = bench_path(name)
    data: dict = {}
    try:
        with open(path, "r", encoding="utf-8") as handle:
            loaded = json.load(handle)
        if isinstance(loaded, dict):
            data = loaded
    except (OSError, ValueError):
        pass
    data[section] = _jsonable(values)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


def _jsonable(value: Union[Mapping[str, Any], Any]) -> Any:
    """Round-trip through JSON so odd numerics (numpy etc.) fail here,
    at record time, with a clear culprit — not later in CI tooling."""
    return json.loads(json.dumps(value, sort_keys=True, default=float))
