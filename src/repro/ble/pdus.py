"""LE PDU dataclasses: advertising, SMP and LL control payloads.

These ride the shared :class:`repro.phy.medium.AirFrame` with LE frame
kinds (``adv``, ``le-connect``, ``smp``, ``le-control``, ``le-data``),
so the existing sniffers, fault filters and the detection feed see LE
traffic with zero changes.

Only the fields the simulation needs are modelled; encodings follow
Vol 3 Part H §3.5 (SMP) and Vol 6 Part B §2.4.2 (LL control)
structurally, not byte-exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

# AuthReq bits (Vol 3 Part H §3.5.1).
AUTH_BONDING = 0x01
AUTH_MITM = 0x04
AUTH_SC = 0x08
AUTH_CT2 = 0x20

# Key-distribution bits (§3.6.1); the LinkKey bit is the CTKD request.
KEYDIST_ENC_KEY = 0x01
KEYDIST_ID_KEY = 0x02
KEYDIST_SIGN_KEY = 0x04
KEYDIST_LINK_KEY = 0x08

# SMP Pairing Failed reasons (§3.5.5).
REASON_CONFIRM_FAILED = 0x04
REASON_PAIRING_NOT_SUPPORTED = 0x05
REASON_UNSPECIFIED = 0x08
REASON_DHKEY_CHECK_FAILED = 0x0B
REASON_NUMERIC_COMPARISON_FAILED = 0x01


@dataclass(frozen=True)
class AdvPayload:
    """ADV_IND application payload: what a scanner learns."""

    name: str = ""
    connectable: bool = True
    #: advertiser supports BR/EDR too (the Flags AD "simultaneous
    #: LE + BR/EDR" bits) — what makes it a CTKD candidate
    dual_mode: bool = False


@dataclass(frozen=True)
class SmpPairingRequest:
    io_capability: int
    auth_req: int
    initiator_key_dist: int = KEYDIST_ENC_KEY
    responder_key_dist: int = KEYDIST_ENC_KEY


@dataclass(frozen=True)
class SmpPairingResponse:
    io_capability: int
    auth_req: int
    initiator_key_dist: int = KEYDIST_ENC_KEY
    responder_key_dist: int = KEYDIST_ENC_KEY


@dataclass(frozen=True)
class SmpPublicKey:
    """P-256 public key, uncompressed X || Y (64 bytes)."""

    point: bytes


@dataclass(frozen=True)
class SmpPairingConfirm:
    value: bytes  # 16-byte f4 output


@dataclass(frozen=True)
class SmpPairingRandom:
    value: bytes  # 16-byte nonce


@dataclass(frozen=True)
class SmpDhKeyCheck:
    value: bytes  # 16-byte f6 output


@dataclass(frozen=True)
class SmpPairingFailed:
    reason: int


@dataclass(frozen=True)
class LlEncReq:
    """LL_ENC_REQ: central's half of the session key diversifier."""

    skd_m: bytes  # 8 bytes
    iv_m: bytes  # 4 bytes


@dataclass(frozen=True)
class LlEncRsp:
    """LL_ENC_RSP: peripheral's half."""

    skd_s: bytes  # 8 bytes
    iv_s: bytes  # 4 bytes


@dataclass(frozen=True)
class LlStartEnc:
    """LL_START_ENC_REQ/RSP collapsed into one 'encryption is on' marker."""


@dataclass(frozen=True)
class LlRejectInd:
    """LL_REJECT_IND: e.g. encryption requested with no LTK bonded."""

    reason: int = 0x06  # PIN or Key Missing


@dataclass(frozen=True)
class LeDataPdu:
    """An LE data payload; ``ciphertext`` carries CCM output when encrypted."""

    payload: bytes
    encrypted: bool = False


SMP_PDUS: Tuple[type, ...] = (
    SmpPairingRequest,
    SmpPairingResponse,
    SmpPublicKey,
    SmpPairingConfirm,
    SmpPairingRandom,
    SmpDhKeyCheck,
    SmpPairingFailed,
)
