"""Minimal Bluetooth Low Energy vertical slice.

A deliberately small LE stack living next to the BR/EDR reproduction:
advertising/scanning and connection establishment on the shared
:class:`~repro.phy.medium.RadioMedium`, an LE Secure Connections SMP
pairing engine (Just Works + numeric comparison), AES-CCM link
encryption, and the h6/h7 Cross-Transport Key Derivation that makes the
BLURtooth scenarios possible — an extracted BR/EDR link key converts
into a valid LE LTK and vice versa.

See ``docs/ble.md`` for the layer design and the CTKD math.
"""

from repro.ble.pdus import (
    AdvPayload,
    LeDataPdu,
    LlEncReq,
    LlEncRsp,
    LlRejectInd,
    LlStartEnc,
    SmpDhKeyCheck,
    SmpPairingConfirm,
    SmpPairingFailed,
    SmpPairingRandom,
    SmpPairingRequest,
    SmpPairingResponse,
    SmpPublicKey,
)
from repro.ble.smp import JUST_WORKS, NUMERIC_COMPARISON, SmpEngine, addr7
from repro.ble.stack import BleStack, LeConnection

__all__ = [
    "AdvPayload",
    "BleStack",
    "JUST_WORKS",
    "LeConnection",
    "LeDataPdu",
    "LlEncReq",
    "LlEncRsp",
    "LlRejectInd",
    "LlStartEnc",
    "NUMERIC_COMPARISON",
    "SmpDhKeyCheck",
    "SmpEngine",
    "SmpPairingConfirm",
    "SmpPairingFailed",
    "SmpPairingRandom",
    "SmpPairingRequest",
    "SmpPairingResponse",
    "SmpPublicKey",
    "addr7",
]
