"""The LE vertical slice: advertising, connections, SMP, link encryption.

One :class:`BleStack` per LE-capable device sits directly on the shared
:class:`~repro.phy.medium.RadioMedium` (there is no separate LE
controller model — the stack *is* the link layer plus host SMP), and
shares the device's :class:`~repro.host.security.SecurityManager` so LE
bonds land in the same persistent stores the BR/EDR attacks raid.

Determinism: every stack draws from its own named RNG streams
(``ble:<name>`` for link-layer material, ``ble-smp:<name>`` for pairing
keys and nonces), so adding LE devices to a world never perturbs
existing BR/EDR draws — the rule that keeps golden artifacts stable.

Timeout guard: :meth:`connect` mirrors ``Gap.CONNECT_TIMEOUT`` — when a
CONNECT_IND is garbled or blackholed by a fault plan nobody ever
answers, and the scheduled guard fails the operation instead of
hanging the trial.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.core.types import BdAddr, IoCapability, LinkKey
from repro.crypto.aes import aes_ccm_decrypt, aes_ccm_encrypt
from repro.crypto.smp import (
    bredr_link_key_from_le_ltk,
    le_ltk_from_bredr_link_key,
    le_session_key,
)
from repro.ble.pdus import (
    SMP_PDUS,
    AdvPayload,
    LeDataPdu,
    LlEncReq,
    LlEncRsp,
    LlRejectInd,
    LlStartEnc,
)
from repro.ble.smp import JUST_WORKS, NUMERIC_COMPARISON, SmpEngine
from repro.hci.constants import ErrorCode
from repro.host.operations import Operation
from repro.phy.medium import AirFrame, PhysicalLink, RadioMedium
from repro.sim.eventloop import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import Tracer

if TYPE_CHECKING:
    from repro.host.security import SecurityManager


# BR/EDR link key types CTKD produces (P-256 derived material).
_CTKD_KEY_TYPE = {
    JUST_WORKS: 0x07,  # Unauthenticated Combination Key (P-256)
    NUMERIC_COMPARISON: 0x08,  # Authenticated Combination Key (P-256)
}


@dataclass
class LeConnection:
    """One live LE link, from this stack's point of view."""

    link: PhysicalLink
    peer_addr: BdAddr
    role: str  # "central" | "peripheral"
    smp: Optional[SmpEngine] = None
    encrypted: bool = False
    session_key: Optional[bytes] = None
    iv: bytes = b""
    tx_count: int = 0
    rx_count: int = 0
    pending_skd_m: bytes = b""
    pending_iv_m: bytes = b""
    enc_operation: Optional[Operation] = None
    ltk_origin: str = ""
    received: List[Tuple[float, bytes]] = field(default_factory=list)


class _StandaloneBonds:
    """Minimal in-memory bond store for stacks built without a host.

    Quacks like the slice of :class:`SecurityManager` the LE layer
    uses; LE-only devices (no BR/EDR host stack) get one of these.
    """

    def __init__(self) -> None:
        from repro.host.storage import BondingRecord

        self._record_cls = BondingRecord
        self.keys: Dict[BdAddr, Any] = {}

    def bond_for(self, addr: BdAddr):
        return self.keys.get(addr)

    def le_ltk_for(self, addr: BdAddr) -> Optional[LinkKey]:
        record = self.keys.get(addr)
        return record.ltk if record is not None else None

    def set_le_bond(self, addr, ltk, origin, association="", name=""):
        import dataclasses as _dc

        existing = self.keys.get(addr)
        if existing is not None:
            record = _dc.replace(
                existing, ltk=ltk, ltk_origin=origin,
                le_association=association or existing.le_association,
            )
        else:
            record = self._record_cls(
                addr=addr, link_key=None, name=name, ltk=ltk,
                ltk_origin=origin, le_association=association,
            )
        self.keys[addr] = record
        return record

    def add_bond(self, record) -> None:
        self.keys[record.addr] = record


class BleStack:
    """LE link layer + SMP for one device."""

    TRACE_SOURCE = "ble"

    #: mirrors Gap.CONNECT_TIMEOUT for the LE transport: how long a
    #: CONNECT_IND may go unanswered before the operation fails
    LE_CONNECT_TIMEOUT = 10.0

    def __init__(
        self,
        simulator: Simulator,
        medium: RadioMedium,
        rng: RngRegistry,
        name: str,
        addr: BdAddr,
        io_capability: IoCapability = IoCapability.DISPLAY_YES_NO,
        dual_mode: bool = False,
        security: Optional["SecurityManager"] = None,
        tracer: Optional[Tracer] = None,
        metrics=None,
    ) -> None:
        self.simulator = simulator
        self.medium = medium
        self.name = name
        self.io_capability = io_capability
        self.dual_mode = dual_mode
        self.security = security if security is not None else _StandaloneBonds()
        self.tracer = tracer if tracer is not None else Tracer()
        self._rng = rng.stream(f"ble:{name}")
        self._smp_rng = rng.stream(f"ble-smp:{name}")
        if metrics is None:
            from repro.obs.metrics import get_global_registry

            metrics = get_global_registry()
        self._m_pairings = metrics.counter("ble.pairings")
        self._m_pairing_failures = metrics.counter("ble.pairing_failures")
        self._m_sessions = metrics.counter("ble.encrypted_sessions")
        self._m_ctkd = metrics.counter("ble.ctkd_derivations")
        self._le_addr = addr
        self.powered = False
        self.le_scan_enabled = False
        self.le_connectable = False
        self.adv_interval_s = 0.16
        self.adv_payload: Optional[AdvPayload] = None
        self._adv_event = None
        #: pairing policy knobs
        self.accept_pairing = True
        self.numeric_comparison_autoconfirm = True
        #: distribute the LinkKey bit (request CTKD) — defaults to
        #: dual-mode devices, which are the only ones it helps
        self.ctkd_enabled = dual_mode
        self.ct2 = True
        #: (time, advertiser addr, payload) seen while scanning
        self.observed_advertisements: List[Tuple[float, BdAddr, AdvPayload]] = []
        self._conns: Dict[BdAddr, LeConnection] = {}
        self._by_link: Dict[int, LeConnection] = {}
        self._pair_ops: Dict[BdAddr, Operation] = {}

    # -- identity ----------------------------------------------------------

    @property
    def le_addr(self) -> BdAddr:
        return self._le_addr

    def set_le_addr(self, addr: BdAddr) -> None:
        """Change the advertising address (spoofing); reindexes the medium."""
        self._le_addr = addr
        self.medium.notify_le_addr_changed(self)

    # -- power / advertising / scanning ------------------------------------

    def power_on(
        self,
        advertise: bool = True,
        scan: bool = False,
        adv_interval_s: float = 0.16,
    ) -> None:
        self.powered = True
        self.medium.register_le(self)
        self.le_scan_enabled = scan
        self.le_connectable = advertise
        self.adv_interval_s = adv_interval_s
        self.adv_payload = AdvPayload(
            name=self.name, connectable=advertise, dual_mode=self.dual_mode
        )
        if advertise and self._adv_event is None:
            # Desynchronise advertisers with a random initial phase.
            self._adv_event = self.simulator.schedule(
                self._rng.uniform(0.0, adv_interval_s), self._advertise_tick
            )

    def power_off(self) -> None:
        self.powered = False
        if self._adv_event is not None:
            self._adv_event.cancel()
            self._adv_event = None
        for conn in list(self._conns.values()):
            self.medium.drop_link(conn.link, 0x15)
        self.medium.unregister_le(self)

    def _advertise_tick(self) -> None:
        if not self.powered or not self.le_connectable:
            self._adv_event = None
            return
        self.medium.le_advertise(self, self.adv_payload)
        self._adv_event = self.simulator.schedule(
            self.adv_interval_s, self._advertise_tick
        )

    def on_le_advertisement(self, advertiser: BdAddr, payload: AdvPayload) -> None:
        self.observed_advertisements.append(
            (self.simulator.now, advertiser, payload)
        )

    # -- connections -------------------------------------------------------

    def connect(self, addr: BdAddr) -> Operation:
        """Initiate an LE connection; guarded like ``Gap.connect``."""
        operation = Operation("le-connect")
        if addr in self._conns:
            operation.complete(result=self._conns[addr])
            return operation
        guard = self.simulator.schedule(
            self.LE_CONNECT_TIMEOUT, self._connect_guard, addr, operation
        )
        operation.on_done(lambda _op: guard.cancel())
        self.medium.le_connect(
            self, addr, lambda link: self._on_connect_result(addr, link, operation)
        )
        return operation

    def _connect_guard(self, addr: BdAddr, operation: Operation) -> None:
        if operation.done:
            return
        self.tracer.emit(
            self.simulator.now,
            self.TRACE_SOURCE,
            "ble-conn",
            f"{self.name}: LE connect to {addr} timed out",
            peer=str(addr),
        )
        operation.fail(ErrorCode.CONNECTION_TIMEOUT)

    def _on_connect_result(
        self, addr: BdAddr, link: Optional[PhysicalLink], operation: Operation
    ) -> None:
        if operation.done:
            return
        if link is None:
            operation.fail(ErrorCode.CONNECTION_TIMEOUT)
            return
        conn = LeConnection(link=link, peer_addr=addr, role="central")
        self._conns[addr] = conn
        self._by_link[link.link_id] = conn
        self.tracer.emit(
            self.simulator.now,
            self.TRACE_SOURCE,
            "ble-conn",
            f"{self.name}: LE link {link.link_id} up to {addr} (central)",
            peer=str(addr),
            role="central",
        )
        operation.complete(result=conn)

    def on_le_connect(self, link: PhysicalLink, initiator) -> None:
        conn = LeConnection(
            link=link, peer_addr=initiator.le_addr, role="peripheral"
        )
        self._conns[conn.peer_addr] = conn
        self._by_link[link.link_id] = conn
        self.tracer.emit(
            self.simulator.now,
            self.TRACE_SOURCE,
            "ble-conn",
            f"{self.name}: LE link {link.link_id} up from {conn.peer_addr} "
            "(peripheral)",
            peer=str(conn.peer_addr),
            role="peripheral",
        )

    def disconnect(self, addr: BdAddr) -> None:
        conn = self._conns.get(addr)
        if conn is not None:
            self.medium.drop_link(conn.link, 0x13)

    def connection_for(self, addr: BdAddr) -> Optional[LeConnection]:
        return self._conns.get(addr)

    def on_link_dropped(self, link: PhysicalLink, reason: int) -> None:
        conn = self._by_link.pop(link.link_id, None)
        if conn is None:
            return
        self._conns.pop(conn.peer_addr, None)
        operation = self._pair_ops.pop(conn.peer_addr, None)
        if operation is not None and not operation.done:
            operation.fail(reason)
        if conn.enc_operation is not None and not conn.enc_operation.done:
            conn.enc_operation.fail(reason)

    # -- pairing -----------------------------------------------------------

    def pair(self, addr: BdAddr) -> Operation:
        operation = Operation("le-pair")
        conn = self._conns.get(addr)
        if conn is None:
            operation.fail(ErrorCode.UNKNOWN_CONNECTION_IDENTIFIER)
            return operation
        self.tracer.emit(
            self.simulator.now,
            self.TRACE_SOURCE,
            "ble-smp",
            f"{self.name}: SMP pairing with {addr} started",
            peer=str(addr),
        )
        conn.smp = SmpEngine(self, conn, initiator=True, operation=operation)
        self._pair_ops[addr] = operation
        conn.smp.start()
        return operation

    def _confirm_numeric_comparison(self, addr: BdAddr, value: int) -> bool:
        """Policy hook: the user compares the 6-digit values."""
        self.tracer.emit(
            self.simulator.now,
            self.TRACE_SOURCE,
            "ble-smp",
            f"{self.name}: numeric comparison {value:06d} with {addr}",
            peer=str(addr),
            value=value,
        )
        return self.numeric_comparison_autoconfirm

    def _send_smp(self, conn: LeConnection, pdu) -> None:
        self.medium.send_frame(
            conn.link, self, AirFrame(kind="smp", payload=pdu)
        )

    def _pairing_failed(self, conn: LeConnection, engine: SmpEngine, reason: int) -> None:
        self._m_pairing_failures.inc()
        self.tracer.emit(
            self.simulator.now,
            self.TRACE_SOURCE,
            "ble-smp",
            f"{self.name}: SMP pairing with {conn.peer_addr} failed "
            f"(reason={reason:#04x})",
            peer=str(conn.peer_addr),
            reason=reason,
        )
        operation = self._pair_ops.pop(conn.peer_addr, None)
        if operation is not None and not operation.done:
            operation.fail(reason)

    def _pairing_complete(self, conn: LeConnection, engine: SmpEngine) -> None:
        self._m_pairings.inc()
        ltk = LinkKey(engine.ltk)
        self.security.set_le_bond(
            conn.peer_addr,
            ltk,
            origin="smp",
            association=engine.method,
        )
        self.tracer.emit(
            self.simulator.now,
            self.TRACE_SOURCE,
            "ble-smp",
            f"{self.name}: SMP pairing with {conn.peer_addr} complete "
            f"({engine.method})",
            peer=str(conn.peer_addr),
            association=engine.method,
            initiator=engine.initiator,
        )
        if engine.ctkd_negotiated:
            self.derive_bredr_from_le(
                conn.peer_addr, ltk, engine.method, engine.ct2_negotiated
            )
        operation = self._pair_ops.pop(conn.peer_addr, None)
        if operation is not None and not operation.done:
            operation.complete(result=engine.method)

    # -- cross-transport key derivation ------------------------------------

    def adopt_bredr_bond(self, peer_addr: BdAddr, ct2: bool = True) -> LinkKey:
        """BR/EDR→LE CTKD: convert our bonded link key into an LE LTK.

        Models what a dual-mode stack does after BR/EDR SSP with the
        LinkKey distribution bit negotiated (Vol 3 Part H §2.4.2.4).
        """
        record = self.security.bond_for(peer_addr)
        if record is None or record.link_key is None:
            raise ValueError(f"{self.name}: no BR/EDR bond with {peer_addr}")
        ltk = LinkKey(le_ltk_from_bredr_link_key(record.link_key.value, ct2=ct2))
        prior = self.security.le_ltk_for(peer_addr)
        overwrote = prior is not None and prior != ltk
        self.security.set_le_bond(peer_addr, ltk, origin="ctkd")
        self._m_ctkd.inc()
        self.tracer.emit(
            self.simulator.now,
            self.TRACE_SOURCE,
            "ble-ctkd",
            f"{self.name}: derived LE LTK from BR/EDR link key for {peer_addr}",
            peer=str(peer_addr),
            direction="bredr-to-le",
            overwrote=overwrote,
            ct2=ct2,
            source_key_type=record.key_type,
        )
        return ltk

    def derive_bredr_from_le(
        self, peer_addr: BdAddr, ltk: LinkKey, association: str, ct2: bool
    ) -> LinkKey:
        """LE→BR/EDR CTKD: convert a fresh LTK into a BR/EDR link key.

        This is the BLURtooth overwrite: a Just Works LE pairing can
        replace an *authenticated* BR/EDR combination key with
        unauthenticated cross-derived material.
        """
        import dataclasses as _dc

        link_key = LinkKey(bredr_link_key_from_le_ltk(ltk.value, ct2=ct2))
        prior = self.security.bond_for(peer_addr)
        prior_key = prior.link_key if prior is not None else None
        overwrote = prior_key is not None and prior_key != link_key
        prior_key_type = prior.key_type if prior is not None else 0
        key_type = _CTKD_KEY_TYPE.get(association, 0x07)
        record = self.security.bond_for(peer_addr)
        if record is not None:
            self.security.add_bond(
                _dc.replace(record, link_key=link_key, key_type=key_type)
            )
        else:
            from repro.host.storage import BondingRecord

            self.security.add_bond(
                BondingRecord(
                    addr=peer_addr, link_key=link_key, key_type=key_type
                )
            )
        self._m_ctkd.inc()
        self.tracer.emit(
            self.simulator.now,
            self.TRACE_SOURCE,
            "ble-ctkd",
            f"{self.name}: derived BR/EDR link key from LE LTK for {peer_addr}",
            peer=str(peer_addr),
            direction="le-to-bredr",
            association=association,
            overwrote=overwrote,
            prior_key_type=prior_key_type,
            new_key_type=key_type,
            ct2=ct2,
        )
        return link_key

    def install_ltk(self, peer_addr: BdAddr, ltk: LinkKey, origin: str = "ctkd") -> None:
        """Install LE bond material directly (the attacker's pivot path)."""
        self.security.set_le_bond(peer_addr, ltk, origin=origin)

    # -- link encryption ---------------------------------------------------

    def start_encryption(self, addr: BdAddr) -> Operation:
        """Central-initiated LL encryption start using the bonded LTK."""
        operation = Operation("le-encrypt")
        conn = self._conns.get(addr)
        if conn is None:
            operation.fail(ErrorCode.UNKNOWN_CONNECTION_IDENTIFIER)
            return operation
        ltk = self.security.le_ltk_for(addr)
        if ltk is None:
            operation.fail(ErrorCode.PIN_OR_KEY_MISSING)
            return operation
        conn.pending_skd_m = bytes(self._rng.getrandbits(8) for _ in range(8))
        conn.pending_iv_m = bytes(self._rng.getrandbits(8) for _ in range(4))
        conn.enc_operation = operation
        self.medium.send_frame(
            conn.link,
            self,
            AirFrame(
                kind="le-control",
                payload=LlEncReq(skd_m=conn.pending_skd_m, iv_m=conn.pending_iv_m),
            ),
        )
        return operation

    def _session_up(self, conn: LeConnection, ltk: LinkKey, skd_m: bytes, iv_m: bytes, skd_s: bytes, iv_s: bytes) -> None:
        conn.session_key = le_session_key(ltk.value, skd_m, skd_s)
        conn.iv = iv_m + iv_s
        conn.tx_count = 0
        conn.rx_count = 0
        conn.encrypted = True
        record = self.security.bond_for(conn.peer_addr)
        conn.ltk_origin = record.ltk_origin if record is not None else ""
        self._m_sessions.inc()
        self.tracer.emit(
            self.simulator.now,
            self.TRACE_SOURCE,
            "ble-enc",
            f"{self.name}: LE link to {conn.peer_addr} now encrypted",
            peer=str(conn.peer_addr),
            role=conn.role,
            ltk_origin=conn.ltk_origin,
        )

    def _on_ll_control(self, conn: LeConnection, pdu) -> None:
        if isinstance(pdu, LlEncReq):
            ltk = self.security.le_ltk_for(conn.peer_addr)
            if ltk is None:
                self.medium.send_frame(
                    conn.link, self, AirFrame(kind="le-control", payload=LlRejectInd())
                )
                return
            skd_s = bytes(self._rng.getrandbits(8) for _ in range(8))
            iv_s = bytes(self._rng.getrandbits(8) for _ in range(4))
            self.medium.send_frame(
                conn.link,
                self,
                AirFrame(kind="le-control", payload=LlEncRsp(skd_s=skd_s, iv_s=iv_s)),
            )
            self._session_up(conn, ltk, pdu.skd_m, pdu.iv_m, skd_s, iv_s)
        elif isinstance(pdu, LlEncRsp):
            ltk = self.security.le_ltk_for(conn.peer_addr)
            if ltk is None or not conn.pending_skd_m:
                return
            self._session_up(
                conn, ltk, conn.pending_skd_m, conn.pending_iv_m, pdu.skd_s, pdu.iv_s
            )
            self.medium.send_frame(
                conn.link, self, AirFrame(kind="le-control", payload=LlStartEnc())
            )
            operation = conn.enc_operation
            conn.enc_operation = None
            if operation is not None and not operation.done:
                operation.complete()
        elif isinstance(pdu, LlRejectInd):
            operation = conn.enc_operation
            conn.enc_operation = None
            if operation is not None and not operation.done:
                operation.fail(pdu.reason)

    # -- data --------------------------------------------------------------

    def _nonce(self, conn: LeConnection, counter: int, direction_central: bool) -> bytes:
        # 13-byte CCM nonce: 4-byte counter || direction || 8-byte IV.
        return (
            counter.to_bytes(4, "big")
            + (b"\x01" if direction_central else b"\x00")
            + conn.iv
        )

    def send_data(self, addr: BdAddr, payload: bytes) -> bool:
        conn = self._conns.get(addr)
        if conn is None:
            return False
        if conn.encrypted:
            nonce = self._nonce(conn, conn.tx_count, conn.role == "central")
            ciphertext = aes_ccm_encrypt(conn.session_key, nonce, payload)
            conn.tx_count += 1
            frame = AirFrame(
                kind="le-data",
                payload=LeDataPdu(payload=ciphertext, encrypted=True),
                encrypted=True,
            )
        else:
            frame = AirFrame(
                kind="le-data", payload=LeDataPdu(payload=payload, encrypted=False)
            )
        self.medium.send_frame(conn.link, self, frame)
        return True

    def _on_le_data(self, conn: LeConnection, pdu: LeDataPdu) -> None:
        if pdu.encrypted:
            if not conn.encrypted:
                return
            nonce = self._nonce(conn, conn.rx_count, conn.role != "central")
            plaintext = aes_ccm_decrypt(conn.session_key, nonce, pdu.payload)
            conn.rx_count += 1
            if plaintext is None:
                self.tracer.emit(
                    self.simulator.now,
                    self.TRACE_SOURCE,
                    "ble-enc",
                    f"{self.name}: MIC failure on LE link from {conn.peer_addr}",
                    peer=str(conn.peer_addr),
                )
                return
            conn.received.append((self.simulator.now, plaintext))
        else:
            conn.received.append((self.simulator.now, pdu.payload))

    def received_payloads(self, addr: BdAddr) -> List[bytes]:
        conn = self._conns.get(addr)
        if conn is None:
            return []
        return [payload for _, payload in conn.received]

    # -- medium callback ---------------------------------------------------

    def on_air_frame(self, link: PhysicalLink, frame: AirFrame) -> None:
        conn = self._by_link.get(link.link_id)
        if conn is None:
            return
        if frame.kind == "smp":
            if conn.smp is None and isinstance(frame.payload, SMP_PDUS):
                conn.smp = SmpEngine(self, conn, initiator=False)
            if conn.smp is not None:
                conn.smp.handle(frame.payload)
        elif frame.kind == "le-control":
            self._on_ll_control(conn, frame.payload)
        elif frame.kind == "le-data":
            self._on_le_data(conn, frame.payload)
