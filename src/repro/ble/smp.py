"""The Security Manager Protocol engine: LE Secure Connections pairing.

One :class:`SmpEngine` drives one pairing attempt over one LE
connection — the initiator role is created by
:meth:`repro.ble.stack.BleStack.pair`, the responder role lazily on the
first ``SmpPairingRequest`` that arrives.  The flow is the Secure
Connections (P-256 ECDH) flavour of Vol 3 Part H §2.3.5.6:

1. Pairing feature exchange (request/response) selects the association
   model: *numeric comparison* when both sides can display and confirm,
   *Just Works* as soon as either side is NoInputNoOutput.
2. P-256 public key exchange, responder commitment
   ``Cb = f4(PKbx, PKax, Nb, 0)``, nonce exchange, commitment check.
3. DHKey checks ``Ea``/``Eb`` via f5/f6 bind the keys, nonces,
   addresses and IO capabilities; both sides now share the LTK.
4. When both sides negotiated the LinkKey distribution bit, h6/h7
   Cross-Transport Key Derivation converts the fresh LTK into a BR/EDR
   link key — the step BLURtooth abuses, since a Just Works LE pairing
   can overwrite an *authenticated* BR/EDR bond.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.types import BdAddr, IoCapability
from repro.crypto.ecc import P256, EccPoint, ecdh_shared_secret, generate_keypair
from repro.crypto.smp import f4, f5, f6, g2
from repro.ble.pdus import (
    AUTH_BONDING,
    AUTH_CT2,
    AUTH_MITM,
    AUTH_SC,
    KEYDIST_ENC_KEY,
    KEYDIST_LINK_KEY,
    REASON_CONFIRM_FAILED,
    REASON_DHKEY_CHECK_FAILED,
    REASON_NUMERIC_COMPARISON_FAILED,
    REASON_PAIRING_NOT_SUPPORTED,
    SmpDhKeyCheck,
    SmpPairingConfirm,
    SmpPairingFailed,
    SmpPairingRandom,
    SmpPairingRequest,
    SmpPairingResponse,
    SmpPublicKey,
)

if TYPE_CHECKING:
    from repro.host.operations import Operation

JUST_WORKS = "just_works"
NUMERIC_COMPARISON = "numeric_comparison"


def addr7(addr: BdAddr, addr_type: int = 0) -> bytes:
    """The 7-byte address form f5/f6 consume: type || BD_ADDR (MSB first)."""
    return bytes([addr_type]) + addr.value


def _nonce(rng) -> bytes:
    return bytes(rng.getrandbits(8) for _ in range(16))


class SmpEngine:
    """State machine for one LE SC pairing attempt."""

    def __init__(self, stack, conn, initiator: bool, operation: Optional["Operation"] = None) -> None:
        self.stack = stack
        self.conn = conn
        self.initiator = initiator
        self.operation = operation
        self.request: Optional[SmpPairingRequest] = None
        self.response: Optional[SmpPairingResponse] = None
        self.keypair = None
        self.remote_point: Optional[EccPoint] = None
        self.local_nonce: Optional[bytes] = None
        self.remote_nonce: Optional[bytes] = None
        self.remote_confirm: Optional[bytes] = None
        self.method = JUST_WORKS
        self.mac_key: Optional[bytes] = None
        self.ltk: Optional[bytes] = None
        self.failed_reason: Optional[int] = None
        self.complete = False

    # -- helpers -----------------------------------------------------------

    def _auth_req(self) -> int:
        auth = AUTH_BONDING | AUTH_SC
        if self.stack.ct2:
            auth |= AUTH_CT2
        if int(self.stack.io_capability) != int(IoCapability.NO_INPUT_NO_OUTPUT):
            auth |= AUTH_MITM
        return auth

    def _key_dist(self) -> int:
        dist = KEYDIST_ENC_KEY
        if self.stack.ctkd_enabled:
            dist |= KEYDIST_LINK_KEY
        return dist

    def _select_method(self) -> None:
        nino = int(IoCapability.NO_INPUT_NO_OUTPUT)
        local = int(self.stack.io_capability)
        remote = int(
            self.response.io_capability if self.initiator else self.request.io_capability
        )
        if local == nino or remote == nino:
            self.method = JUST_WORKS
        else:
            self.method = NUMERIC_COMPARISON

    def _iocap_bytes(self, auth_req: int, io_capability: int) -> bytes:
        return bytes([auth_req, 0x00, io_capability])

    def _send(self, pdu) -> None:
        self.stack._send_smp(self.conn, pdu)

    def _fail(self, reason: int, notify_peer: bool = True) -> None:
        self.failed_reason = reason
        if notify_peer:
            self._send(SmpPairingFailed(reason=reason))
        self.stack._pairing_failed(self.conn, self, reason)

    # -- initiator entry ---------------------------------------------------

    def start(self) -> None:
        self.request = SmpPairingRequest(
            io_capability=int(self.stack.io_capability),
            auth_req=self._auth_req(),
            initiator_key_dist=self._key_dist(),
            responder_key_dist=self._key_dist(),
        )
        self._send(self.request)

    # -- dispatch ----------------------------------------------------------

    def handle(self, pdu) -> None:
        if self.complete or self.failed_reason is not None:
            return
        if isinstance(pdu, SmpPairingFailed):
            self.failed_reason = pdu.reason
            self.stack._pairing_failed(self.conn, self, pdu.reason)
            return
        handler = {
            SmpPairingRequest: self._on_request,
            SmpPairingResponse: self._on_response,
            SmpPublicKey: self._on_public_key,
            SmpPairingConfirm: self._on_confirm,
            SmpPairingRandom: self._on_random,
            SmpDhKeyCheck: self._on_dhkey_check,
        }.get(type(pdu))
        if handler is not None:
            handler(pdu)

    # -- responder side ----------------------------------------------------

    def _on_request(self, pdu: SmpPairingRequest) -> None:
        if self.initiator:
            return
        if not self.stack.accept_pairing:
            self._fail(REASON_PAIRING_NOT_SUPPORTED)
            return
        self.request = pdu
        self.response = SmpPairingResponse(
            io_capability=int(self.stack.io_capability),
            auth_req=self._auth_req(),
            initiator_key_dist=pdu.initiator_key_dist & self._key_dist(),
            responder_key_dist=pdu.responder_key_dist & self._key_dist(),
        )
        self._select_method()
        self._send(self.response)

    def _on_response(self, pdu: SmpPairingResponse) -> None:
        if not self.initiator:
            return
        self.response = pdu
        self._select_method()
        self.keypair = generate_keypair(P256, self.stack._smp_rng)
        self._send(SmpPublicKey(point=self.keypair.public.to_bytes()))

    def _on_public_key(self, pdu: SmpPublicKey) -> None:
        self.remote_point = EccPoint.from_bytes(P256, pdu.point)
        if self.initiator:
            return
        # Responder: reply with our key, then commit to our nonce.
        self.keypair = generate_keypair(P256, self.stack._smp_rng)
        self._send(SmpPublicKey(point=self.keypair.public.to_bytes()))
        self.local_nonce = _nonce(self.stack._smp_rng)
        confirm = f4(
            self.keypair.public.x_bytes(),
            self.remote_point.x_bytes(),
            self.local_nonce,
            0x00,
        )
        self._send(SmpPairingConfirm(value=confirm))

    def _on_confirm(self, pdu: SmpPairingConfirm) -> None:
        if not self.initiator:
            return
        self.remote_confirm = pdu.value
        self.local_nonce = _nonce(self.stack._smp_rng)
        self._send(SmpPairingRandom(value=self.local_nonce))

    def _on_random(self, pdu: SmpPairingRandom) -> None:
        self.remote_nonce = pdu.value
        if self.initiator:
            # Authentication stage 1 check: the responder committed to
            # this nonce before seeing ours.
            expected = f4(
                self.remote_point.x_bytes(),
                self.keypair.public.x_bytes(),
                self.remote_nonce,
                0x00,
            )
            if expected != self.remote_confirm:
                self._fail(REASON_CONFIRM_FAILED)
                return
            if not self._user_confirms():
                self._fail(REASON_NUMERIC_COMPARISON_FAILED)
                return
            self._derive_keys()
            ea = f6(
                self.mac_key,
                self.local_nonce,
                self.remote_nonce,
                b"\x00" * 16,
                self._iocap_bytes(self.request.auth_req, self.request.io_capability),
                addr7(self.stack.le_addr),
                addr7(self.conn.peer_addr),
            )
            self._send(SmpDhKeyCheck(value=ea))
        else:
            # Responder: the initiator's nonce arrived; answer with ours.
            self._send(SmpPairingRandom(value=self.local_nonce))

    def _on_dhkey_check(self, pdu: SmpDhKeyCheck) -> None:
        if self.initiator:
            # Eb from the responder.
            eb = f6(
                self.mac_key,
                self.remote_nonce,
                self.local_nonce,
                b"\x00" * 16,
                self._iocap_bytes(
                    self.response.auth_req, self.response.io_capability
                ),
                addr7(self.conn.peer_addr),
                addr7(self.stack.le_addr),
            )
            if eb != pdu.value:
                self._fail(REASON_DHKEY_CHECK_FAILED)
                return
            self._finish()
        else:
            if not self._user_confirms():
                self._fail(REASON_NUMERIC_COMPARISON_FAILED)
                return
            self._derive_keys()
            # Ea from the initiator; initiator nonce is remote here.
            ea = f6(
                self.mac_key,
                self.remote_nonce,
                self.local_nonce,
                b"\x00" * 16,
                self._iocap_bytes(self.request.auth_req, self.request.io_capability),
                addr7(self.conn.peer_addr),
                addr7(self.stack.le_addr),
            )
            if ea != pdu.value:
                self._fail(REASON_DHKEY_CHECK_FAILED)
                return
            eb = f6(
                self.mac_key,
                self.local_nonce,
                self.remote_nonce,
                b"\x00" * 16,
                self._iocap_bytes(
                    self.response.auth_req, self.response.io_capability
                ),
                addr7(self.stack.le_addr),
                addr7(self.conn.peer_addr),
            )
            self._send(SmpDhKeyCheck(value=eb))
            self._finish()

    # -- stage 2 helpers ---------------------------------------------------

    def _user_confirms(self) -> bool:
        if self.method != NUMERIC_COMPARISON:
            return True
        if self.initiator:
            value = g2(
                self.keypair.public.x_bytes(),
                self.remote_point.x_bytes(),
                self.local_nonce,
                self.remote_nonce,
            )
        else:
            value = g2(
                self.remote_point.x_bytes(),
                self.keypair.public.x_bytes(),
                self.remote_nonce,
                self.local_nonce,
            )
        return self.stack._confirm_numeric_comparison(self.conn.peer_addr, value)

    def _derive_keys(self) -> None:
        dhkey = ecdh_shared_secret(self.keypair.private, self.remote_point)
        if self.initiator:
            n1, n2 = self.local_nonce, self.remote_nonce
            a1, a2 = addr7(self.stack.le_addr), addr7(self.conn.peer_addr)
        else:
            n1, n2 = self.remote_nonce, self.local_nonce
            a1, a2 = addr7(self.conn.peer_addr), addr7(self.stack.le_addr)
        self.mac_key, self.ltk = f5(dhkey, n1, n2, a1, a2)

    @property
    def ctkd_negotiated(self) -> bool:
        """Both sides set the LinkKey distribution bit → CTKD runs."""
        if self.request is None or self.response is None:
            return False
        return bool(
            self.request.initiator_key_dist
            & self.request.responder_key_dist
            & self.response.initiator_key_dist
            & self.response.responder_key_dist
            & KEYDIST_LINK_KEY
        )

    @property
    def ct2_negotiated(self) -> bool:
        if self.request is None or self.response is None:
            return False
        return bool(self.request.auth_req & self.response.auth_req & AUTH_CT2)

    def _finish(self) -> None:
        self.complete = True
        self.stack._pairing_complete(self.conn, self)
