"""Cross-device timeline: merge trace streams + spans, export them.

The correlator turns any number of per-device :class:`Tracer` streams
and a :class:`SpanTracker` into one globally-ordered event sequence.
Ordering is ``(time, seq)`` — exactly the event loop's tie-breaking
rule — so the merge is stable and deterministic per seed.

Exporters:

* :func:`write_jsonl` / :func:`export_jsonl` — one JSON object per
  line, streamed to a file object (O(1) memory) or returned as one
  string.  Each line carries both the simulated timestamp and a
  btsnoop-aligned microsecond timestamp (same odd 0-AD epoch as
  :mod:`repro.snoop.btsnoop`), so an exported timeline lines up
  row-for-row with a ``repro.snoop`` capture of the same run.
  :func:`events_from_jsonl` parses the artifact back for store
  ingest.
* :func:`export_chrome_trace` — the Chrome trace-event JSON format,
  loadable in Perfetto (https://ui.perfetto.dev) or about:tracing.
  Spans become complete (``"X"``) events with durations; trace records
  become instant (``"i"``) events; each source gets a pid plus a
  process-name metadata record.
* :func:`render_timeline_table` — plain text for terminals.
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, TextIO

from repro.obs.spans import Span, SpanTracker
from repro.sim.trace import Tracer
from repro.snoop.btsnoop import EPOCH_DELTA_US


@dataclass(frozen=True)
class TimelineEvent:
    """One merged timeline entry (a trace record or a finished span)."""

    time: float
    seq: int
    source: str
    category: str
    message: str
    detail: Dict[str, Any] = field(default_factory=dict)
    #: set for span events; None for instantaneous trace records
    duration: Optional[float] = None

    @property
    def kind(self) -> str:
        return "span" if self.duration is not None else "trace"


class Timeline:
    """Correlates registered streams into one ordered event sequence."""

    def __init__(self) -> None:
        self._tracers: List[Tracer] = []
        self._span_trackers: List[SpanTracker] = []
        self._extra: List[TimelineEvent] = []

    # ---------------------------------------------------------- registration

    def add_tracer(self, tracer: Tracer) -> "Timeline":
        if tracer not in self._tracers:
            self._tracers.append(tracer)
        return self

    def add_span_tracker(self, tracker: SpanTracker) -> "Timeline":
        if tracker not in self._span_trackers:
            self._span_trackers.append(tracker)
        return self

    def add_event(self, event: TimelineEvent) -> "Timeline":
        self._extra.append(event)
        return self

    # --------------------------------------------------------------- merging

    def events(
        self,
        sources: Optional[Iterable[str]] = None,
        categories: Optional[Iterable[str]] = None,
    ) -> List[TimelineEvent]:
        """The merged, globally-ordered sequence (optionally filtered)."""
        merged: List[TimelineEvent] = list(self._extra)
        for tracer in self._tracers:
            for record in tracer.records:
                merged.append(
                    TimelineEvent(
                        time=record.time,
                        seq=record.seq,
                        source=record.source,
                        category=record.category,
                        message=record.message,
                        detail=record.detail,
                    )
                )
        for tracker in self._span_trackers:
            for span in tracker.finished_spans():
                merged.append(_span_event(span))
        if sources is not None:
            wanted_sources = set(sources)
            merged = [e for e in merged if e.source in wanted_sources]
        if categories is not None:
            wanted_categories = set(categories)
            merged = [e for e in merged if e.category in wanted_categories]
        merged.sort(key=lambda event: (event.time, event.seq))
        return merged


def _span_event(span: Span) -> TimelineEvent:
    return TimelineEvent(
        time=span.start,
        seq=span.seq,
        source=span.source or "span",
        category="span",
        message=span.name,
        detail=dict(span.attrs),
        duration=span.duration,
    )


# ------------------------------------------------------------------ exporters


def btsnoop_timestamp_us(time_s: float) -> int:
    """Simulated seconds → btsnoop's microseconds-since-0-AD clock."""
    return int(time_s * 1_000_000) + EPOCH_DELTA_US


def detail_repr(detail: Dict[str, Any]) -> Dict[str, str]:
    """Detail values flattened to their ``repr`` — the JSONL and store
    spelling, so arbitrary simulation objects stay serialisable."""
    return {k: repr(v) for k, v in detail.items()}


def event_to_jsonable(event: TimelineEvent) -> Dict[str, Any]:
    """One event as the compact JSONL payload dict."""
    payload: Dict[str, Any] = {
        "t": round(event.time, 9),
        "btsnoop_us": btsnoop_timestamp_us(event.time),
        "seq": event.seq,
        "source": event.source,
        "category": event.category,
        "message": event.message,
    }
    if event.duration is not None:
        payload["duration"] = round(event.duration, 9)
    if event.detail:
        payload["detail"] = detail_repr(event.detail)
    return payload


def write_jsonl(events: Iterable[TimelineEvent], fp: TextIO) -> int:
    """Stream events to ``fp`` as JSONL, one line each; returns the
    event count.  O(1) memory — nothing is accumulated — so arbitrarily
    long timelines export without building a giant string first
    (``blap timeline --format jsonl -o``)."""
    count = 0
    for event in events:
        fp.write(json.dumps(event_to_jsonable(event), sort_keys=True))
        fp.write("\n")
        count += 1
    return count


def export_jsonl(events: Iterable[TimelineEvent]) -> str:
    """One compact JSON object per event, in timeline order.

    Convenience string form of :func:`write_jsonl` (no trailing
    newline); prefer the streaming writer for large exports.
    """
    buffer = io.StringIO()
    write_jsonl(events, buffer)
    return buffer.getvalue()[:-1] if buffer.tell() else ""


def events_from_jsonl(lines: Iterable[str]) -> Iterator[Dict[str, Any]]:
    """Parse a JSONL timeline artifact back into event dicts.

    The inverse of :func:`write_jsonl` for ingest purposes: yields the
    payload dicts with ``time``/``kind`` normalised (``detail`` values
    stay the exported ``repr`` strings).  Blank and torn lines are
    skipped — an artifact mid-append must not brick a backfill.
    """
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except ValueError:
            continue
        if not isinstance(payload, dict) or "t" not in payload:
            continue
        payload["time"] = payload.pop("t")
        payload["kind"] = (
            "span" if payload.get("duration") is not None else "trace"
        )
        yield payload


def export_chrome_trace(events: Iterable[TimelineEvent]) -> Dict[str, Any]:
    """Chrome trace-event JSON (the ``{"traceEvents": [...]}`` form)."""
    trace_events: List[Dict[str, Any]] = []
    pids: Dict[str, int] = {}

    def pid_for(source: str) -> int:
        pid = pids.get(source)
        if pid is None:
            pid = pids[source] = len(pids) + 1
            trace_events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": source},
                }
            )
        return pid

    for event in events:
        pid = pid_for(event.source)
        ts_us = event.time * 1_000_000
        args: Dict[str, Any] = detail_repr(event.detail)
        args["seq"] = event.seq
        if event.duration is not None:
            trace_events.append(
                {
                    "name": event.message,
                    "cat": event.category,
                    "ph": "X",
                    "ts": ts_us,
                    "dur": event.duration * 1_000_000,
                    "pid": pid,
                    "tid": 0,
                    "args": args,
                }
            )
        else:
            trace_events.append(
                {
                    "name": event.message,
                    "cat": event.category,
                    "ph": "i",
                    "ts": ts_us,
                    "s": "p",  # process-scoped instant
                    "pid": pid,
                    "tid": 0,
                    "args": args,
                }
            )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def render_timeline_table(
    events: Iterable[TimelineEvent], max_rows: Optional[int] = None
) -> str:
    """Plain-text merged timeline for terminals."""
    lines = [
        f"{'time':>12} {'source':<10} {'category':<12} message",
    ]
    lines.append("-" * 72)
    for index, event in enumerate(events):
        if max_rows is not None and index >= max_rows:
            lines.append(f"... ({index} rows shown)")
            break
        suffix = ""
        if event.duration is not None:
            suffix = f"  [{event.duration * 1000:.3f} ms]"
        lines.append(
            f"{event.time:>12.6f} {event.source:<10} "
            f"{event.category:<12} {event.message}{suffix}"
        )
    return "\n".join(lines)
