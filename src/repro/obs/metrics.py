"""A process-wide metrics registry: counters, gauges, histograms.

The design borrows the Prometheus client-library shape (named
instruments handed out by a registry, fixed-bucket histograms) but is
deliberately minimal: no labels on the hot path, no locks — the
simulator is single-threaded — and instruments are plain attribute
updates, so instrumentation can stay enabled in benchmarks.

Hot paths should cache the instrument object once
(``self._m_frames = registry.counter("phy.frames_sent")``) instead of
looking it up per call.  A disabled registry hands out shared null
instruments whose methods are no-ops, so gated code pays one method
call at most; callers that poll ``registry.enabled`` themselves can
skip even that.

Snapshots are deterministic: instruments are reported in sorted name
order, so two seeded runs that perform the same work produce
byte-identical counter snapshots.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Union

Number = Union[int, float]

#: default histogram upper bounds (seconds) — spans page-response
#: latencies (ms..s) up to supervision timeouts.
DEFAULT_BUCKETS: Sequence[float] = (
    0.0001,
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(f"{self.name}: counters cannot decrease")
        self.value += amount


class Gauge:
    """A value that can go up and down (queue depth, live links)."""

    __slots__ = ("name", "value", "max_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0
        self.max_value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value
        if value > self.max_value:
            self.max_value = value

    def inc(self, amount: Number = 1) -> None:
        self.set(self.value + amount)

    def dec(self, amount: Number = 1) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram (cumulative-style buckets on export)."""

    __slots__ = ("name", "bounds", "bucket_counts", "count", "sum")

    def __init__(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        if list(buckets) != sorted(buckets):
            raise ValueError(f"{name}: histogram buckets must be sorted")
        self.name = name
        self.bounds: List[float] = list(buckets)
        # one slot per bound plus the +Inf overflow slot
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum: float = 0.0

    def observe(self, value: Number) -> None:
        self.count += 1
        self.sum += value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    def quantile(self, q: float) -> float:
        """Approximate quantile: upper bound of the covering bucket."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            seen += bucket_count
            if seen >= target:
                if index < len(self.bounds):
                    return self.bounds[index]
                return float("inf")
        return float("inf")


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: Number = 1) -> None:  # noqa: ARG002
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: Number) -> None:  # noqa: ARG002
        pass

    def inc(self, amount: Number = 1) -> None:  # noqa: ARG002
        pass

    def dec(self, amount: Number = 1) -> None:  # noqa: ARG002
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: Number) -> None:  # noqa: ARG002
        pass


class MetricsRegistry:
    """Hands out named instruments and renders deterministic snapshots."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._null_counter = _NullCounter("<disabled>")
        self._null_gauge = _NullGauge("<disabled>")
        self._null_histogram = _NullHistogram("<disabled>")

    # ------------------------------------------------------------ instruments

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return self._null_counter
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return self._null_gauge
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        if not self.enabled:
            return self._null_histogram
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, buckets)
        return instrument

    # -------------------------------------------------------------- reporting

    def counter_value(self, name: str) -> Number:
        instrument = self._counters.get(name)
        return instrument.value if instrument is not None else 0

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """All instrument state, sorted by name (deterministic)."""
        histograms = {}
        for name in sorted(self._histograms):
            hist = self._histograms[name]
            buckets = {
                f"{bound:g}": count
                for bound, count in zip(hist.bounds, hist.bucket_counts)
            }
            buckets["+Inf"] = hist.bucket_counts[-1]
            histograms[name] = {
                "count": hist.count,
                "sum": hist.sum,
                "buckets": buckets,
            }
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value for name in sorted(self._gauges)
            },
            "histograms": histograms,
        }

    def render_table(self) -> str:
        """Plain-text snapshot for CLI / example output."""
        snap = self.snapshot()
        lines = [f"{'metric':<36} {'value':>14}"]
        lines.append("-" * len(lines[0]))
        for name, value in snap["counters"].items():
            lines.append(f"{name:<36} {value:>14}")
        for name, value in snap["gauges"].items():
            lines.append(f"{name + ' (gauge)':<36} {value:>14g}")
        for name, data in snap["histograms"].items():
            lines.append(
                f"{name + ' (hist)':<36} {data['count']:>8} obs"
                f"  sum={data['sum']:.6g}"
            )
        return "\n".join(lines)

    def reset(self) -> None:
        """Drop every instrument (tests; between benchmark sections)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


#: the process-wide default registry — aggregates across all the
#: short-lived worlds a trial loop creates.
_GLOBAL_REGISTRY = MetricsRegistry()


def get_global_registry() -> MetricsRegistry:
    return _GLOBAL_REGISTRY
