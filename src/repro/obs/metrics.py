"""A process-wide metrics registry: counters, gauges, histograms.

The design borrows the Prometheus client-library shape (named
instruments handed out by a registry, fixed-bucket histograms) but is
deliberately minimal: no labels on the hot path, no locks — the
simulator is single-threaded — and instruments are plain attribute
updates, so instrumentation can stay enabled in benchmarks.

Hot paths should cache the instrument object once
(``self._m_frames = registry.counter("phy.frames_sent")``) instead of
looking it up per call.  A disabled registry hands out shared null
instruments whose methods are no-ops, so gated code pays one method
call at most; callers that poll ``registry.enabled`` themselves can
skip even that.

Snapshots are deterministic: instruments are reported in sorted name
order, so two seeded runs that perform the same work produce
byte-identical counter snapshots.
"""

from __future__ import annotations

from bisect import bisect_left
from math import fsum
from typing import Dict, List, Sequence, Union

from repro.obs.digest import QuantileDigest

Number = Union[int, float]

#: default histogram upper bounds (seconds) — spans page-response
#: latencies (ms..s) up to supervision timeouts.
DEFAULT_BUCKETS: Sequence[float] = (
    0.0001,
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(f"{self.name}: counters cannot decrease")
        self.value += amount


class Gauge:
    """A value that can go up and down (queue depth, live links)."""

    __slots__ = ("name", "value", "max_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0
        self.max_value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value
        if value > self.max_value:
            self.max_value = value

    def inc(self, amount: Number = 1) -> None:
        self.set(self.value + amount)

    def dec(self, amount: Number = 1) -> None:
        self.value -= amount


#: flush the pending-observation buffer at this size (512 KiB of
#: floats) — bounds memory on multi-million-event runs while keeping
#: aggregation off the hot path for any realistic single trial.
PENDING_CAP = 65_536


class Histogram:
    """Fixed-bucket histogram, backed by a mergeable quantile digest.

    ``observe`` is a recorder: the value lands in a pending buffer (one
    C-speed list append) and *aggregation is deferred* — display-bucket
    counts, the quantile digest, and the running sum fold in on the
    first read (:meth:`flush` runs under ``count``/``sum``/
    ``quantile``/snapshot/merge) or when the buffer reaches
    ``PENDING_CAP``.  The event loop observes a wall-time sample per
    simulated event, so the fold must not sit on that path; a trial
    pays it once, at the snapshot boundary.

    The coarse bounds survive for rendering and for snapshot
    compatibility, but quantiles come from the digest (~1.6 % relative
    error instead of whichever hand-picked bound happens to cover the
    rank).  ``sum`` is kept as a list of partial sums folded with
    ``math.fsum`` — an *exact* sum is permutation-invariant, so merging
    worker shards in any order yields byte-identical snapshots.
    """

    __slots__ = (
        "name",
        "bounds",
        "bucket_counts",
        "digest",
        "_count",
        "_sum_parts",
        "_pending",
    )

    def __init__(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        if list(buckets) != sorted(buckets):
            raise ValueError(f"{name}: histogram buckets must be sorted")
        self.name = name
        self.bounds: List[float] = list(buckets)
        # one slot per bound plus the +Inf overflow slot
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.digest = QuantileDigest()
        self._count = 0
        # slot 0 accumulates local observations; merge() appends one
        # part per merged shard.  fsum() folds them exactly.
        self._sum_parts: List[float] = [0.0]
        self._pending: List[float] = []

    @property
    def count(self) -> int:
        return self._count + len(self._pending)

    @property
    def sum(self) -> float:
        self.flush()
        return fsum(self._sum_parts)

    def observe(self, value: Number) -> None:
        pending = self._pending
        pending.append(value)
        if len(pending) >= PENDING_CAP:
            self.flush()

    def flush(self) -> None:
        """Fold buffered observations into buckets, digest, and sum.

        Folding is a pure function of the observation sequence (flush
        points included — they land at fixed buffer sizes), so two
        same-seed trials still aggregate identically.
        """
        pending = self._pending
        if not pending:
            return
        self._count += len(pending)
        self._sum_parts[0] += fsum(pending)
        bucket_counts = self.bucket_counts
        bounds = self.bounds
        for value in pending:
            bucket_counts[bisect_left(bounds, value)] += 1
        self.digest.update(pending)
        pending.clear()

    def quantile(self, q: float) -> float:
        """Digest-backed quantile (~0.5/resolution relative error);
        exact min/max at q=0 and q=1."""
        self.flush()
        return self.digest.quantile(q)


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: Number = 1) -> None:  # noqa: ARG002
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: Number) -> None:  # noqa: ARG002
        pass

    def inc(self, amount: Number = 1) -> None:  # noqa: ARG002
        pass

    def dec(self, amount: Number = 1) -> None:  # noqa: ARG002
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: Number) -> None:  # noqa: ARG002
        pass


class MetricsRegistry:
    """Hands out named instruments and renders deterministic snapshots."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._null_counter = _NullCounter("<disabled>")
        self._null_gauge = _NullGauge("<disabled>")
        self._null_histogram = _NullHistogram("<disabled>")

    # ------------------------------------------------------------ instruments

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return self._null_counter
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return self._null_gauge
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        if not self.enabled:
            return self._null_histogram
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, buckets)
        return instrument

    # -------------------------------------------------------------- reporting

    def counter_value(self, name: str) -> Number:
        instrument = self._counters.get(name)
        return instrument.value if instrument is not None else 0

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """All instrument state, sorted by name (deterministic)."""
        histograms = {}
        for name in sorted(self._histograms):
            hist = self._histograms[name]
            hist.flush()
            buckets = {
                f"{bound:g}": count
                for bound, count in zip(hist.bounds, hist.bucket_counts)
            }
            buckets["+Inf"] = hist.bucket_counts[-1]
            histograms[name] = {
                "count": hist.count,
                "sum": hist.sum,
                "buckets": buckets,
                "digest": hist.digest.to_jsonable(),
            }
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value for name in sorted(self._gauges)
            },
            "histograms": histograms,
        }

    def render_table(self) -> str:
        """Plain-text snapshot for CLI / example output."""
        snap = self.snapshot()
        lines = [f"{'metric':<36} {'value':>14}"]
        lines.append("-" * len(lines[0]))
        for name, value in snap["counters"].items():
            lines.append(f"{name:<36} {value:>14}")
        for name, value in snap["gauges"].items():
            lines.append(f"{name + ' (gauge)':<36} {value:>14g}")
        for name, data in snap["histograms"].items():
            lines.append(
                f"{name + ' (hist)':<36} {data['count']:>8} obs"
                f"  sum={data['sum']:.6g}"
            )
        return "\n".join(lines)

    # ---------------------------------------------------------------- merging

    def merge(
        self, other: Union["MetricsRegistry", Dict[str, Dict[str, object]]]
    ) -> "MetricsRegistry":
        """Fold another registry (or a :meth:`snapshot` dict) into this one.

        The campaign engine runs every trial against an isolated
        per-seed registry in a worker process and ships the snapshot
        back; the parent merges them so campaign-level metrics read
        exactly like one long serial run.  Merging is kind-wise:
        counters add, gauge values add (``max_value`` takes the max),
        histograms add bucket-by-bucket.  A histogram name whose bucket
        bounds differ between the two sides raises ``ValueError`` — the
        sum would be meaningless.
        """
        if not self.enabled:
            return self
        if isinstance(other, MetricsRegistry):
            for name, counter in other._counters.items():
                self.counter(name).inc(counter.value)
            for name, gauge in other._gauges.items():
                mine = self.gauge(name)
                mine.value += gauge.value
                if gauge.max_value > mine.max_value:
                    mine.max_value = gauge.max_value
            for name, hist in other._histograms.items():
                hist.flush()
                self._merge_histogram(
                    name,
                    hist.bounds,
                    hist.bucket_counts,
                    hist.count,
                    hist.sum,
                    hist.digest,
                )
            return self
        return self._merge_snapshot(other)

    def _merge_snapshot(
        self, snapshot: Dict[str, Dict[str, object]]
    ) -> "MetricsRegistry":
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            mine = self.gauge(name)
            mine.value += value
            if value > mine.max_value:
                mine.max_value = value
        for name, data in snapshot.get("histograms", {}).items():
            buckets: Dict[str, int] = data["buckets"]  # type: ignore[assignment]
            bounds = [float(key) for key in buckets if key != "+Inf"]
            counts = [count for key, count in buckets.items() if key != "+Inf"]
            counts.append(buckets.get("+Inf", 0))
            digest = data.get("digest")
            if digest is not None:
                digest = QuantileDigest.from_jsonable(digest)
            self._merge_histogram(
                name, bounds, counts, data["count"], data["sum"], digest
            )
        return self

    def _merge_histogram(
        self,
        name: str,
        bounds: Sequence[float],
        bucket_counts: Sequence[int],
        count: int,
        total: float,
        digest: Union[QuantileDigest, None] = None,
    ) -> None:
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram(name, bounds)
        elif [f"{b:g}" for b in hist.bounds] != [f"{b:g}" for b in bounds]:
            raise ValueError(
                f"{name}: cannot merge histograms with different buckets "
                f"({hist.bounds} vs {list(bounds)})"
            )
        hist.flush()
        for index, bucket_count in enumerate(bucket_counts):
            hist.bucket_counts[index] += bucket_count
        hist._count += count
        # one part per merged shard — fsum() keeps the total exact and
        # therefore independent of the merge order
        hist._sum_parts.append(total)
        if digest is not None:
            hist.digest.merge(digest)

    def reset(self) -> None:
        """Drop every instrument (tests; between benchmark sections)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


#: the process-wide default registry — aggregates across all the
#: short-lived worlds a trial loop creates.
_GLOBAL_REGISTRY = MetricsRegistry()


def get_global_registry() -> MetricsRegistry:
    return _GLOBAL_REGISTRY
