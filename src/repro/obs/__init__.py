"""Unified observability: metrics, spans, and cross-device timelines.

The simulation's evaluation hinges on timing-sensitive behaviour — the
page-response race, PLOC supervision timeouts, HCI link-key flows — so
every layer reports into one place:

* :class:`MetricsRegistry` — process-wide counters, gauges and
  fixed-bucket histograms, cheap enough to stay on in benchmarks
  (``phy.page_response_latency``, ``hci.events_emitted``,
  ``attack.race_wins`` ...).
* :class:`SpanTracker` — nestable spans keyed to *simulated* time, so
  one page attempt is a single correlated tree across
  phy → controller → HCI → host rather than four disjoint logs.
* :class:`Timeline` — merges every per-device :class:`~repro.sim.trace.Tracer`
  stream plus finished spans into one globally-ordered sequence, with
  JSONL and Chrome trace-event exporters (Perfetto / about:tracing) on
  a btsnoop-aligned clock.

:class:`Observability` bundles the three for one simulation world;
``World.obs`` (see :mod:`repro.attacks.scenario`) is the usual handle::

    with world.obs.span("page_procedure", source="A"):
        ...
    world.obs.metrics.counter("attack.race_wins").inc()
    print(render_timeline_table(world.obs.timeline.events()))
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.obs.digest import QuantileDigest
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_global_registry,
)
from repro.obs.spans import Span, SpanTracker
from repro.obs.timeline import (
    Timeline,
    TimelineEvent,
    event_to_jsonable,
    events_from_jsonl,
    export_chrome_trace,
    export_jsonl,
    render_timeline_table,
    write_jsonl,
)
from repro.sim.trace import Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "QuantileDigest",
    "Span",
    "SpanTracker",
    "Timeline",
    "TimelineEvent",
    "event_to_jsonable",
    "events_from_jsonl",
    "export_chrome_trace",
    "export_jsonl",
    "get_global_registry",
    "render_timeline_table",
    "write_jsonl",
]


class Observability:
    """One world's observability bundle: metrics + spans + timeline.

    ``registry`` defaults to the process-wide registry so that metrics
    aggregate across many short-lived worlds (the Table II trial loops);
    pass an isolated :class:`MetricsRegistry` for deterministic
    per-run snapshots.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.metrics = registry if registry is not None else get_global_registry()
        self.spans = SpanTracker(
            clock or (lambda: 0.0),
            observer=self._observe_span if self.metrics.enabled else None,
        )
        self._span_histograms: dict = {}
        self._span_tree_histograms: dict = {}
        self.timeline = Timeline()
        self.timeline.add_span_tracker(self.spans)
        if tracer is not None:
            self.timeline.add_tracer(tracer)

    def span(self, name: str, source: str = "", **attrs: Any):
        """Shorthand for ``self.spans.span(...)`` (a context manager)."""
        return self.spans.span(name, source=source, **attrs)

    def _observe_span(self, span: Span) -> None:
        """Feed every closed span into three histogram families.

        * ``span.<name>_s`` — wall duration per span type;
        * ``spanself.<name>_s`` — **self-time** per span type (wall
          minus finished children), the double-count-free series the
          run report's attribution table reads;
        * ``spantree.<a;b;c>_s`` — self-time keyed by the span-type
          *path* from the root, which is exactly a collapsed flamegraph
          stack.  Path cardinality is bounded by the static nesting
          structure of the instrumented code, not by span volume.

        Durations are simulated time, so all three (and their digests)
        stay deterministic per seed and merge cleanly across campaign
        shards via :meth:`MetricsRegistry.merge`.  Histogram handles
        are cached per name/path; the per-close cost is two dict hits
        plus three observes.
        """
        wall = span.end - span.start
        self_s = wall - span.child_s
        if self_s < 0.0:
            self_s = 0.0
        pair = self._span_histograms.get(span.name)
        if pair is None:
            pair = (
                self.metrics.histogram(f"span.{span.name}_s"),
                self.metrics.histogram(f"spanself.{span.name}_s"),
            )
            self._span_histograms[span.name] = pair
        pair[0].observe(wall)
        pair[1].observe(self_s)
        tree = self._span_tree_histograms.get(span.path)
        if tree is None:
            tree = self.metrics.histogram(
                "spantree." + ";".join(span.path) + "_s"
            )
            self._span_tree_histograms[span.path] = tree
        tree.observe(self_s)
