"""A mergeable quantile digest with fixed centroids.

Campaign sweeps fan trials across worker processes and merge the
per-seed metric snapshots back together.  The fixed-bucket histograms
give a deterministic merge but pin quantiles to a handful of
hand-picked bounds; a sample list would give exact quantiles but
unbounded memory and an order-*dependent* merge.  This digest sits in
between, t-digest style, with one crucial simplification: the centroid
positions are **fixed**, not data-dependent.

Values are binned on a logarithmic grid — every power-of-two octave is
split into ``resolution`` equal sub-buckets — so a bucket's relative
width is ``1/resolution`` and any quantile is recovered to within
``~0.5/resolution`` relative error (1.6 % at the default resolution of
32).  Fixed centroids buy three properties a classic t-digest lacks:

* **order independence** — merging is pure integer addition per
  bucket, so folding shard snapshots in any permutation yields
  byte-identical state (pinned by ``tests/test_obs_digest.py``);
* **determinism** — no RNG, no compression pass, no float drift;
* **bounded memory** — simulated latencies span ~25 octaves
  (100 ns .. 30 s), i.e. at most a few hundred sparse buckets.

Indexing uses ``math.frexp`` (an exact bit-field split, no libm
rounding edge cases): ``value = m * 2**e`` with ``m in [0.5, 1)`` maps
to bucket ``e * resolution + floor((m - 0.5) * 2 * resolution)``.
Zero and negative observations land in a dedicated low bucket
represented by the tracked minimum.
"""

from __future__ import annotations

from math import ceil, frexp, inf
from typing import Dict, Mapping, Optional, Sequence, Union

Number = Union[int, float]

#: sub-buckets per power-of-two octave (relative error ~= 0.5/resolution)
DEFAULT_RESOLUTION = 32


class QuantileDigest:
    """Sparse log-bucket digest: observe, query quantiles, merge."""

    __slots__ = ("resolution", "counts", "low", "count", "min", "max")

    def __init__(self, resolution: int = DEFAULT_RESOLUTION) -> None:
        if resolution < 1:
            raise ValueError(f"resolution must be >= 1, got {resolution}")
        self.resolution = resolution
        #: bucket index -> observation count (positive values only)
        self.counts: Dict[int, int] = {}
        #: observations <= 0 (no log bucket; represented by ``min``)
        self.low = 0
        self.count = 0
        self.min = inf
        self.max = -inf

    # -------------------------------------------------------------- observing

    def observe(self, value: Number) -> None:
        self.count += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value > 0.0:
            mantissa, exponent = frexp(value)
            key = exponent * self.resolution + int(
                (mantissa - 0.5) * 2 * self.resolution
            )
            self.counts[key] = self.counts.get(key, 0) + 1
        else:
            self.low += 1

    def update(self, values: Sequence[Number]) -> None:
        """Bulk :meth:`observe` — same state, one locals-bound loop.

        The metrics layer buffers hot-path observations and folds them
        in batches; min/max collapse to two C-level reductions and the
        binning loop touches no attributes.
        """
        if not values:
            return
        self.count += len(values)
        lowest = min(values)
        highest = max(values)
        if lowest < self.min:
            self.min = lowest
        if highest > self.max:
            self.max = highest
        counts = self.counts
        resolution = self.resolution
        double_resolution = 2 * resolution
        low = 0
        for value in values:
            if value > 0.0:
                mantissa, exponent = frexp(value)
                key = exponent * resolution + int(
                    (mantissa - 0.5) * double_resolution
                )
                counts[key] = counts.get(key, 0) + 1
            else:
                low += 1
        self.low += low

    # --------------------------------------------------------------- querying

    def _bucket_midpoint(self, key: int) -> float:
        exponent, sub = divmod(key, self.resolution)
        return (0.5 + (sub + 0.5) / (2 * self.resolution)) * 2.0 ** exponent

    def quantile(self, q: float) -> float:
        """The value at rank ``ceil(q * count)`` to within one bucket.

        Exact at the extremes: ``quantile(0.0)`` is the tracked minimum
        and ``quantile(1.0)`` the tracked maximum.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return 0.0
        if q == 0.0:
            return self.min
        if q == 1.0:
            return self.max
        target = max(1, ceil(q * self.count))
        seen = self.low
        if seen >= target:
            return self.min
        for key in sorted(self.counts):
            seen += self.counts[key]
            if seen >= target:
                midpoint = self._bucket_midpoint(key)
                return min(max(midpoint, self.min), self.max)
        return self.max

    def __len__(self) -> int:
        """Number of live buckets (the memory bound, not the count)."""
        return len(self.counts) + (1 if self.low else 0)

    # ---------------------------------------------------------------- merging

    def merge(self, other: "QuantileDigest") -> "QuantileDigest":
        """Fold another digest in: pure integer addition per bucket,
        therefore commutative, associative, and loss-free."""
        if other.resolution != self.resolution:
            raise ValueError(
                f"cannot merge digests with different resolutions "
                f"({self.resolution} vs {other.resolution})"
            )
        for key, bucket_count in other.counts.items():
            self.counts[key] = self.counts.get(key, 0) + bucket_count
        self.low += other.low
        self.count += other.count
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        return self

    # ------------------------------------------------------------- (de)coding

    def to_jsonable(self) -> Dict[str, object]:
        """A JSON-safe dict; bucket keys sorted for deterministic dumps."""
        return {
            "resolution": self.resolution,
            "count": self.count,
            "low": self.low,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": {str(key): self.counts[key] for key in sorted(self.counts)},
        }

    @classmethod
    def from_jsonable(cls, data: Mapping[str, object]) -> "QuantileDigest":
        digest = cls(resolution=int(data.get("resolution", DEFAULT_RESOLUTION)))
        digest.count = int(data.get("count", 0))
        digest.low = int(data.get("low", 0))
        minimum: Optional[float] = data.get("min")  # type: ignore[assignment]
        maximum: Optional[float] = data.get("max")  # type: ignore[assignment]
        digest.min = inf if minimum is None else float(minimum)
        digest.max = -inf if maximum is None else float(maximum)
        buckets: Mapping[str, int] = data.get("buckets", {})  # type: ignore[assignment]
        digest.counts = {int(key): int(value) for key, value in buckets.items()}
        return digest
