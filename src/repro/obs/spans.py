"""Span-based tracing keyed to simulated time.

A span covers one logical operation — a page procedure, an LMP
authentication, a whole attack run — and spans nest: the span opened
inside ``with tracker.span("attack.page_blocking")`` becomes the
parent of any span opened before it closes, across layer boundaries.
One page attempt is therefore a single correlated tree rather than
four disjoint per-layer trace logs.

Two APIs:

* ``with tracker.span(name, source=..., **attrs):`` — for code that
  brackets the operation syntactically (attack drivers, CLI).
* ``span = tracker.begin(name, ...); ... tracker.finish(span)`` — for
  split-phase operations that start in one callback and end in
  another (the controller's page procedure).  Detached spans take the
  current stack top as parent but never sit on the stack themselves,
  so out-of-order completion cannot corrupt nesting.

Span times come from the tracker's clock — the simulator — so spans
line up exactly with trace records and btsnoop captures.

Every span also records **self-time**: its wall duration minus the
durations of its finished children.  Wall totals double-count parents
(a ``trial`` span's duration includes every attack, HCI exchange and
phy callback under it); self-time is additive — summing it over any
set of span types never exceeds the root spans' wall time — which is
what makes the per-type attribution in ``blap report`` and the
``repro.profile`` flamegraph export honest.  A detached span that
outlives its parent keeps its full duration as self-time and the
parent is left unchanged (the overlap is genuinely concurrent work).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.sim.trace import next_sequence


@dataclass
class Span:
    """One timed operation; ``end`` is None while the span is open."""

    name: str
    start: float
    seq: int
    source: str = ""
    attrs: Dict[str, Any] = field(default_factory=dict)
    end: Optional[float] = None
    parent_seq: Optional[int] = None
    depth: int = 0
    #: span-type path from the root to this span (names, not instances)
    path: Tuple[str, ...] = ()
    #: accumulated wall time of finished children (fed by the tracker)
    child_s: float = 0.0

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError(f"span {self.name!r} is still open")
        return self.end - self.start

    @property
    def self_time(self) -> float:
        """Wall duration minus finished children's wall time, >= 0."""
        self_s = self.duration - self.child_s
        return self_s if self_s > 0.0 else 0.0

    @property
    def finished(self) -> bool:
        return self.end is not None

    def set_attr(self, key: str, value: Any) -> None:
        """Annotate an open span (e.g. record the page outcome)."""
        self.attrs[key] = value

    def __str__(self) -> str:
        end = f"{self.end:.6f}" if self.end is not None else "open"
        return f"Span({self.name}, {self.start:.6f}..{end}, src={self.source})"


class SpanTracker:
    """Records spans against a clock; owns the nesting stack.

    ``observer`` (optional) is called once per span *close* with the
    finished span.  :class:`~repro.obs.Observability` uses it to feed
    per-name duration histograms, so campaign-merged snapshots carry a
    "slowest spans" table without shipping span lists across workers.
    """

    def __init__(
        self,
        clock: Callable[[], float],
        observer: Optional[Callable[[Span], None]] = None,
    ) -> None:
        self.clock = clock
        self.observer = observer
        self.spans: List[Span] = []  # in start order
        self._stack: List[Span] = []
        self._open_by_seq: Dict[int, Span] = {}

    # ------------------------------------------------------------ scoped API

    @contextmanager
    def span(
        self, name: str, source: str = "", **attrs: Any
    ) -> Iterator[Span]:
        entry = self._open(name, source, attrs)
        self._stack.append(entry)
        try:
            yield entry
        finally:
            self._stack.pop()
            self._close(entry)

    # ------------------------------------------------------- split-phase API

    def begin(self, name: str, source: str = "", **attrs: Any) -> Span:
        """Open a detached span; close it later with :meth:`finish`."""
        return self._open(name, source, attrs)

    def finish(self, span: Span) -> None:
        if span.end is None:
            self._close(span)

    # --------------------------------------------------------------- queries

    @property
    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def finished_spans(self) -> List[Span]:
        return [span for span in self.spans if span.finished]

    def by_name(self, name: str) -> List[Span]:
        return [span for span in self.spans if span.name == name]

    def roots(self) -> List[Span]:
        return [span for span in self.spans if span.parent_seq is None]

    def children_of(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent_seq == span.seq]

    def clear(self) -> None:
        """Drop finished history (open spans on the stack survive)."""
        self.spans = [span for span in self.spans if not span.finished]

    def _open(self, name: str, source: str, attrs: Dict[str, Any]) -> Span:
        parent = self.current
        entry = Span(
            name=name,
            start=self.clock(),
            seq=next_sequence(),
            source=source,
            attrs=dict(attrs),
            parent_seq=parent.seq if parent is not None else None,
            depth=parent.depth + 1 if parent is not None else 0,
            path=parent.path + (name,) if parent is not None else (name,),
        )
        self.spans.append(entry)
        self._open_by_seq[entry.seq] = entry
        return entry

    def _close(self, span: Span) -> None:
        """Stamp the end, attribute the duration to a still-open parent
        (self-time bookkeeping), and fire the observer."""
        span.end = self.clock()
        self._open_by_seq.pop(span.seq, None)
        if span.parent_seq is not None:
            parent = self._open_by_seq.get(span.parent_seq)
            if parent is not None:
                parent.child_s += span.end - span.start
        if self.observer is not None:
            self.observer(span)
