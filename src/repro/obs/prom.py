"""Prometheus text exposition over :class:`MetricsRegistry` snapshots.

The service's ``GET /metrics`` endpoint renders every instrument in
the version-0.0.4 text format real scrapers speak:

* counters — ``blap_<name>_total``;
* gauges — ``blap_<name>``;
* histograms — cumulative ``_bucket{le=...}`` series plus ``_sum`` /
  ``_count`` (snapshot buckets are per-bin; exposition accumulates),
  and, because every histogram is backed by a mergeable
  :class:`~repro.obs.digest.QuantileDigest`, companion
  ``<name>_quantile{quantile="0.5"|"0.9"|"0.99"}`` gauges — digest
  quantiles a plain Prometheus histogram cannot give you.

Multiple snapshots render into one page with distinct label sets
(``render_prometheus([({}, merged), ({"tenant": "acme"}, acme)])``),
which is how the service exposes per-tenant ingest-latency quantiles
next to the fleet-wide series.  Metric names are sanitized to the
``[a-zA-Z_:][a-zA-Z0-9_:]*`` grammar and label values escaped per the
exposition spec.  Output is deterministic: families sort by name,
series keep group order, so identical snapshots render
byte-identically.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.obs.digest import QuantileDigest

#: digest quantiles exposed as companion gauges per histogram
EXPOSED_QUANTILES = (0.5, 0.9, 0.99)

_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str, namespace: str = "blap") -> str:
    """``service.ingest_latency_s`` → ``blap_service_ingest_latency_s``."""
    cleaned = _NAME_BAD.sub("_", name)
    if namespace:
        return f"{namespace}_{cleaned}"
    if not cleaned or not re.match(r"[a-zA-Z_:]", cleaned[0]):
        cleaned = f"_{cleaned}"
    return cleaned


def escape_label_value(value: str) -> str:
    """Backslash, double-quote and newline escaping per the spec."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _fmt(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _labels(pairs: Sequence[Tuple[str, str]]) -> str:
    if not pairs:
        return ""
    rendered = ",".join(
        f'{key}="{escape_label_value(value)}"' for key, value in pairs
    )
    return "{" + rendered + "}"


class _Family:
    __slots__ = ("kind", "lines")

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self.lines: List[str] = []


def render_prometheus(
    groups: Sequence[Tuple[Mapping[str, str], Mapping[str, Any]]],
    namespace: str = "blap",
) -> str:
    """Render labeled snapshot groups as one exposition page.

    ``groups`` is a sequence of ``(labels, snapshot)`` pairs where
    ``snapshot`` is a :meth:`MetricsRegistry.snapshot` dict.  The same
    metric may appear in several groups (merged + per-tenant); it
    renders as one family with one ``# TYPE`` line.
    """
    families: Dict[str, _Family] = {}

    def family(name: str, kind: str) -> _Family:
        entry = families.get(name)
        if entry is None:
            entry = families[name] = _Family(kind)
        return entry

    for labels, snapshot in groups:
        base_pairs = sorted(
            (str(key), str(value)) for key, value in labels.items()
        )
        label_str = _labels(base_pairs)
        for name, value in (snapshot.get("counters") or {}).items():
            metric = f"{sanitize_metric_name(name, namespace)}_total"
            family(metric, "counter").lines.append(
                f"{metric}{label_str} {_fmt(value)}"
            )
        for name, value in (snapshot.get("gauges") or {}).items():
            metric = sanitize_metric_name(name, namespace)
            family(metric, "gauge").lines.append(
                f"{metric}{label_str} {_fmt(value)}"
            )
        for name, data in (snapshot.get("histograms") or {}).items():
            metric = sanitize_metric_name(name, namespace)
            buckets: Mapping[str, int] = data.get("buckets") or {}
            entry = family(metric, "histogram")
            cumulative = 0
            finite = [key for key in buckets if key != "+Inf"]
            for key in finite + ["+Inf"]:
                cumulative += int(buckets.get(key, 0))
                entry.lines.append(
                    f"{metric}_bucket"
                    f"{_labels(base_pairs + [('le', key)])} {cumulative}"
                )
            entry.lines.append(
                f"{metric}_sum{label_str} {_fmt(float(data.get('sum', 0.0)))}"
            )
            entry.lines.append(
                f"{metric}_count{label_str} {_fmt(int(data.get('count', 0)))}"
            )
            digest_data = data.get("digest")
            if digest_data is not None and int(data.get("count", 0)) > 0:
                digest = QuantileDigest.from_jsonable(digest_data)
                quantile_metric = f"{metric}_quantile"
                quantile_family = family(quantile_metric, "gauge")
                for q in EXPOSED_QUANTILES:
                    quantile_family.lines.append(
                        f"{quantile_metric}"
                        f"{_labels(base_pairs + [('quantile', f'{q:g}')])}"
                        f" {_fmt(digest.quantile(q))}"
                    )

    lines: List[str] = []
    for metric in sorted(families):
        entry = families[metric]
        lines.append(f"# TYPE {metric} {entry.kind}")
        lines.extend(entry.lines)
    return "\n".join(lines) + ("\n" if lines else "")


__all__ = [
    "EXPOSED_QUANTILES",
    "escape_label_value",
    "render_prometheus",
    "sanitize_metric_name",
]
