"""Run-report generation: one document per campaign sweep.

The paper's evaluation is a pair of aggregate tables (Table I:
which devices leak the link key; Table II: MITM success with/without
page blocking) plus a detection figure — exactly the kind of output
that deserves a rendered report instead of scrolling pytest text.
This module turns *cached* campaign results into a self-contained
Markdown (or HTML) document:

* Table I and Table II side-by-side with the paper's published
  numbers;
* per-scenario success rates with Wilson score intervals (the honest
  way to put error bars on a Monte-Carlo proportion);
* metric quantile tables read from the merged
  :class:`~repro.obs.digest.QuantileDigest`-backed histograms;
* a **self-time attribution** tree (fed by the ``spantree.<a;b;c>_s``
  self-time histograms every :class:`~repro.obs.Observability`
  records): per-span-path self-time, which is additive — the rows sum
  to the root spans' wall time instead of double-counting parents the
  way a wall-total "slowest spans" table does;
* optional sections for ROC artifacts (``blap detect roc --json``
  output), bench numbers (``BENCH_*.json``) and a run's
  ``telemetry.jsonl``.

Everything renders from cached results and recorded artifacts — with a
warm campaign cache, ``blap report`` re-simulates nothing and its
output is byte-identical run over run (pinned by
``tests/test_obs_report.py``).  Campaign imports happen lazily so the
``obs`` layer stays import-clean below ``campaign``.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.obs.digest import QuantileDigest

#: Paper Table I ground truth: device key -> superuser required.
#: (All nine systems are vulnerable; only Ubuntu/BlueZ needs root.)
PAPER_TABLE1_SU = {
    "nexus_5x_android8": False,
    "lg_v50_android9": False,
    "galaxy_s8_android9": False,
    "pixel_2_xl_android11": False,
    "lg_velvet_android11": False,
    "galaxy_s21_android11": False,
    "windows10_microsoft": False,
    "windows10_csr_harmony": False,
    "ubuntu_2004_bluez": True,
}

#: Paper Table II: baseline MITM success rates measured on hardware
#: (page blocking is 100 % on every device).
PAPER_TABLE2_BASELINE = {
    "iphone_xs_ios1442": 0.52,
    "nexus_5x_android8": 0.52,
    "lg_v50_android9": 0.57,
    "galaxy_s8_android9": 0.42,
    "pixel_2_xl_android11": 0.60,
    "lg_velvet_android11": 0.60,
    "galaxy_s21_android11": 0.51,
}


def wilson_interval(
    successes: int, trials: int, z: float = 1.96
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Unlike the naive normal interval it behaves at the extremes —
    10/10 successes yields (0.72, 1.0), not (1.0, 1.0) — which is
    exactly the regime Table II's deterministic page-blocking column
    lives in.
    """
    if trials <= 0:
        return (0.0, 0.0)
    p = successes / trials
    z2 = z * z
    denom = 1.0 + z2 / trials
    centre = (p + z2 / (2 * trials)) / denom
    half = (
        z
        * math.sqrt(p * (1.0 - p) / trials + z2 / (4 * trials * trials))
        / denom
    )
    return (max(0.0, centre - half), min(1.0, centre + half))


# ------------------------------------------------------------- collection


def collect_report_data(
    runner: Any,
    trials: int = 20,
    seed_base: int = 2000,
    table1_seed_base: int = 1000,
) -> Dict[str, Any]:
    """Run the Table I/II campaigns (cache-served when warm) and fold
    every campaign's metrics into one merged snapshot.

    Seed layout matches ``blap campaign table1``/``table2`` and the
    benchmark suite, so a prior table2 run has already warmed the
    cache for this exact data.
    """
    from repro.campaign import CampaignSpec
    from repro.devices.catalog import TABLE1_DEVICE_SPECS, TABLE2_DEVICE_SPECS
    from repro.obs.metrics import MetricsRegistry

    merged = MetricsRegistry()
    table1_rows: List[Dict[str, Any]] = []
    for index, spec in enumerate(TABLE1_DEVICE_SPECS):
        campaign = runner.run(
            CampaignSpec(
                "extraction",
                seeds=[table1_seed_base + index],
                params={"c_spec": spec.key},
            )
        )
        merged.merge(campaign.metrics)
        trial = campaign.results[0]
        table1_rows.append(
            {
                "key": spec.key,
                "os": spec.os,
                "stack": spec.stack_profile.name,
                "device": spec.marketing_name,
                "channel": trial.detail.get("extraction_channel", "?"),
                "su_required": bool(trial.detail.get("su_required")),
                "su_paper": PAPER_TABLE1_SU.get(spec.key),
                "vulnerable": trial.success,
            }
        )

    table2_rows: List[Dict[str, Any]] = []
    scenario_stats: Dict[str, Dict[str, int]] = {}

    def _tally(campaign: Any) -> None:
        stats = scenario_stats.setdefault(
            campaign.spec.scenario, {"trials": 0, "successes": 0, "errors": 0}
        )
        stats["trials"] += campaign.trials
        stats["successes"] += campaign.successes
        stats["errors"] += len(campaign.errors)

    for index, spec in enumerate(TABLE2_DEVICE_SPECS):
        base = seed_base + index * 10_000
        baseline = runner.run(
            CampaignSpec(
                "baseline-race",
                seeds=range(base, base + trials),
                params={"m_spec": spec.key},
            )
        )
        blocked = runner.run(
            CampaignSpec(
                "page-blocking",
                seeds=range(base + 50_000, base + 50_000 + trials),
                params={"m_spec": spec.key},
            )
        )
        merged.merge(baseline.metrics)
        merged.merge(blocked.metrics)
        _tally(baseline)
        _tally(blocked)
        table2_rows.append(
            {
                "key": spec.key,
                "device": f"{spec.marketing_name} ({spec.os})",
                "paper_baseline": PAPER_TABLE2_BASELINE.get(spec.key),
                "baseline_successes": baseline.successes,
                "blocked_successes": blocked.successes,
                "trials": trials,
            }
        )

    return {
        "trials": trials,
        "table1": table1_rows,
        "table2": table2_rows,
        "scenarios": {
            name: scenario_stats[name] for name in sorted(scenario_stats)
        },
        "metrics": merged.snapshot(),
    }


# -------------------------------------------------------------- rendering


def _pct(value: float) -> str:
    return f"{value:.0%}"


def _ci(successes: int, trials: int) -> str:
    low, high = wilson_interval(successes, trials)
    return f"[{_pct(low)}, {_pct(high)}]"


def _fmt_s(value: float) -> str:
    """Seconds with enough resolution for microsecond-scale callbacks."""
    return f"{value:.6g}"


def _quantile_rows(
    histograms: Mapping[str, Mapping[str, Any]], prefix: str = "", strip: bool = False
) -> List[Dict[str, Any]]:
    rows = []
    for name in sorted(histograms):
        if prefix and not name.startswith(prefix):
            continue
        data = histograms[name]
        digest_data = data.get("digest")
        if digest_data is None:
            continue
        digest = QuantileDigest.from_jsonable(digest_data)
        count = int(data.get("count", 0))
        if count == 0:
            continue
        total = float(data.get("sum", 0.0))
        rows.append(
            {
                "name": name[len("span."):-len("_s")] if strip else name,
                "count": count,
                "mean": total / count,
                "p50": digest.quantile(0.5),
                "p90": digest.quantile(0.9),
                "p99": digest.quantile(0.99),
                "max": digest.quantile(1.0),
            }
        )
    return rows


def collect_attribution(
    histograms: Mapping[str, Mapping[str, Any]]
) -> Dict[str, Any]:
    """Self-time attribution from the ``spantree.*`` histograms.

    Rows come back in hierarchical order (siblings sorted by subtree
    time, heaviest first) with per-path count / self total / self p99
    / subtree total — the double-count-free replacement for ranking
    span types by wall totals.  Pure function of the merged snapshot.
    """
    from repro.profile.selftime import (
        SPANTREE_PREFIX,
        SelfTimeTree,
        root_wall_s,
    )

    tree = SelfTimeTree.from_snapshot({"histograms": histograms})
    p99: Dict[Tuple[str, ...], float] = {}
    for name, data in histograms.items():
        if not (
            name.startswith(SPANTREE_PREFIX) and name.endswith("_s")
        ):
            continue
        digest_data = data.get("digest")
        if digest_data is None or not int(data.get("count", 0)):
            continue
        path = tuple(name[len(SPANTREE_PREFIX):-len("_s")].split(";"))
        p99[path] = QuantileDigest.from_jsonable(digest_data).quantile(0.99)

    rows: List[Dict[str, Any]] = []
    subtree = {path: tree.subtree_s(path) for path in tree.paths()}

    def emit(prefix: Tuple[str, ...]) -> None:
        depth = len(prefix)
        children = sorted(
            {
                path[: depth + 1]
                for path in tree.paths()
                if len(path) > depth and path[:depth] == prefix
            },
            key=lambda p: (-subtree.get(p, tree.subtree_s(p)), p),
        )
        for child in children:
            rows.append(
                {
                    "path": list(child),
                    "count": tree.count(child),
                    "self_s": tree.self_s(child),
                    "self_p99_s": p99.get(child, 0.0),
                    "subtree_s": subtree.get(child, tree.subtree_s(child)),
                }
            )
            emit(child)

    emit(())
    return {
        "rows": rows,
        "total_self_s": tree.total_self_s,
        "root_wall_s": root_wall_s({"histograms": histograms}),
    }


def render_markdown(
    data: Mapping[str, Any],
    roc: Optional[Mapping[str, Any]] = None,
    bench: Optional[Mapping[str, Mapping[str, Any]]] = None,
    telemetry: Optional[Sequence[Mapping[str, Any]]] = None,
    top_spans: int = 10,
) -> str:
    """The report document.  Pure function of its inputs — no clocks,
    no environment — so cached inputs render byte-identically."""
    lines: List[str] = []
    out = lines.append
    trials = data.get("trials", 0)
    out("# BLAP campaign run report")
    out("")
    out(
        f"Simulated reproduction vs. the paper's published evaluation "
        f"({trials} trials per Table II cell)."
    )

    table1 = data.get("table1") or []
    if table1:
        out("")
        out("## Table I — link key extraction across the device fleet")
        out("")
        out(
            "| Device | OS | Host stack | Channel | SU (ours) | "
            "SU (paper) | Vulnerable |"
        )
        out("| --- | --- | --- | --- | --- | --- | --- |")
        for row in table1:
            su_paper = row.get("su_paper")
            out(
                f"| {row['device']} | {row['os']} | {row['stack']} "
                f"| {row['channel']} "
                f"| {'yes' if row['su_required'] else 'no'} "
                f"| {'?' if su_paper is None else ('yes' if su_paper else 'no')} "
                f"| {'YES' if row['vulnerable'] else 'no'} |"
            )
        vulnerable = sum(1 for row in table1 if row["vulnerable"])
        matches = sum(
            1
            for row in table1
            if row["su_paper"] is not None
            and row["su_required"] == row["su_paper"]
        )
        out("")
        out(
            f"{vulnerable}/{len(table1)} devices vulnerable "
            f"(paper: {len(table1)}/{len(table1)}); SU column matches the "
            f"paper on {matches}/{len(table1)} devices."
        )

    table2 = data.get("table2") or []
    if table2:
        out("")
        out("## Table II — MITM success with and without page blocking")
        out("")
        out(
            "| Device | Paper w/o | Ours w/o | 95% CI | Paper with "
            "| Ours with | 95% CI |"
        )
        out("| --- | --- | --- | --- | --- | --- | --- |")
        for row in table2:
            n = row["trials"]
            base = row["baseline_successes"]
            blocked = row["blocked_successes"]
            paper = row.get("paper_baseline")
            out(
                f"| {row['device']} "
                f"| {'?' if paper is None else _pct(paper)} "
                f"| {_pct(base / n if n else 0.0)} | {_ci(base, n)} "
                f"| 100% "
                f"| {_pct(blocked / n if n else 0.0)} | {_ci(blocked, n)} |"
            )
        out("")
        out(
            "Paper: 42-60% success without page blocking (a scan-phase "
            "race), 100% with page blocking on every device."
        )

    scenarios = data.get("scenarios") or {}
    if scenarios:
        out("")
        out("## Per-scenario success rates")
        out("")
        out("| Scenario | Trials | Successes | Rate | Wilson 95% CI | Errors |")
        out("| --- | --- | --- | --- | --- | --- |")
        for name, stats in scenarios.items():
            n = stats["trials"]
            s = stats["successes"]
            out(
                f"| {name} | {n} | {s} | {_pct(s / n if n else 0.0)} "
                f"| {_ci(s, n)} | {stats.get('errors', 0)} |"
            )

    histograms = (data.get("metrics") or {}).get("histograms", {})
    metric_rows = [
        row
        for row in _quantile_rows(histograms)
        if not row["name"].startswith(("span.", "spanself.", "spantree."))
    ]
    if metric_rows:
        out("")
        out("## Metric quantiles (merged digests)")
        out("")
        out("| Metric | Count | Mean | p50 | p90 | p99 | Max |")
        out("| --- | --- | --- | --- | --- | --- | --- |")
        for row in metric_rows:
            out(
                f"| {row['name']} | {row['count']} | {_fmt_s(row['mean'])} "
                f"| {_fmt_s(row['p50'])} | {_fmt_s(row['p90'])} "
                f"| {_fmt_s(row['p99'])} | {_fmt_s(row['max'])} |"
            )

    attribution = collect_attribution(histograms)
    if attribution["rows"]:
        rows = attribution["rows"]
        shown = rows[:top_spans]
        out("")
        out("## Self-time attribution (merged span trees)")
        out("")
        out(
            "(simulated seconds; self-time = wall minus children, so "
            "rows are additive — no parent double-counting)"
        )
        out("")
        out("| Span path | Count | Self total | Self p99 | Subtree |")
        out("| --- | --- | --- | --- | --- |")
        for row in shown:
            label = "· " * (len(row["path"]) - 1) + row["path"][-1]
            out(
                f"| {label} | {row['count']} | {_fmt_s(row['self_s'])} "
                f"| {_fmt_s(row['self_p99_s'])} "
                f"| {_fmt_s(row['subtree_s'])} |"
            )
        out("")
        tail = (
            f" ({len(rows) - len(shown)} deeper paths elided)"
            if len(rows) > len(shown)
            else ""
        )
        out(
            f"Self-time total {_fmt_s(attribution['total_self_s'])}s across "
            f"{len(rows)} span paths; root-span wall total "
            f"{_fmt_s(attribution['root_wall_s'])}s.{tail}"
        )

    if roc:
        out("")
        out("## Detector operating points")
        out("")
        out("| Detector | Attack | Threshold | TPR | FPR | Mean latency |")
        out("| --- | --- | --- | --- | --- | --- |")
        for detector in sorted(roc):
            entry = roc[detector]
            point = entry.get("operating_point") or {}
            latency = point.get("mean_latency_s")
            out(
                f"| {detector} | {entry.get('attack', '?')} "
                f"| {point.get('threshold', '-')} "
                f"| {_pct(point['tpr']) if 'tpr' in point else '-'} "
                f"| {_pct(point['fpr']) if 'fpr' in point else '-'} "
                f"| {_fmt_s(latency) + 's' if latency is not None else '-'} |"
            )

    if bench:
        out("")
        out("## Benchmark numbers")
        for name in sorted(bench):
            sections = bench[name]
            if not isinstance(sections, Mapping):
                continue
            out("")
            out(f"### BENCH_{name}")
            out("")
            out("| Section | Key | Value |")
            out("| --- | --- | --- |")
            for section in sorted(sections):
                values = sections[section]
                if not isinstance(values, Mapping):
                    continue
                for key in sorted(values):
                    value = values[key]
                    rendered = (
                        _fmt_s(value)
                        if isinstance(value, float)
                        else str(value)
                    )
                    out(f"| {section} | {key} | {rendered} |")

    if telemetry:
        records = list(telemetry)
        done = len(records)
        ok = sum(1 for record in records if record.get("success"))
        cached = sum(1 for record in records if record.get("cached"))
        walls = sorted(
            records,
            key=lambda r: (-float(r.get("wall_time_s", 0.0)), r.get("seed", 0)),
        )
        total_wall = sum(float(r.get("wall_time_s", 0.0)) for r in records)
        out("")
        out("## Run telemetry")
        out("")
        out(
            f"{done} trial records ({ok} successes, {cached} cache hits), "
            f"{total_wall:.2f}s total trial wall time."
        )
        out("")
        out("Slowest trials:")
        out("")
        out("| Scenario | Seed | Wall (s) | Outcome |")
        out("| --- | --- | --- | --- |")
        for record in walls[:5]:
            out(
                f"| {record.get('scenario')} | {record.get('seed')} "
                f"| {float(record.get('wall_time_s', 0.0)):.3f} "
                f"| {record.get('outcome')} |"
            )

    out("")
    return "\n".join(lines)


# ------------------------------------------------------------------- JSON


def render_json(
    data: Mapping[str, Any],
    roc: Optional[Mapping[str, Any]] = None,
    bench: Optional[Mapping[str, Mapping[str, Any]]] = None,
    telemetry: Optional[Sequence[Mapping[str, Any]]] = None,
) -> str:
    """Machine-readable report: the same inputs the Markdown renderer
    sees, plus the computed self-time attribution — what CI consumes
    (``blap report --format json``).  Deterministic: sorted keys, and
    every value derives from cached results and recorded artifacts."""
    histograms = (data.get("metrics") or {}).get("histograms", {})
    payload: Dict[str, Any] = {
        "format": 1,
        "trials": data.get("trials", 0),
        "table1": data.get("table1") or [],
        "table2": data.get("table2") or [],
        "scenarios": data.get("scenarios") or {},
        "metrics": data.get("metrics") or {},
        "attribution": collect_attribution(histograms),
    }
    if roc is not None:
        payload["roc"] = roc
    if bench is not None:
        payload["bench"] = bench
    if telemetry is not None:
        records = [dict(record) for record in telemetry]
        payload["telemetry"] = {
            "records": records,
            "trials": len(records),
            "successes": sum(1 for r in records if r.get("success")),
            "cache_hits": sum(1 for r in records if r.get("cached")),
            "total_wall_s": sum(
                float(r.get("wall_time_s", 0.0)) for r in records
            ),
        }
    return json.dumps(payload, indent=1, sort_keys=True) + "\n"


# ------------------------------------------------------------------- HTML


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


_HTML_STYLE = """
body { font: 14px/1.5 system-ui, sans-serif; max-width: 60rem;
       margin: 2rem auto; padding: 0 1rem; color: #1a1a2e; }
table { border-collapse: collapse; margin: 0.75rem 0; }
th, td { border: 1px solid #c5c9d4; padding: 0.25rem 0.6rem;
         text-align: left; }
th { background: #eef0f5; }
h1, h2, h3 { line-height: 1.2; }
""".strip()


def render_html(markdown: str, title: str = "BLAP run report") -> str:
    """A dependency-free Markdown subset renderer (headings, tables,
    paragraphs) — enough for a self-contained report artifact."""
    body: List[str] = []
    table: List[List[str]] = []
    paragraph: List[str] = []

    def flush_paragraph() -> None:
        if paragraph:
            body.append(f"<p>{_escape(' '.join(paragraph))}</p>")
            paragraph.clear()

    def flush_table() -> None:
        if not table:
            return
        body.append("<table>")
        for index, cells in enumerate(table):
            tag = "th" if index == 0 else "td"
            rendered = "".join(
                f"<{tag}>{_escape(cell)}</{tag}>" for cell in cells
            )
            body.append(f"<tr>{rendered}</tr>")
        body.append("</table>")
        table.clear()

    for line in markdown.splitlines():
        stripped = line.strip()
        if stripped.startswith("|"):
            flush_paragraph()
            cells = [cell.strip() for cell in stripped.strip("|").split("|")]
            if all(set(cell) <= {"-", ":", " "} and cell for cell in cells):
                continue  # the |---|---| separator row
            table.append(cells)
            continue
        flush_table()
        if stripped.startswith("#"):
            flush_paragraph()
            level = len(stripped) - len(stripped.lstrip("#"))
            level = min(level, 6)
            body.append(
                f"<h{level}>{_escape(stripped[level:].strip())}</h{level}>"
            )
        elif not stripped:
            flush_paragraph()
        else:
            paragraph.append(stripped)
    flush_table()
    flush_paragraph()

    return (
        "<!doctype html>\n<html><head><meta charset=\"utf-8\">"
        f"<title>{_escape(title)}</title>"
        f"<style>{_HTML_STYLE}</style></head>\n<body>\n"
        + "\n".join(body)
        + "\n</body></html>\n"
    )


# -------------------------------------------------------------------- glue


def telemetry_from_store(
    run_dir: Optional[Union[str, Path]] = None,
    store_path: Optional[Union[str, Path]] = None,
    run_id: Optional[str] = None,
) -> Optional[Sequence[Mapping[str, Any]]]:
    """Trial telemetry for the report, read through the run store.

    Two sources, one query path:

    * ``run_dir`` — the directory is ingested into an *in-memory*
      store and queried back, so even the "just give me a report for
      this run dir" flow exercises the exact ingest + query code the
      database-backed flow uses (and stays byte-identical to the old
      direct-JSONL read, pinned by ``tests/test_store.py``);
    * ``store_path`` — records come straight from an existing store
      database, optionally scoped to one ``run_id``.
    """
    from repro.store import RunStore, TelemetryQuery, ingest_run_dir

    if store_path is not None:
        with RunStore(store_path) as store:
            return store.query_telemetry(
                TelemetryQuery(run_id=run_id, limit=-1)
            )
    if run_dir is not None:
        with RunStore(":memory:") as store:
            ingest_run_dir(store, run_dir)
            return store.query_telemetry(
                TelemetryQuery(run_id=Path(run_dir).name, limit=-1)
            )
    return None


def generate_report(
    runner: Any,
    trials: int = 20,
    seed_base: int = 2000,
    table1_seed_base: int = 1000,
    roc_path: Optional[Union[str, Path]] = None,
    bench_directory: Optional[Union[str, Path]] = None,
    run_dir: Optional[Union[str, Path]] = None,
    store_path: Optional[Union[str, Path]] = None,
    store_run_id: Optional[str] = None,
    top_spans: int = 10,
    html: bool = False,
    fmt: Optional[str] = None,
) -> str:
    """Collect + render in one call (the ``blap report`` backend).

    ``fmt`` is ``"markdown"`` (default), ``"html"`` or ``"json"``;
    the older ``html=True`` flag is kept as an alias.
    """
    if fmt is None:
        fmt = "html" if html else "markdown"
    if fmt not in ("markdown", "html", "json"):
        raise ValueError(f"unknown report format {fmt!r}")
    data = collect_report_data(
        runner,
        trials=trials,
        seed_base=seed_base,
        table1_seed_base=table1_seed_base,
    )
    roc = None
    if roc_path is not None:
        with open(roc_path, "r", encoding="utf-8") as handle:
            roc = json.load(handle)
    bench = None
    if bench_directory is not None:
        from repro.core.bench import iter_bench_files, load_bench

        bench = {
            path.stem[len("BENCH_"):]: load_bench(path)
            for path in iter_bench_files(bench_directory)
        }
    telemetry = telemetry_from_store(
        run_dir=run_dir, store_path=store_path, run_id=store_run_id
    )
    if fmt == "json":
        return render_json(data, roc=roc, bench=bench, telemetry=telemetry)
    markdown = render_markdown(
        data, roc=roc, bench=bench, telemetry=telemetry, top_spans=top_spans
    )
    return render_html(markdown) if fmt == "html" else markdown
