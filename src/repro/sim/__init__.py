"""Discrete-event simulation kernel.

Everything in the reproduction — radios, controllers, host stacks,
attacks — runs on a single :class:`~repro.sim.eventloop.Simulator`
instance.  Time is a float number of seconds; events are callbacks
scheduled at absolute or relative times.
"""

from repro.sim.eventloop import Event, Simulator, SimulationError
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecord, Tracer

__all__ = [
    "Event",
    "Simulator",
    "SimulationError",
    "RngRegistry",
    "TraceRecord",
    "Tracer",
]
