"""Named, seeded random streams.

Each consumer (the radio medium, each controller's clock jitter, the
crypto layer's nonce generator, ...) gets its own ``random.Random``
derived from a master seed and the stream name.  Adding a new consumer
therefore never perturbs the draws seen by existing ones, which keeps
experiment results stable as the codebase grows.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RngRegistry:
    """Factory for per-stream deterministic RNGs."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the RNG for ``name``, creating it on first use."""
        if name not in self._streams:
            digest = hashlib.sha256(
                f"{self.master_seed}:{name}".encode("utf-8")
            ).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def random_bytes(self, name: str, length: int) -> bytes:
        """Draw ``length`` random bytes from the named stream."""
        rng = self.stream(name)
        return bytes(rng.getrandbits(8) for _ in range(length))
