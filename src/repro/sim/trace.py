"""Structured trace log for simulated protocol activity.

Traces are the simulation analogue of a logic analyser: every layer can
append :class:`TraceRecord` entries, and tests/benchmarks assert on the
recorded sequences (e.g. the Fig. 12 HCI flows).

Every record carries a process-wide monotonic ``seq`` so that records
from *different* tracers (and spans, see :mod:`repro.obs`) merge into
one globally-ordered timeline with the same tie-breaking rule the
event loop uses: equal timestamps order by emission sequence.

Long trial loops can bound memory with ``Tracer(max_records=N)``: the
tracer becomes a ring buffer that drops its oldest records (counted in
``dropped``) instead of growing linearly over hundreds of trials.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

#: process-wide emission sequence shared by tracers and spans, so any
#: mix of streams has a total order consistent with emission order.
_SEQUENCE = itertools.count()


def next_sequence() -> int:
    """Next process-wide emission sequence number."""
    return next(_SEQUENCE)


@dataclass
class TraceRecord:
    """One trace entry: a timestamped, categorised message."""

    time: float
    source: str
    category: str
    message: str
    detail: Dict[str, Any] = field(default_factory=dict)
    seq: int = -1

    def __str__(self) -> str:
        return f"[{self.time:10.6f}] {self.source:<16} {self.category:<12} {self.message}"


class Tracer:
    """Accumulates trace records and answers queries over them.

    ``max_records`` turns the tracer into a bounded ring buffer: the
    newest ``max_records`` entries are kept, older ones are discarded
    and counted in :attr:`dropped`.
    """

    def __init__(self, max_records: Optional[int] = None) -> None:
        if max_records is not None and max_records <= 0:
            raise ValueError(f"max_records must be positive, got {max_records}")
        self.max_records = max_records
        self.records: Any = (
            [] if max_records is None else deque(maxlen=max_records)
        )
        self.dropped = 0
        self.enabled = True
        self._listeners: List[Callable[[TraceRecord], None]] = []

    def add_listener(self, listener: Callable[[TraceRecord], None]) -> None:
        """Subscribe to records live, as they are emitted.

        Listeners fire synchronously from :meth:`emit` (after the
        record is appended), even in ring-buffer mode where the record
        may later be evicted — this is how the detection feed
        (:mod:`repro.detect`) observes tracer streams without keeping
        the whole history resident.  Disabled tracers notify nobody.
        """
        if listener not in self._listeners:
            self._listeners.append(listener)

    def remove_listener(self, listener: Callable[[TraceRecord], None]) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    def emit(
        self,
        time: float,
        source: str,
        category: str,
        message: str,
        **detail: Any,
    ) -> None:
        """Append a record (no-op when tracing is disabled)."""
        if not self.enabled:
            return
        if (
            self.max_records is not None
            and len(self.records) == self.max_records
        ):
            self.dropped += 1
        record = TraceRecord(
            time, source, category, message, detail, seq=next(_SEQUENCE)
        )
        self.records.append(record)
        if self._listeners:
            for listener in list(self._listeners):
                listener(record)

    def filter(
        self,
        source: Optional[str] = None,
        category: Optional[str] = None,
        contains: Optional[str] = None,
    ) -> List[TraceRecord]:
        """Return records matching all provided criteria."""
        result = []
        for record in self.records:
            if source is not None and record.source != source:
                continue
            if category is not None and record.category != category:
                continue
            if contains is not None and contains not in record.message:
                continue
            result.append(record)
        return result

    def messages(self, **kwargs: Any) -> List[str]:
        """Return just the message strings of :meth:`filter` results."""
        return [record.message for record in self.filter(**kwargs)]

    def clear(self) -> None:
        """Drop all accumulated records (and the drop count)."""
        self.records.clear()
        self.dropped = 0

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)


def render_ladder(
    tracer: Tracer,
    sources: Optional[List[str]] = None,
    categories: Optional[List[str]] = None,
    max_rows: Optional[int] = None,
    column_width: int = 34,
) -> str:
    """Render trace records as an ASCII sequence ladder.

    One column per source (device), one row per record — a quick
    protocol-flow view for debugging and documentation::

        time        M                        C
        0.500102    > HCI_Create_Connection
        0.500318                             > HCI_Connection_Request
        ...
    """
    records = [
        record
        for record in tracer.records
        if (sources is None or record.source in sources)
        and (categories is None or record.category in categories)
    ]
    if max_rows is not None:
        records = records[:max_rows]
    if sources is None:
        seen: List[str] = []
        for record in records:
            if record.source not in seen:
                seen.append(record.source)
        sources = seen

    header = f"{'time':<12}" + "".join(
        f"{name:<{column_width}}" for name in sources
    )
    lines = [header, "-" * len(header)]
    for record in records:
        column = sources.index(record.source)
        stamp = f"{record.time:.6f}"[:11].ljust(12)
        indent = " " * (column * column_width)
        lines.append(f"{stamp}{indent}> {record.message}")
    return "\n".join(lines)
