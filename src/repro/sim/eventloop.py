"""A deterministic discrete-event scheduler.

The scheduler is a classic heap-based event loop.  Determinism matters
here: the page-blocking experiments compare success rates over hundreds
of seeded trials, so two runs with the same seed must interleave events
identically.  Ties on the timestamp are broken by insertion order.

The loop keeps a live-event count maintained on schedule/cancel/pop so
:attr:`Simulator.pending` — polled inside trial loops — is O(1) rather
than a heap scan, and optionally reports into a
:class:`~repro.obs.metrics.MetricsRegistry` (events processed, queue
depth, per-callback wall time).  Instrumentation is gated on a single
check per :meth:`run`, so a simulator without metrics (or with a
disabled registry) pays nothing measurable.
"""

from __future__ import annotations

import itertools
import time as _time
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Any, Callable, List, Optional, Tuple

if TYPE_CHECKING:
    from repro.obs.metrics import MetricsRegistry


class SimulationError(RuntimeError):
    """Raised for scheduler misuse (e.g. scheduling in the past)."""


class Event:
    """A single scheduled callback.

    Events order by ``(time, sequence)`` so the heap pops them in
    schedule order for equal timestamps.  A ``__slots__`` class with a
    hand-rolled ``__lt__`` rather than an ordered dataclass: scheduling
    is *the* allocation hot path once worlds hold hundreds of ambient
    devices, and slots cut both the per-event footprint and the
    tuple-building comparison cost dataclass ordering pays.
    """

    __slots__ = (
        "time", "sequence", "callback", "args",
        "cancelled", "popped", "_owner",
    )

    def __init__(
        self,
        time: float,
        sequence: int,
        callback: Callable[..., None],
        args: Tuple[Any, ...] = (),
        _owner: Optional["Simulator"] = None,
    ) -> None:
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.args = args
        self.cancelled = False
        #: set once the loop has popped the event (fired or skipped) —
        #: late cancels must not disturb the live count.
        self.popped = False
        self._owner = _owner

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.sequence < other.sequence

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self.time == other.time and self.sequence == other.sequence

    def __repr__(self) -> str:
        return (
            f"Event(time={self.time!r}, sequence={self.sequence!r}, "
            f"cancelled={self.cancelled!r})"
        )

    def cancel(self) -> None:
        """Mark the event so the loop skips it when popped."""
        if self.cancelled or self.popped:
            return
        self.cancelled = True
        if self._owner is not None:
            self._owner._live -= 1


class Simulator:
    """Heap-based discrete event simulator.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    """

    def __init__(self, metrics: Optional["MetricsRegistry"] = None) -> None:
        self._now = 0.0
        self._queue: List[Event] = []
        self._sequence = itertools.count()
        self._running = False
        self._processed = 0
        self._live = 0
        self.metrics = metrics

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (for diagnostics)."""
        return self._processed

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued — O(1)."""
        return self._live

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        # Inlined schedule_at: this is the hottest call in fleet-scale
        # worlds, and the extra frame was measurable.
        event = Event(
            self._now + delay, next(self._sequence), callback, args,
            _owner=self,
        )
        heappush(self._queue, event)
        self._live += 1
        return event

    def schedule_at(
        self, when: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at t={when} before now={self._now}"
            )
        event = Event(when, next(self._sequence), callback, args, _owner=self)
        heappush(self._queue, event)
        self._live += 1
        return event

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> None:
        """Run events until the queue drains or simulated time passes ``until``.

        ``max_events`` is a runaway guard — a stuck protocol loop in a
        simulated stack should fail loudly rather than spin forever.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        metrics = self.metrics
        instrumented = metrics is not None and metrics.enabled
        # The counter and gauge are flushed once after the loop (their
        # per-event deltas are reconstructible from locals); only the
        # wall-time histogram must observe per event.  Binding the
        # observe method and the clock to locals skips two attribute
        # lookups per event on the hot path.
        executed = 0
        max_depth = 0
        if instrumented:
            observe_wall = metrics.histogram(
                "sim.callback_wall_s",
                buckets=(1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0),
            ).observe
            clock = _time.perf_counter
        queue = self._queue
        try:
            while queue:
                event = queue[0]
                if until is not None and event.time > until:
                    break
                heappop(queue)
                event.popped = True
                if event.cancelled:
                    continue
                self._live -= 1
                self._now = event.time
                if instrumented:
                    if self._live > max_depth:
                        max_depth = self._live
                    started = clock()
                    event.callback(*event.args)
                    observe_wall(clock() - started)
                else:
                    event.callback(*event.args)
                self._processed += 1
                executed += 1
                if executed > max_events:
                    raise SimulationError(
                        f"exceeded {max_events} events; runaway simulation?"
                    )
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False
            if instrumented and executed:
                metrics.counter("sim.events_processed").inc(executed)
                depth = metrics.gauge("sim.queue_depth")
                depth.set(max_depth)
                depth.set(self._live)

    def run_for(self, duration: float, max_events: int = 10_000_000) -> None:
        """Run for ``duration`` simulated seconds from the current time."""
        self.run(until=self._now + duration, max_events=max_events)
