"""Fleet-scale device populations with ambient Bluetooth traffic.

The paper's trials build three devices around one attack; this package
builds the *city block around them*: a :class:`PopulationSpec` samples
a heterogeneous device mix (weights parameterised from the Table I/II
stack/vendor matrix in :mod:`repro.devices.catalog`) and drives it
with ambient traffic — periodic inquiries, page/connect/disconnect
churn and short-lived piconets — all scheduled on the world's event
loop from per-seed child RNG streams, so a 500-device world replays
byte-identically for a given seed.

Entry points:

* :func:`populate` — instantiate a spec inside a world (composes with
  ``standard_cast``, which is itself a 3-member population preset);
* ``WorldConfig(population=...)`` — populate at world-build time;
* the preset registry (:func:`get_population`,
  :func:`population_names`) behind ``blap population list|describe``
  and the ``--population`` CLI flag.
"""

from repro.population.ambient import Population, populate
from repro.population.spec import (
    CastMember,
    PopulationError,
    PopulationSpec,
    ambient_spec,
    get_population,
    population_names,
    register_population,
    table_mix,
)

__all__ = [
    "CastMember",
    "Population",
    "PopulationError",
    "PopulationSpec",
    "ambient_spec",
    "get_population",
    "populate",
    "population_names",
    "register_population",
    "table_mix",
]
