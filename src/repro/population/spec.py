"""Declarative device populations: JSON-serialisable, validated, hashable.

A :class:`PopulationSpec` describes one world's inhabitants:

* ``members`` — named cast devices built in order (the M/C/A trio is
  itself the ``standard-cast`` preset, so the paper's worlds and the
  fleet worlds share one construction path);
* ``size`` + ``mix`` — how many ambient background devices to sample
  and the catalog-key weights to sample them from (default: the
  Table I/II appearance counts plus accessory flavour);
* behaviour knobs — what fraction of the background inquires, talks
  and stays discoverable, and on what cadence.

Specs round-trip losslessly through JSON — they travel inside campaign
specs, across worker processes and into the disk-cache content hash —
mirroring :class:`repro.faults.FaultPlan`.  The preset registry backs
``blap population list|describe`` and the ``--population`` flag.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.devices.catalog import (
    ANDROID_AUTOMOTIVE_HEAD_UNIT,
    HEADSET,
    TABLE1_DEVICE_SPECS,
    TABLE2_DEVICE_SPECS,
    DeviceSpec,
    spec_by_key,
)


class PopulationError(ValueError):
    """An invalid population spec (unknown device key, bad knob)."""


def table_mix() -> Tuple[Tuple[str, float], ...]:
    """Default ambient device mix, weighted by the paper's tables.

    Each appearance in Table I (link-key extraction fleet) or Table II
    (page-blocking fleet) contributes one unit of weight — the stacks
    the paper evaluated most are the stacks the simulated street sees
    most — plus accessory flavour (headsets, a car head unit) so the
    background is not phones-only.
    """
    weights: Dict[str, float] = {}
    for spec in list(TABLE1_DEVICE_SPECS) + list(TABLE2_DEVICE_SPECS):
        weights[spec.key] = weights.get(spec.key, 0.0) + 1.0
    weights[HEADSET.key] = weights.get(HEADSET.key, 0.0) + 3.0
    head_unit = ANDROID_AUTOMOTIVE_HEAD_UNIT.key
    weights[head_unit] = weights.get(head_unit, 0.0) + 1.0
    return tuple(sorted(weights.items()))


def le_mix() -> Tuple[Tuple[str, float], ...]:
    """Ambient mix with an LE-era accessory crowd layered in.

    Keeps the Table I/II BR/EDR weights of :func:`table_mix` and adds
    dual-mode phones plus LE-only wearables, so a crowd sampled from it
    exercises advertising, SMP pairing and CTKD alongside the classic
    inquiry/page churn.  A separate table (not a change to
    ``table_mix``) so existing presets keep their sampling stream.
    """
    weights = dict(table_mix())
    weights["nexus_5x_dual"] = 2.0
    weights["lg_velvet_dual"] = 1.0
    weights["galaxy_s21_dual"] = 2.0
    weights["generic_fitness_tracker"] = 3.0
    weights["generic_earbuds"] = 3.0
    weights["generic_smart_watch"] = 2.0
    return tuple(sorted(weights.items()))


@dataclass(frozen=True)
class CastMember:
    """One named device built in order before the ambient crowd.

    ``spec`` is normally a catalog key (JSON-able; validated against
    the catalog), but a live :class:`DeviceSpec` is also accepted so
    programmatic casts — hardened/mitigation variants built with
    ``dataclasses.replace`` — flow through the same path.  Live specs
    serialise as their ``key``, so only catalog-backed members
    round-trip through JSON.
    """

    role: str
    spec: Union[str, DeviceSpec]
    connectable: bool = True
    discoverable: bool = True

    def __post_init__(self) -> None:
        if not self.role:
            raise PopulationError("cast member needs a non-empty role")
        if isinstance(self.spec, DeviceSpec):
            return
        try:
            spec_by_key(self.spec)
        except KeyError:
            raise PopulationError(
                f"member {self.role!r}: unknown device key {self.spec!r}"
            ) from None

    def resolved_spec(self) -> DeviceSpec:
        if isinstance(self.spec, DeviceSpec):
            return self.spec
        return spec_by_key(self.spec)

    @property
    def spec_key(self) -> str:
        return self.spec.key if isinstance(self.spec, DeviceSpec) else self.spec

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "role": self.role,
            "spec": self.spec_key,
            "connectable": self.connectable,
            "discoverable": self.discoverable,
        }

    @classmethod
    def from_jsonable(cls, data: Mapping[str, Any]) -> "CastMember":
        if not isinstance(data, Mapping):
            raise PopulationError(f"member must be an object, got {data!r}")
        unknown = set(data) - {"role", "spec", "connectable", "discoverable"}
        if unknown:
            raise PopulationError(
                f"member has unknown fields {sorted(unknown)}"
            )
        if "role" not in data or "spec" not in data:
            raise PopulationError(
                f"member needs 'role' and 'spec': {dict(data)!r}"
            )
        return cls(
            role=data["role"],
            spec=data["spec"],
            connectable=bool(data.get("connectable", True)),
            discoverable=bool(data.get("discoverable", True)),
        )


@dataclass(frozen=True)
class PopulationSpec:
    """One world's inhabitants and their ambient behaviour."""

    name: str = ""
    description: str = ""
    #: named devices built (and powered) in order, before the crowd
    members: Tuple[CastMember, ...] = ()
    #: how many ambient background devices to sample
    size: int = 0
    #: (catalog key, weight) sampling table; empty -> :func:`table_mix`
    mix: Tuple[Tuple[str, float], ...] = ()
    #: settle time simulated after power-on (matches ``standard_cast``)
    settle_s: float = 0.5
    # -- ambient behaviour ------------------------------------------------
    #: fraction of ambient devices that answer inquiries
    discoverable_fraction: float = 0.25
    #: fraction that periodically broadcast inquiries of their own
    inquirer_fraction: float = 0.15
    inquiry_period_s: float = 20.0
    #: inquiry length in 1.28 s units (kept short: ambient, not a scan)
    inquiry_length: int = 2
    #: fraction that run page/connect/disconnect churn with a partner
    talker_fraction: float = 0.3
    connect_period_s: float = 15.0
    #: how long each short-lived piconet session stays up
    session_s: float = 4.0
    #: chance a session runs an SDP query before tearing down
    sdp_probability: float = 0.5

    def __post_init__(self) -> None:
        members = tuple(
            member
            if isinstance(member, CastMember)
            else CastMember.from_jsonable(member)
            for member in self.members
        )
        object.__setattr__(self, "members", members)
        roles = [member.role for member in members]
        if len(set(roles)) != len(roles):
            raise PopulationError(f"duplicate member roles in {roles}")
        if self.size < 0:
            raise PopulationError(f"size must be >= 0, got {self.size}")
        # Normalise the mix to a key-sorted tuple: sampling iterates it
        # in order, so the stored order is part of determinism.
        mix = tuple(
            sorted((str(key), float(weight)) for key, weight in self.mix)
        )
        object.__setattr__(self, "mix", mix)
        seen = set()
        for key, weight in mix:
            if key in seen:
                raise PopulationError(f"duplicate mix key {key!r}")
            seen.add(key)
            try:
                spec_by_key(key)
            except KeyError:
                raise PopulationError(
                    f"unknown device key {key!r} in mix"
                ) from None
            if weight <= 0:
                raise PopulationError(
                    f"mix weight for {key!r} must be > 0, got {weight}"
                )
        if self.size > 0 and not (mix or table_mix()):
            raise PopulationError("ambient devices need a non-empty mix")
        for knob in (
            "discoverable_fraction",
            "inquirer_fraction",
            "talker_fraction",
            "sdp_probability",
        ):
            value = getattr(self, knob)
            if not 0.0 <= value <= 1.0:
                raise PopulationError(f"{knob} {value} outside [0, 1]")
        for knob in ("inquiry_period_s", "connect_period_s", "session_s"):
            if getattr(self, knob) <= 0:
                raise PopulationError(f"{knob} must be > 0")
        if self.settle_s < 0:
            raise PopulationError("settle_s must be >= 0")
        if self.inquiry_length < 1:
            raise PopulationError("inquiry_length must be >= 1")

    # ---------------------------------------------------------------- props

    def __bool__(self) -> bool:
        return bool(self.members) or self.size > 0

    @property
    def total_devices(self) -> int:
        return len(self.members) + self.size

    def resolved_mix(self) -> Tuple[Tuple[str, float], ...]:
        """The sampling table actually used (default when unset)."""
        return self.mix if self.mix else table_mix()

    # ----------------------------------------------------------------- JSON

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "members": [member.to_jsonable() for member in self.members],
            "size": self.size,
            "mix": {key: weight for key, weight in self.mix},
            "settle_s": self.settle_s,
            "discoverable_fraction": self.discoverable_fraction,
            "inquirer_fraction": self.inquirer_fraction,
            "inquiry_period_s": self.inquiry_period_s,
            "inquiry_length": self.inquiry_length,
            "talker_fraction": self.talker_fraction,
            "connect_period_s": self.connect_period_s,
            "session_s": self.session_s,
            "sdp_probability": self.sdp_probability,
        }

    def canonical_json(self) -> str:
        """Byte-stable serialisation for content hashing."""
        return json.dumps(
            self.to_jsonable(), sort_keys=True, separators=(",", ":")
        )

    @classmethod
    def from_jsonable(cls, data: Any) -> "PopulationSpec":
        if not isinstance(data, Mapping):
            raise PopulationError(
                f"population spec must be an object, got "
                f"{type(data).__name__}"
            )
        known = {
            "name", "description", "members", "size", "mix", "settle_s",
            "discoverable_fraction", "inquirer_fraction",
            "inquiry_period_s", "inquiry_length", "talker_fraction",
            "connect_period_s", "session_s", "sdp_probability",
        }
        unknown = set(data) - known
        if unknown:
            raise PopulationError(
                f"population spec has unknown fields {sorted(unknown)}"
            )
        raw_mix = data.get("mix", {})
        if isinstance(raw_mix, Mapping):
            mix = tuple(raw_mix.items())
        elif isinstance(raw_mix, Sequence) and not isinstance(
            raw_mix, (str, bytes)
        ):
            mix = tuple((key, weight) for key, weight in raw_mix)
        else:
            raise PopulationError(
                f"mix must be a mapping or pair list, got {raw_mix!r}"
            )
        kwargs: Dict[str, Any] = {
            "name": str(data.get("name", "")),
            "description": str(data.get("description", "")),
            "members": tuple(data.get("members", ())),
            "size": int(data.get("size", 0)),
            "mix": mix,
        }
        for knob in known - {"name", "description", "members", "size", "mix"}:
            if knob in data:
                kwargs[knob] = (
                    int(data[knob])
                    if knob == "inquiry_length"
                    else float(data[knob])
                )
        return cls(**kwargs)

    @classmethod
    def coerce(
        cls,
        value: Union["PopulationSpec", str, int, Mapping, None],
    ) -> Optional["PopulationSpec"]:
        """Normalise any accepted spelling; ``None``/empty -> ``None``.

        Accepted: a spec, a preset name, a bare device count (the
        default ambient preset scaled to that size), or a JSON-able
        mapping.
        """
        if value is None:
            return None
        if isinstance(value, PopulationSpec):
            return value if value else None
        if isinstance(value, bool):
            raise PopulationError(f"cannot build a population from {value!r}")
        if isinstance(value, int):
            return ambient_spec(value) if value > 0 else None
        if isinstance(value, str):
            if not value:
                return None
            return get_population(value)
        spec = cls.from_jsonable(value)
        return spec if spec else None

    @classmethod
    def from_file(cls, path) -> "PopulationSpec":
        """Load a spec from a JSON file (the ``--population`` format)."""
        with open(path, "r", encoding="utf-8") as handle:
            try:
                data = json.load(handle)
            except json.JSONDecodeError as exc:
                raise PopulationError(
                    f"{path}: invalid JSON: {exc}"
                ) from None
        spec = cls.from_jsonable(data)
        if not spec.name:
            spec = replace(spec, name=str(path))
        return spec


def ambient_spec(size: int, **overrides: Any) -> PopulationSpec:
    """An ambient-only population of ``size`` default-mix devices."""
    if size <= 0:
        raise PopulationError(f"ambient size must be > 0, got {size}")
    kwargs: Dict[str, Any] = {
        "name": f"ambient-{size}",
        "description": f"{size} background devices, Table I/II mix",
        "size": size,
    }
    kwargs.update(overrides)
    return PopulationSpec(**kwargs)


# -------------------------------------------------------------- registry

_POPULATIONS: Dict[str, PopulationSpec] = {}


def register_population(spec: PopulationSpec) -> PopulationSpec:
    """Register a named preset (latest registration wins)."""
    if not spec.name:
        raise PopulationError("presets need a name")
    _POPULATIONS[spec.name] = spec
    return spec


def get_population(name: str) -> PopulationSpec:
    try:
        return _POPULATIONS[name]
    except KeyError:
        known = ", ".join(population_names())
        raise PopulationError(
            f"unknown population {name!r}; known: {known}"
        ) from None


def population_names() -> List[str]:
    return sorted(_POPULATIONS)


#: the paper's three-role cast as a population preset — the single
#: construction path behind ``standard_cast`` (A powers on silent:
#: neither connectable nor discoverable, exactly as the attack needs).
STANDARD_CAST = register_population(
    PopulationSpec(
        name="standard-cast",
        description="the paper's M/C/A trio, no background devices",
        members=(
            CastMember(role="M", spec="lg_velvet_android11"),
            CastMember(role="C", spec="nexus_5x_android8"),
            CastMember(
                role="A",
                spec="nexus_5x_android6",
                connectable=False,
                discoverable=False,
            ),
        ),
    )
)

CAFE = register_population(
    PopulationSpec(
        name="cafe",
        description="a dozen devices: light inquiry and pairing churn",
        size=12,
    )
)

OFFICE_FLOOR = register_population(
    PopulationSpec(
        name="office-floor",
        description="forty devices with steady accessory traffic",
        size=40,
        talker_fraction=0.4,
    )
)

CITY_BLOCK = register_population(
    PopulationSpec(
        name="city-block",
        description="150 devices: dense overlapping piconets",
        size=150,
        discoverable_fraction=0.3,
        inquirer_fraction=0.2,
    )
)

STREET_FAIR = register_population(
    PopulationSpec(
        name="street-fair",
        description="thirty devices incl. dual-mode phones and LE wearables",
        size=30,
        mix=le_mix(),
        discoverable_fraction=0.3,
    )
)

STADIUM = register_population(
    PopulationSpec(
        name="stadium",
        description="500 devices — the scaling-curve stress preset",
        size=500,
        inquirer_fraction=0.1,
        talker_fraction=0.25,
    )
)
