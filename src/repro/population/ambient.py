"""Instantiate populations and drive their ambient traffic.

:func:`populate` is the one construction path for inhabited worlds:
it builds a spec's cast members and sampled ambient crowd in a fixed
order (add everything, power everything, settle), then schedules the
ambient drivers — periodic inquiries, page/connect/disconnect churn
and short-lived SDP piconets — on the world's event loop.

Determinism: the device mix is sampled from one child RNG stream per
population (``population:<prefix>:mix``) and every ambient device
draws its behaviour from its own stream
(``population:<prefix>:dev<i>``), so adding consumers never perturbs
the attack-facing streams and the same seed replays the same crowd,
schedule and traffic byte-for-byte — including across campaign worker
processes.
"""

from __future__ import annotations

from bisect import bisect_right
from itertools import accumulate
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Union

from repro.devices.catalog import spec_by_key
from repro.population.spec import PopulationSpec

if TYPE_CHECKING:
    from repro.attacks.scenario import World
    from repro.devices.device import Device


class _AmbientAgent:
    """One background device's behaviour loops."""

    __slots__ = (
        "population", "device", "rng", "spec",
        "discoverable", "inquirer", "talker", "partner",
        "le_central", "le_partner", "_next",
    )

    def __init__(
        self,
        population: "Population",
        device: "Device",
        rng,
        spec: PopulationSpec,
    ) -> None:
        self.population = population
        self.device = device
        self.rng = rng
        self.spec = spec
        # Fixed draw order — the whole behaviour profile comes from
        # this device's private stream before any traffic starts.
        self.discoverable = rng.random() < spec.discoverable_fraction
        self.inquirer = rng.random() < spec.inquirer_fraction
        self.talker = rng.random() < spec.talker_fraction
        if device.spec.le_only:
            # No BR/EDR host to drive: wearables only advertise and
            # answer LE connections/pairing as peripherals.
            self.inquirer = False
            self.talker = False
        # Dual-mode kinds take one *extra* draw for the LE-central role;
        # classic-only devices keep the historical three-draw profile,
        # so pre-LE presets replay byte-identically.
        self.le_central = (
            device.spec.le_capable and rng.random() < spec.talker_fraction
        )
        self.partner: Optional["Device"] = None
        self.le_partner: Optional["Device"] = None
        self._next: Dict[str, Any] = {}

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Schedule the first ticks (phases drawn from the own stream)."""
        simulator = self.population.world.simulator
        if self.inquirer:
            self._next["inquiry"] = simulator.schedule(
                self.rng.uniform(0.5, self.spec.inquiry_period_s),
                self._inquiry_tick,
            )
        if self.talker and self.partner is not None:
            self._next["connect"] = simulator.schedule(
                self.rng.uniform(1.0, self.spec.connect_period_s),
                self._connect_tick,
            )
        if self.le_central and self.le_partner is not None:
            self._next["le"] = simulator.schedule(
                self.rng.uniform(2.0, self.spec.connect_period_s),
                self._le_tick,
            )

    def cancel(self) -> None:
        for event in self._next.values():
            event.cancel()
        self._next.clear()

    def _jitter(self, period: float) -> float:
        return period * self.rng.uniform(0.8, 1.25)

    # ---------------------------------------------------------------- loops

    def _inquiry_tick(self) -> None:
        population = self.population
        if not population.active:
            return
        self.device.host.gap.start_discovery(
            inquiry_length=self.spec.inquiry_length
        )
        population._m_inquiries.inc()
        self._next["inquiry"] = population.world.simulator.schedule(
            self._jitter(self.spec.inquiry_period_s), self._inquiry_tick
        )

    def _connect_tick(self) -> None:
        population = self.population
        if not population.active:
            return
        gap = self.device.host.gap
        addr = self.partner.bd_addr
        if not gap.is_connected(addr):
            gap.connect(addr)
            population._m_connects.inc()
            self._next["session"] = population.world.simulator.schedule(
                self._jitter(self.spec.session_s), self._session_end
            )
        self._next["connect"] = population.world.simulator.schedule(
            self._jitter(self.spec.connect_period_s), self._connect_tick
        )

    def _session_end(self) -> None:
        population = self.population
        if not population.active:
            return
        gap = self.device.host.gap
        addr = self.partner.bd_addr
        if not gap.is_connected(addr):
            return
        population._m_sessions.inc()
        if self.rng.random() < self.spec.sdp_probability:
            self.device.host.sdp.query(addr)
            self._next["session"] = population.world.simulator.schedule(
                1.0, self._teardown
            )
        else:
            gap.disconnect(addr)

    def _teardown(self) -> None:
        population = self.population
        if not population.active:
            return
        gap = self.device.host.gap
        if gap.is_connected(self.partner.bd_addr):
            gap.disconnect(self.partner.bd_addr)

    # -------------------------------------------------------------- LE loop

    def _le_tick(self) -> None:
        """Short LE sessions: pair once, then reconnect-and-encrypt."""
        population = self.population
        if not population.active:
            return
        ble = self.device.ble
        addr = self.le_partner.bd_addr
        if ble.connection_for(addr) is None:
            ble.connect(addr).on_done(self._le_session_start)
            population._m_le_connects.inc()
        self._next["le"] = population.world.simulator.schedule(
            self._jitter(self.spec.connect_period_s), self._le_tick
        )

    def _le_session_start(self, operation) -> None:
        population = self.population
        if not population.active or not operation.success:
            return
        ble = self.device.ble
        addr = self.le_partner.bd_addr
        if ble.security.le_ltk_for(addr) is None:
            ble.pair(addr).on_done(self._le_session_encrypt)
        else:
            self._le_session_encrypt(operation)

    def _le_session_encrypt(self, operation) -> None:
        population = self.population
        if not population.active or not operation.success:
            return
        ble = self.device.ble
        addr = self.le_partner.bd_addr
        if ble.security.le_ltk_for(addr) is None:
            return
        ble.start_encryption(addr).on_done(self._le_session_traffic)

    def _le_session_traffic(self, operation) -> None:
        population = self.population
        if not population.active:
            return
        if operation.success:
            self.device.ble.send_data(
                self.le_partner.bd_addr, b"ambient le ping"
            )
            population._m_le_sessions.inc()
        self._next["le-end"] = population.world.simulator.schedule(
            self._jitter(self.spec.session_s), self._le_teardown
        )

    def _le_teardown(self) -> None:
        if not self.population.active:
            return
        self.device.ble.disconnect(self.le_partner.bd_addr)


class Population:
    """One instantiated population living inside a world."""

    def __init__(
        self, world: "World", spec: PopulationSpec, prefix: str
    ) -> None:
        self.world = world
        self.spec = spec
        self.prefix = prefix
        self.members: Dict[str, "Device"] = {}
        self.ambient: List["Device"] = []
        self.agents: List[_AmbientAgent] = []
        self.active = True
        metrics = world.obs.metrics
        self._m_devices = metrics.counter("population.devices")
        self._m_inquiries = metrics.counter("population.ambient_inquiries")
        self._m_connects = metrics.counter("population.ambient_connects")
        self._m_sessions = metrics.counter("population.ambient_sessions")
        self._m_le_connects = metrics.counter(
            "population.ambient_le_connects"
        )
        self._m_le_sessions = metrics.counter(
            "population.ambient_le_sessions"
        )

    def role(self, role: str) -> "Device":
        """A cast member by role name (e.g. ``"M"``)."""
        return self.members[role]

    @property
    def devices(self) -> List["Device"]:
        return list(self.members.values()) + self.ambient

    def stop(self) -> None:
        """Quiesce the ambient traffic (pending ticks are cancelled)."""
        self.active = False
        for agent in self.agents:
            agent.cancel()

    def summary(self) -> Dict[str, Any]:
        """A JSON-able, deterministic description of what was built."""
        mix_counts: Dict[str, int] = {}
        for device in self.ambient:
            key = device.spec.key
            mix_counts[key] = mix_counts.get(key, 0) + 1
        return {
            "name": self.spec.name,
            "prefix": self.prefix,
            "members": list(self.members),
            "size": len(self.ambient),
            "inquirers": sum(1 for agent in self.agents if agent.inquirer),
            "talkers": sum(
                1
                for agent in self.agents
                if agent.talker and agent.partner is not None
            ),
            "discoverable": sum(
                1 for agent in self.agents if agent.discoverable
            ),
            "le_devices": sum(
                1 for device in self.ambient if device.spec.has_le
            ),
            "le_centrals": sum(
                1
                for agent in self.agents
                if agent.le_central and agent.le_partner is not None
            ),
            "mix": dict(sorted(mix_counts.items())),
        }


def populate(
    world: "World",
    spec: Union[PopulationSpec, str, int, Dict[str, Any], None],
    *,
    prefix: Optional[str] = None,
) -> Population:
    """Build a population inside ``world`` and start its ambient traffic.

    Construction order is fixed (and matches what ``standard_cast``
    always did): add every device, then power every device on in the
    same order, then settle for ``spec.settle_s`` simulated seconds —
    so re-expressing the cast as a population preset keeps the golden
    Table I/II artifacts byte-identical.

    Composes freely: a world can hold several populations (a
    ``WorldConfig(population=...)`` crowd plus the scenario's cast);
    each gets its own name prefix and RNG streams.
    """
    resolved = PopulationSpec.coerce(spec)
    if resolved is None:
        resolved = PopulationSpec()
    index = len(world.populations)
    if prefix is None:
        prefix = f"bg{index}"
    population = Population(world, resolved, prefix)
    world.populations.append(population)

    for member in resolved.members:
        if member.role in world.devices:
            raise ValueError(
                f"world already has a device named {member.role!r}"
            )
        population.members[member.role] = world.add_device(
            member.role, member.resolved_spec()
        )

    sampled_keys: List[str] = []
    if resolved.size > 0:
        mix = resolved.resolved_mix()
        keys = [key for key, _ in mix]
        cumulative = list(accumulate(weight for _, weight in mix))
        total = cumulative[-1]
        mix_rng = world.rng.stream(f"population:{prefix}:mix")
        for _ in range(resolved.size):
            point = mix_rng.random() * total
            sampled_keys.append(
                keys[min(bisect_right(cumulative, point), len(keys) - 1)]
            )
        for i, key in enumerate(sampled_keys):
            device = world.add_device(
                f"{prefix}-{i:03d}", spec_by_key(key)
            )
            population.ambient.append(device)

    for member in resolved.members:
        population.members[member.role].power_on(
            connectable=member.connectable,
            discoverable=member.discoverable,
        )
    for i, device in enumerate(population.ambient):
        agent = _AmbientAgent(
            population,
            device,
            world.rng.stream(f"population:{prefix}:dev{i:03d}"),
            resolved,
        )
        device.power_on(connectable=True, discoverable=agent.discoverable)
        population.agents.append(agent)

    # Partners are drawn after every ambient device exists, from each
    # talker's own stream, then all first ticks are scheduled.
    count = len(population.ambient)
    le_indices = [
        i
        for i, device in enumerate(population.ambient)
        if device.spec.has_le
    ]
    for i, agent in enumerate(population.agents):
        if agent.talker and count >= 2:
            other = agent.rng.randrange(count - 1)
            if other >= i:
                other += 1
            agent.partner = population.ambient[other]
        if agent.le_central:
            # One extra draw, taken only on LE-capable (new) kinds.
            pool = [j for j in le_indices if j != i]
            if pool:
                agent.le_partner = population.ambient[
                    pool[agent.rng.randrange(len(pool))]
                ]
    for agent in population.agents:
        agent.start()

    population._m_devices.inc(resolved.total_devices)
    if resolved.settle_s > 0:
        world.run_for(resolved.settle_s)
    return population
