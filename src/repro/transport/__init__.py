"""HCI transports: the physical link between host and controller.

The paper's two extraction channels map onto two transports:

* :class:`~repro.transport.uart.UartH4Transport` — UART/H4, the
  controller-type chipset wiring inside phones (tapped by the HCI
  snoop log and by hardware debug ports).
* :class:`~repro.transport.usb.UsbTransport` — USB dongles on PCs
  (tapped by USB analyzers such as 'Free USB Analyzer').

Both transports move *real serialized bytes*, and both expose taps so
dump tools and sniffers capture exactly what real capture equipment
would see.
"""

from repro.transport.base import HciTransport, TransportTap
from repro.transport.uart import UartH4Transport
from repro.transport.usb import UsbSniffer, UsbTransfer, UsbTransport

__all__ = [
    "HciTransport",
    "TransportTap",
    "UartH4Transport",
    "UsbSniffer",
    "UsbTransfer",
    "UsbTransport",
]
