"""Abstract HCI transport with tap (sniffer) support.

A transport connects one host stack to one controller and delivers
serialized packet bytes in both directions with a small configurable
latency.  Taps observe the raw byte flow without interfering — exactly
the property that makes HCI dumping and USB sniffing possible, and thus
exactly the property the link key extraction attack exploits.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.core.errors import TransportError
from repro.hci.packets import HciPacket
from repro.sim.eventloop import Simulator


class Direction(enum.Enum):
    """Which way a packet crossed the transport."""

    HOST_TO_CONTROLLER = "host->controller"
    CONTROLLER_TO_HOST = "controller->host"


# A tap receives (sim_time, direction, raw_bytes).
TransportTap = Callable[[float, Direction, bytes], None]


@dataclass
class TransportFate:
    """A fault injector's verdict on one in-flight wire packet."""

    action: str = "deliver"  # "deliver" | "drop" | "mutate"
    raw: Optional[bytes] = None  # replacement bytes when action == "mutate"
    extra_delay_s: float = 0.0


# Fault injector hook: (now, transport_name, direction, raw) ->
# TransportFate.  Installed by repro.faults; taps and sniffers observe
# the packet as sent — faults corrupt delivery, not transmission.
TransportFaultInjector = Callable[[float, str, Direction, bytes], TransportFate]


class HciTransport:
    """Base transport: serializes packets, delivers bytes, feeds taps."""

    #: one-way latency in seconds (subclasses override)
    LATENCY = 0.0001

    def __init__(self, simulator: Simulator, name: str = "hci0") -> None:
        self.simulator = simulator
        self.name = name
        self._host_receiver: Optional[Callable[[bytes], None]] = None
        self._controller_receiver: Optional[Callable[[bytes], None]] = None
        self._taps: List[TransportTap] = []
        self.packets_sent = 0
        self.fault_injector: Optional[TransportFaultInjector] = None

    def attach_host(self, receiver: Callable[[bytes], None]) -> None:
        """Register the host-side byte receiver."""
        self._host_receiver = receiver

    def attach_controller(self, receiver: Callable[[bytes], None]) -> None:
        """Register the controller-side byte receiver."""
        self._controller_receiver = receiver

    def add_tap(self, tap: TransportTap) -> None:
        """Attach a sniffer; it sees every byte in both directions."""
        self._taps.append(tap)

    def remove_tap(self, tap: TransportTap) -> None:
        self._taps.remove(tap)

    def frame(self, packet: HciPacket) -> bytes:
        """Serialize a packet to this transport's wire framing."""
        return packet.to_h4_bytes()

    def latency_for(self, raw: bytes) -> float:
        """One-way delivery delay for a wire packet (subclass hook)."""
        return self.LATENCY

    def wire_image(self, direction: Direction, raw: bytes) -> bytes:
        """What taps observe on the wire (secure transports encrypt)."""
        return raw

    def send_from_host(self, packet: HciPacket) -> None:
        """Host sends a packet down to the controller."""
        raw = self.frame(packet)
        self._feed_taps(
            Direction.HOST_TO_CONTROLLER,
            self.wire_image(Direction.HOST_TO_CONTROLLER, raw),
        )
        if self._controller_receiver is None:
            raise TransportError(f"{self.name}: no controller attached")
        self.packets_sent += 1
        self._dispatch(
            Direction.HOST_TO_CONTROLLER, raw, self._controller_receiver
        )

    def send_from_controller(self, packet: HciPacket) -> None:
        """Controller sends a packet up to the host."""
        raw = self.frame(packet)
        self._feed_taps(
            Direction.CONTROLLER_TO_HOST,
            self.wire_image(Direction.CONTROLLER_TO_HOST, raw),
        )
        if self._host_receiver is None:
            raise TransportError(f"{self.name}: no host attached")
        self.packets_sent += 1
        self._dispatch(Direction.CONTROLLER_TO_HOST, raw, self._host_receiver)

    def _dispatch(
        self,
        direction: Direction,
        raw: bytes,
        receiver: Callable[[bytes], None],
    ) -> None:
        """Deliver wire bytes, consulting the fault injector if any."""
        delay = self.latency_for(raw)
        if self.fault_injector is not None:
            fate = self.fault_injector(
                self.simulator.now, self.name, direction, raw
            )
            if fate.action == "drop":
                return
            if fate.action == "mutate" and fate.raw is not None:
                raw = fate.raw
            delay += fate.extra_delay_s
        self.simulator.schedule(delay, receiver, raw)

    def _feed_taps(self, direction: Direction, raw: bytes) -> None:
        now = self.simulator.now
        for tap in self._taps:
            tap(now, direction, raw)
