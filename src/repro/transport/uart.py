"""UART H4 transport — the in-phone host↔controller serial link.

H4 framing is simply the packet indicator byte followed by the HCI
packet, which the base class already produces; this subclass models
UART's serialization delay (bytes take time proportional to length at
the configured baud rate), which matters for the timing-sensitive page
blocking experiments.
"""

from __future__ import annotations

from repro.core.errors import TransportError
from repro.sim.eventloop import Simulator
from repro.transport.base import HciTransport


class UartH4Transport(HciTransport):
    """H4 over a simulated UART at a configurable baud rate."""

    def __init__(
        self, simulator: Simulator, name: str = "uart0", baud_rate: int = 3_000_000
    ) -> None:
        super().__init__(simulator, name)
        if baud_rate <= 0:
            raise TransportError("baud rate must be positive")
        self.baud_rate = baud_rate

    def _byte_time(self, num_bytes: int) -> float:
        # 10 bit-times per byte (8 data + start + stop).
        return num_bytes * 10 / self.baud_rate

    def latency_for(self, raw: bytes) -> float:
        return self._byte_time(len(raw))
