"""USB transport for dongle-type controllers, with a sniffable bus.

Per the Bluetooth USB transport specification (Vol 4, Part B):

* HCI commands go out as control transfers on endpoint 0x00,
* HCI events come back on the interrupt IN endpoint 0x81,
* ACL data uses the bulk endpoints 0x02 (OUT) and 0x82 (IN).

A :class:`UsbSniffer` (the simulation stand-in for 'Free USB Analyzer'
or an FTS4USB probe) records the raw transfer stream — including the
idle NULL transfers the paper notes clutter real captures — and the
:mod:`repro.snoop.usb_extract` tools then recover link keys from that
stream exactly the way the paper's Fig. 11 does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.errors import TransportError
from repro.hci.constants import PacketIndicator
from repro.hci.packets import HciPacket
from repro.sim.eventloop import Simulator
from repro.transport.base import Direction, HciTransport

ENDPOINT_CONTROL_OUT = 0x00
ENDPOINT_INTERRUPT_IN = 0x81
ENDPOINT_BULK_OUT = 0x02
ENDPOINT_BULK_IN = 0x82


@dataclass(frozen=True)
class UsbTransfer:
    """One captured USB transfer."""

    timestamp: float
    endpoint: int
    payload: bytes

    @property
    def direction(self) -> str:
        return "IN" if self.endpoint & 0x80 else "OUT"

    def record_bytes(self) -> bytes:
        """Binary on-the-wire record: endpoint, length, payload.

        This is the raw stream an analyzer writes to disk; the paper's
        authors wrote a C converter to turn it into hex text before
        grepping for the ``0b 04 16`` signature.
        """
        return (
            bytes([self.endpoint])
            + len(self.payload).to_bytes(2, "little")
            + self.payload
        )


class UsbTransport(HciTransport):
    """USB HCI transport with endpoint routing and idle NULL traffic."""

    LATENCY = 0.000125  # one microframe

    def __init__(
        self,
        simulator: Simulator,
        name: str = "usb0",
        idle_null_transfers: bool = True,
    ) -> None:
        super().__init__(simulator, name)
        self.idle_null_transfers = idle_null_transfers
        self._transfers: List[UsbTransfer] = []
        self._sniffers: List["UsbSniffer"] = []

    def add_sniffer(self, sniffer: "UsbSniffer") -> None:
        """Physically attach a USB analyzer to the bus."""
        self._sniffers.append(sniffer)

    def _endpoint_for(self, packet: HciPacket, direction: Direction) -> int:
        if packet.indicator == PacketIndicator.COMMAND:
            return ENDPOINT_CONTROL_OUT
        if packet.indicator == PacketIndicator.EVENT:
            return ENDPOINT_INTERRUPT_IN
        if direction is Direction.HOST_TO_CONTROLLER:
            return ENDPOINT_BULK_OUT
        return ENDPOINT_BULK_IN

    def _capture(self, packet: HciPacket, direction: Direction) -> None:
        endpoint = self._endpoint_for(packet, direction)
        # The USB transport does not carry the H4 indicator byte — the
        # endpoint itself identifies the packet type.
        transfer = UsbTransfer(self.simulator.now, endpoint, packet.to_bytes())
        self._transfers.append(transfer)
        for sniffer in self._sniffers:
            sniffer.observe(transfer)
        if self.idle_null_transfers:
            # Interrupt endpoints are polled; idle polls show up as
            # zero-length transfers in real captures.
            null = UsbTransfer(self.simulator.now, ENDPOINT_INTERRUPT_IN, b"")
            self._transfers.append(null)
            for sniffer in self._sniffers:
                sniffer.observe(null)

    def send_from_host(self, packet: HciPacket) -> None:
        self._capture(packet, Direction.HOST_TO_CONTROLLER)
        super().send_from_host(packet)

    def send_from_controller(self, packet: HciPacket) -> None:
        self._capture(packet, Direction.CONTROLLER_TO_HOST)
        super().send_from_controller(packet)

    @property
    def transfers(self) -> List[UsbTransfer]:
        return list(self._transfers)


class UsbSniffer:
    """A passive USB analyzer capturing the raw transfer stream."""

    def __init__(self, name: str = "free-usb-analyzer") -> None:
        self.name = name
        self.transfers: List[UsbTransfer] = []

    def observe(self, transfer: UsbTransfer) -> None:
        self.transfers.append(transfer)

    def raw_stream(self) -> bytes:
        """Concatenated binary records, as saved by the analyzer."""
        return b"".join(transfer.record_bytes() for transfer in self.transfers)

    def attach(self, transport: UsbTransport) -> "UsbSniffer":
        """Convenience: attach to a transport and return self."""
        if not isinstance(transport, UsbTransport):
            raise TransportError("USB sniffers only attach to USB transports")
        transport.add_sniffer(self)
        return self
