"""Persistent bonding storage backends.

Each OS stores bonded link keys differently, and the paper exploits
every one of these paths:

* **Android (bluedroid)** — ``/data/misc/bluedroid/bt_config.conf``, an
  INI-style text file.  The attacker *writes* this file to install fake
  bonding information (paper Fig. 10) built around an extracted key.
* **Linux (BlueZ)** — ``/var/lib/bluetooth/<adapter>/<peer>/info``,
  root-readable INI files that contain the link key directly (paper
  §VI-B1 notes this requires SU).
* **Windows** — registry values under the BTHPORT service key; modelled
  as a binary key-value blob.

All backends serialize real text/bytes into the device's virtual
filesystem, so the attack code manipulates genuine file formats.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.filesystem import VirtualFilesystem
from repro.core.types import BdAddr, LinkKey


@dataclass
class BondingRecord:
    """Everything a host remembers about a bonded peer."""

    addr: BdAddr
    link_key: LinkKey
    key_type: int = 0
    name: str = ""
    services: List[int] = field(default_factory=list)  # 16-bit UUIDs

    def service_uuid_strings(self) -> List[str]:
        """Full 128-bit UUID text forms (Bluetooth base UUID)."""
        return [
            f"{uuid:08x}-0000-1000-8000-00805f9b34fb" for uuid in self.services
        ]


class BondingStore:
    """Base class: a persistent map of peer address → bonding record."""

    def __init__(
        self, filesystem: VirtualFilesystem, path: str, requires_su: bool = False
    ) -> None:
        self.filesystem = filesystem
        self.path = path
        self.requires_su = requires_su

    def save(self, records: Dict[BdAddr, BondingRecord]) -> None:
        self.filesystem.write(
            self.path, self._serialize(records), requires_su=self.requires_su
        )

    def load(self) -> Dict[BdAddr, BondingRecord]:
        if not self.filesystem.exists(self.path):
            return {}
        return self._deserialize(self.filesystem.read(self.path, su=True))

    def _serialize(self, records: Dict[BdAddr, BondingRecord]) -> bytes:
        raise NotImplementedError

    def _deserialize(self, raw: bytes) -> Dict[BdAddr, BondingRecord]:
        raise NotImplementedError


class BtConfigStore(BondingStore):
    """Android bluedroid's ``bt_config.conf`` INI format (paper Fig. 10)."""

    def _serialize(self, records: Dict[BdAddr, BondingRecord]) -> bytes:
        lines: List[str] = []
        for addr in sorted(records):
            record = records[addr]
            lines.append(f"[{addr}]")
            if record.name:
                lines.append(f"Name = {record.name}")
            if record.services:
                lines.append(
                    "Service = " + " ".join(record.service_uuid_strings())
                )
            lines.append(f"LinkKey = {record.link_key.hex()}")
            lines.append(f"LinkKeyType = {record.key_type}")
            lines.append("")
        return "\n".join(lines).encode("utf-8")

    def _deserialize(self, raw: bytes) -> Dict[BdAddr, BondingRecord]:
        records: Dict[BdAddr, BondingRecord] = {}
        current: Optional[BdAddr] = None
        pending: Dict[str, str] = {}

        def flush() -> None:
            if current is None or "LinkKey" not in pending:
                return
            services = [
                int(uuid.split("-", 1)[0], 16)
                for uuid in pending.get("Service", "").split()
                if uuid
            ]
            records[current] = BondingRecord(
                addr=current,
                link_key=LinkKey.parse(pending["LinkKey"]),
                key_type=int(pending.get("LinkKeyType", "0")),
                name=pending.get("Name", ""),
                services=services,
            )

        for line in raw.decode("utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            if line.startswith("[") and line.endswith("]"):
                flush()
                current = BdAddr.parse(line[1:-1])
                pending = {}
            elif "=" in line:
                key, _, value = line.partition("=")
                pending[key.strip()] = value.strip()
        flush()
        return records


class BluezInfoStore(BondingStore):
    """BlueZ ``/var/lib/bluetooth/.../info``-style storage.

    Real BlueZ uses one directory per peer; we serialize all peers into
    one file under the same root path, with per-peer sections matching
    the real ``[LinkKey]`` INI group layout.
    """

    def _serialize(self, records: Dict[BdAddr, BondingRecord]) -> bytes:
        lines: List[str] = []
        for addr in sorted(records):
            record = records[addr]
            lines.append(f"# {self.path}/{str(addr).upper()}/info")
            lines.append("[General]")
            lines.append(f"Name={record.name}")
            lines.append("[LinkKey]")
            lines.append(f"Key={record.link_key.hex().upper()}")
            lines.append(f"Type={record.key_type}")
            lines.append("PINLength=0")
            lines.append("")
        return "\n".join(lines).encode("utf-8")

    def _deserialize(self, raw: bytes) -> Dict[BdAddr, BondingRecord]:
        records: Dict[BdAddr, BondingRecord] = {}
        current: Optional[BdAddr] = None
        name = ""
        for line in raw.decode("utf-8").splitlines():
            line = line.strip()
            if line.startswith("# ") and "/info" in line:
                parts = line[2:].split("/")
                current = BdAddr.parse(parts[-2])
                name = ""
            elif line.startswith("Name=") :
                name = line[5:]
            elif line.startswith("Key=") and current is not None:
                records[current] = BondingRecord(
                    addr=current, link_key=LinkKey.parse(line[4:]), name=name
                )
        return records


class RegistryStore(BondingStore):
    """Windows BTHPORT registry keys, modelled as a binary blob.

    Layout per entry: 6 address bytes + 16 key bytes, repeated — the
    same information the real ``HKLM\\SYSTEM\\...\\BTHPORT\\Parameters\\
    Keys`` values hold.
    """

    def _serialize(self, records: Dict[BdAddr, BondingRecord]) -> bytes:
        blob = bytearray()
        for addr in sorted(records):
            blob += addr.value + records[addr].link_key.value
        return bytes(blob)

    def _deserialize(self, raw: bytes) -> Dict[BdAddr, BondingRecord]:
        records: Dict[BdAddr, BondingRecord] = {}
        for offset in range(0, len(raw), 22):
            chunk = raw[offset : offset + 22]
            if len(chunk) < 22:
                break
            addr = BdAddr(chunk[:6])
            records[addr] = BondingRecord(addr=addr, link_key=LinkKey(chunk[6:22]))
        return records
