"""Persistent bonding storage backends.

Each OS stores bonded link keys differently, and the paper exploits
every one of these paths:

* **Android (bluedroid)** — ``/data/misc/bluedroid/bt_config.conf``, an
  INI-style text file.  The attacker *writes* this file to install fake
  bonding information (paper Fig. 10) built around an extracted key.
* **Linux (BlueZ)** — ``/var/lib/bluetooth/<adapter>/<peer>/info``,
  root-readable INI files that contain the link key directly (paper
  §VI-B1 notes this requires SU).
* **Windows** — registry values under the BTHPORT service key; modelled
  as a binary key-value blob.

All backends serialize real text/bytes into the device's virtual
filesystem, so the attack code manipulates genuine file formats.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.filesystem import VirtualFilesystem
from repro.core.types import BdAddr, LinkKey


@dataclass
class BondingRecord:
    """Everything a host remembers about a bonded peer.

    One record covers both transports of a dual-mode peer: the BR/EDR
    ``link_key`` (``None`` for an LE-only bond) and the LE ``ltk``
    (``None`` for a BR/EDR-only bond).  ``ltk_origin`` records how the
    LTK came to exist — ``"smp"`` for a real LE Secure Connections
    pairing, ``"ctkd"`` when it was derived from the other transport's
    key via h6/h7 — which is exactly the provenance the ``ctkd-anomaly``
    detector keys on.
    """

    addr: BdAddr
    link_key: Optional[LinkKey]
    key_type: int = 0
    name: str = ""
    services: List[int] = field(default_factory=list)  # 16-bit UUIDs
    ltk: Optional[LinkKey] = None
    ltk_origin: str = ""  # "" | "smp" | "ctkd"
    le_association: str = ""  # "" | "just_works" | "numeric_comparison"

    def service_uuid_strings(self) -> List[str]:
        """Full 128-bit UUID text forms (Bluetooth base UUID)."""
        return [
            f"{uuid:08x}-0000-1000-8000-00805f9b34fb" for uuid in self.services
        ]


class BondingStore:
    """Base class: a persistent map of peer address → bonding record."""

    def __init__(
        self, filesystem: VirtualFilesystem, path: str, requires_su: bool = False
    ) -> None:
        self.filesystem = filesystem
        self.path = path
        self.requires_su = requires_su

    def save(self, records: Dict[BdAddr, BondingRecord]) -> None:
        self.filesystem.write(
            self.path, self._serialize(records), requires_su=self.requires_su
        )

    def load(self) -> Dict[BdAddr, BondingRecord]:
        if not self.filesystem.exists(self.path):
            return {}
        return self._deserialize(self.filesystem.read(self.path, su=True))

    def _serialize(self, records: Dict[BdAddr, BondingRecord]) -> bytes:
        raise NotImplementedError

    def _deserialize(self, raw: bytes) -> Dict[BdAddr, BondingRecord]:
        raise NotImplementedError


class BtConfigStore(BondingStore):
    """Android bluedroid's ``bt_config.conf`` INI format (paper Fig. 10)."""

    def _serialize(self, records: Dict[BdAddr, BondingRecord]) -> bytes:
        lines: List[str] = []
        for addr in sorted(records):
            record = records[addr]
            lines.append(f"[{addr}]")
            if record.name:
                lines.append(f"Name = {record.name}")
            if record.services:
                lines.append(
                    "Service = " + " ".join(record.service_uuid_strings())
                )
            if record.link_key is not None:
                lines.append(f"LinkKey = {record.link_key.hex()}")
                lines.append(f"LinkKeyType = {record.key_type}")
            if record.ltk is not None:
                # LE bond material; absent for BR/EDR-only records so
                # their serialization stays byte-identical to pre-LE
                # versions of this format.
                lines.append(f"LeLtk = {record.ltk.hex()}")
                if record.ltk_origin:
                    lines.append(f"LeLtkOrigin = {record.ltk_origin}")
                if record.le_association:
                    lines.append(f"LeAssociation = {record.le_association}")
            lines.append("")
        return "\n".join(lines).encode("utf-8")

    def _deserialize(self, raw: bytes) -> Dict[BdAddr, BondingRecord]:
        records: Dict[BdAddr, BondingRecord] = {}
        current: Optional[BdAddr] = None
        pending: Dict[str, str] = {}

        def flush() -> None:
            if current is None:
                return
            if "LinkKey" not in pending and "LeLtk" not in pending:
                return
            services = [
                int(uuid.split("-", 1)[0], 16)
                for uuid in pending.get("Service", "").split()
                if uuid
            ]
            link_key = (
                LinkKey.parse(pending["LinkKey"]) if "LinkKey" in pending else None
            )
            ltk = LinkKey.parse(pending["LeLtk"]) if "LeLtk" in pending else None
            records[current] = BondingRecord(
                addr=current,
                link_key=link_key,
                key_type=int(pending.get("LinkKeyType", "0")),
                name=pending.get("Name", ""),
                services=services,
                ltk=ltk,
                ltk_origin=pending.get("LeLtkOrigin", ""),
                le_association=pending.get("LeAssociation", ""),
            )

        for line in raw.decode("utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            if line.startswith("[") and line.endswith("]"):
                flush()
                current = BdAddr.parse(line[1:-1])
                pending = {}
            elif "=" in line:
                key, _, value = line.partition("=")
                pending[key.strip()] = value.strip()
        flush()
        return records


class BluezInfoStore(BondingStore):
    """BlueZ ``/var/lib/bluetooth/.../info``-style storage.

    Real BlueZ uses one directory per peer; we serialize all peers into
    one file under the same root path, with per-peer sections matching
    the real ``[LinkKey]`` INI group layout.
    """

    def _serialize(self, records: Dict[BdAddr, BondingRecord]) -> bytes:
        lines: List[str] = []
        for addr in sorted(records):
            record = records[addr]
            lines.append(f"# {self.path}/{str(addr).upper()}/info")
            lines.append("[General]")
            lines.append(f"Name={record.name}")
            if record.link_key is not None:
                lines.append("[LinkKey]")
                lines.append(f"Key={record.link_key.hex().upper()}")
                lines.append(f"Type={record.key_type}")
                lines.append("PINLength=0")
            if record.ltk is not None:
                # Matches BlueZ's real [LongTermKey] info group; only
                # present for peers with an LE bond.
                lines.append("[LongTermKey]")
                lines.append(f"Key={record.ltk.hex().upper()}")
                if record.ltk_origin:
                    lines.append(f"Origin={record.ltk_origin}")
                if record.le_association:
                    lines.append(f"Association={record.le_association}")
            lines.append("")
        return "\n".join(lines).encode("utf-8")

    def _deserialize(self, raw: bytes) -> Dict[BdAddr, BondingRecord]:
        records: Dict[BdAddr, BondingRecord] = {}
        current: Optional[BdAddr] = None
        name = ""
        section = ""
        pending: Dict[str, str] = {}

        def flush() -> None:
            if current is None:
                return
            link_key = (
                LinkKey.parse(pending["LinkKey.Key"])
                if "LinkKey.Key" in pending
                else None
            )
            ltk = (
                LinkKey.parse(pending["LongTermKey.Key"])
                if "LongTermKey.Key" in pending
                else None
            )
            if link_key is None and ltk is None:
                return
            records[current] = BondingRecord(
                addr=current,
                link_key=link_key,
                key_type=int(pending.get("LinkKey.Type", "0")),
                name=name,
                ltk=ltk,
                ltk_origin=pending.get("LongTermKey.Origin", ""),
                le_association=pending.get("LongTermKey.Association", ""),
            )

        for line in raw.decode("utf-8").splitlines():
            line = line.strip()
            if line.startswith("# ") and "/info" in line:
                flush()
                parts = line[2:].split("/")
                current = BdAddr.parse(parts[-2])
                name = ""
                section = ""
                pending = {}
            elif line.startswith("[") and line.endswith("]"):
                section = line[1:-1]
            elif line.startswith("Name=") and section == "General":
                name = line[5:]
            elif "=" in line and current is not None and section:
                key, _, value = line.partition("=")
                pending[f"{section}.{key.strip()}"] = value.strip()
        flush()
        return records


class RegistryStore(BondingStore):
    """Windows BTHPORT registry keys, modelled as a binary blob.

    Layout per entry: 6 address bytes + 16 key bytes, repeated — the
    same information the real ``HKLM\\SYSTEM\\...\\BTHPORT\\Parameters\\
    Keys`` values hold.  The fixed 22-byte stride is BR/EDR-only by
    design (real BTHPORT keeps LE keys elsewhere), so LE-only bonds are
    simply not persisted here.
    """

    def _serialize(self, records: Dict[BdAddr, BondingRecord]) -> bytes:
        blob = bytearray()
        for addr in sorted(records):
            if records[addr].link_key is None:
                continue
            blob += addr.value + records[addr].link_key.value
        return bytes(blob)

    def _deserialize(self, raw: bytes) -> Dict[BdAddr, BondingRecord]:
        records: Dict[BdAddr, BondingRecord] = {}
        for offset in range(0, len(raw), 22):
            chunk = raw[offset : offset + 22]
            if len(chunk) < 22:
                break
            addr = BdAddr(chunk[:6])
            records[addr] = BondingRecord(addr=addr, link_key=LinkKey(chunk[6:22]))
        return records
