"""Asynchronous host operations with pollable results.

The simulation is callback-driven, but tests and attack scripts read
much better with future-like handles: start an operation, run the
simulator, then inspect ``op.done`` / ``op.success`` / ``op.result``.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional


class Operation:
    """A pollable async operation (connect, pair, discovery, ...)."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self.done = False
        self.status: Optional[int] = None
        self.result: Any = None
        self._callbacks: List[Callable[["Operation"], None]] = []

    @property
    def success(self) -> bool:
        return self.done and self.status == 0

    def complete(self, status: int = 0, result: Any = None) -> None:
        """Resolve the operation (idempotent)."""
        if self.done:
            return
        self.done = True
        self.status = status
        self.result = result
        for callback in self._callbacks:
            callback(self)

    def fail(self, status: int) -> None:
        self.complete(status=status)

    def on_done(self, callback: Callable[["Operation"], None]) -> None:
        """Register a completion callback (fires immediately if done)."""
        if self.done:
            callback(self)
        else:
            self._callbacks.append(callback)

    def __repr__(self) -> str:
        state = "done" if self.done else "pending"
        return f"Operation({self.kind}, {state}, status={self.status})"
