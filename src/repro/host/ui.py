"""The scripted user model.

The page blocking attack's end game is social, not cryptographic: a
confirmation popup appears on the victim's phone *immediately after
the victim themselves tapped "pair"*, so they accept it (paper §V-B2).
The model captures exactly that reasoning:

* The user accepts a pairing confirmation if and only if they have a
  live pairing intent (they initiated a pairing moments ago) — the
  popup gives them no way to tell which device is on the other end.
* Unexpected popups (no intent) are rejected, which is why the naive
  attacker-initiated pairing in §V-B1 fails and the attack needs the
  victim to stay the pairing initiator.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.core.types import BdAddr


class UserModel:
    """Decides pairing confirmations the way the paper's victims do."""

    #: how long a pairing intent stays "fresh" (seconds)
    INTENT_WINDOW = 30.0

    def __init__(
        self,
        rng: Optional[random.Random] = None,
        reaction_time: float = 0.8,
        paranoid: bool = False,
    ) -> None:
        self._rng = rng or random.Random(0)
        self.reaction_time = reaction_time
        #: a paranoid user rejects every Just Works popup — models the
        #: mitigation-aware user for the ablation benchmarks
        self.paranoid = paranoid
        self._intent_addr: Optional[BdAddr] = None
        self._intent_time: Optional[float] = None
        self.popups_seen = 0
        self.popups_accepted = 0
        #: the 6-digit passkey currently shown on *this* device's screen
        self.displayed_passkey: Optional[int] = None
        #: the user standing next to this one (whose screen they can read)
        self.peer_user: Optional["UserModel"] = None
        #: the PIN this user types for legacy pairing (None = refuses)
        self.pin_code: Optional[str] = None

    def note_pairing_initiated(self, addr: BdAddr, now: float) -> None:
        """The user just tapped 'pair' on a device they believe is ``addr``."""
        self._intent_addr = addr
        self._intent_time = now

    def clear_intent(self) -> None:
        self._intent_addr = None
        self._intent_time = None

    def has_intent(self, now: float) -> bool:
        return (
            self._intent_time is not None
            and now - self._intent_time <= self.INTENT_WINDOW
        )

    def decide_confirmation(
        self,
        addr: BdAddr,
        numeric_value: Optional[int],
        now: float,
    ) -> bool:
        """Accept or reject a confirmation popup.

        ``addr`` is the *claimed* peer address — under a spoofing
        attack it matches the device the user intended, so intent-based
        acceptance goes through.  Even when the addresses differ the
        user cannot see them (popups show device names, and the
        attacker clones those too), so only intent and timing matter.
        """
        self.popups_seen += 1
        if self.paranoid and numeric_value is None:
            # No confirmation value shown: a cautious user refuses.
            return False
        accepted = self.has_intent(now)
        if accepted:
            self.popups_accepted += 1
        return accepted

    def decision_delay(self) -> float:
        """How long the user takes to tap the popup."""
        return self.reaction_time * self._rng.uniform(0.6, 1.8)

    # ------------------------------------------------------- passkey entry

    def show_passkey(self, value: int) -> None:
        """The device displays a 6-digit passkey to this user."""
        self.displayed_passkey = value

    def read_peer_passkey(self, now: float) -> Optional[int]:
        """Type the passkey shown on the *other* device's screen.

        Only works when the user is physically next to the peer device
        (``peer_user`` wired by the scenario) and actually intends to
        pair — a remote MITM cannot see the display, which is exactly
        the property that makes Passkey Entry MITM-resistant.
        """
        if not self.has_intent(now):
            return None
        if self.peer_user is None:
            return None
        return self.peer_user.displayed_passkey

    def typing_delay(self) -> float:
        """How long the user takes to type six digits."""
        return self.reaction_time * self._rng.uniform(2.0, 4.0)
