"""MAP — Message Access Profile (the other §III target service).

Serves the device's SMS store over an authentication-gated L2CAP
channel.  Same simplification as PBAP: real MAP is OBEX/RFCOMM; we
keep the payloads (bMessage-style records) and the security gating.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.types import BdAddr
from repro.host.l2cap import L2capChannel, L2capService
from repro.host.operations import Operation

PSM_MAP = 0x1003

_REQUEST_LIST = b"MAP-GET-LISTING\r\n"


@dataclass(frozen=True)
class Message:
    """One stored SMS."""

    sender: str
    body: str

    def to_bmessage(self) -> str:
        return (
            "BEGIN:BMSG\r\n"
            "VERSION:1.0\r\n"
            f"FROM:{self.sender}\r\n"
            f"BODY:{self.body}\r\n"
            "END:BMSG\r\n"
        )

    @classmethod
    def from_bmessage(cls, text: str) -> "Message":
        sender = body = ""
        for line in text.splitlines():
            if line.startswith("FROM:"):
                sender = line[5:]
            elif line.startswith("BODY:"):
                body = line[5:]
        return cls(sender=sender, body=body)


def parse_bmessages(payload: bytes) -> List[Message]:
    text = payload.decode("utf-8", errors="replace")
    messages = []
    for chunk in text.split("BEGIN:BMSG"):
        if "END:BMSG" in chunk:
            messages.append(Message.from_bmessage("BEGIN:BMSG" + chunk))
    return messages


@dataclass
class MapProfile:
    """MAP server (MSE) + client (MCE) for one host."""

    host: object
    messages: List[Message] = field(default_factory=list)
    listings_served: int = 0

    def __post_init__(self) -> None:
        self.host.l2cap.register_service(
            L2capService(
                psm=PSM_MAP,
                requires_authentication=True,
                on_data=self._on_server_data,
            )
        )

    def load_messages(self, messages: List[Message]) -> None:
        self.messages = list(messages)

    def _on_server_data(self, channel: L2capChannel, payload: bytes) -> None:
        if payload != _REQUEST_LIST:
            return
        self.listings_served += 1
        body = "".join(message.to_bmessage() for message in self.messages)
        self.host.l2cap.send(channel, body.encode("utf-8"))

    def list_messages(self, addr: BdAddr) -> Operation:
        """Download the peer's message listing (authentication enforced)."""
        operation = Operation("map-listing")

        def on_data(channel: L2capChannel, payload: bytes) -> None:
            operation.complete(result=parse_bmessages(payload))
            self.host.l2cap.disconnect(channel)

        def on_channel(op: Operation) -> None:
            if not op.success:
                operation.fail(op.status)
                return
            self.host.l2cap.send(op.result, _REQUEST_LIST)

        def start(connect_op: Optional[Operation]) -> None:
            if connect_op is not None and not connect_op.success:
                operation.fail(connect_op.status)
                return
            self.host.l2cap.connect(addr, PSM_MAP, on_data=on_data).on_done(
                on_channel
            )

        if self.host.gap.is_connected(addr):
            start(None)
        else:
            self.host.gap.connect(addr).on_done(start)
        return operation
