"""The host stack: event dispatch, per-vendor profiles, attack hooks.

:class:`HostStack` is the analogue of bluedroid's ``btu`` layer: one
callback (:meth:`_process`, mirroring ``btu_hcif_process_event``)
receives every HCI event and routes it to GAP / security / L2CAP.

Two deliberately exposed hooks model the paper's source patches:

* ``drop_link_key_requests`` (Fig. 9) — comment out the
  ``HCI_LINK_KEY_REQUEST`` handler: the host silently ignores the
  controller's key request, the LMP exchange stalls, and the *peer*
  drops the link by timeout, with no authentication failure.
* :meth:`hold_events` (Fig. 13) — postpone all HCI event processing
  for a fixed duration: the controller-level connection completes but
  the host never advances to the host-layer connection — the PLOC
  state of the page blocking attack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.core.errors import HciError
from repro.core.types import (
    AuthenticationRequirements,
    BluetoothVersion,
    IoCapability,
)
from repro.hci import commands as cmd
from repro.hci import events as evt
from repro.hci.constants import EventCode
from repro.hci.packets import HciAclData, HciCommand, HciEvent
from repro.hci.parser import parse_packet
from repro.host.gap import Gap
from repro.host.l2cap import L2cap
from repro.host.hfp import HfpProfile
from repro.host.map_profile import MapProfile
from repro.host.pan import PanProfile
from repro.host.pbap import PbapProfile
from repro.host.sdp import (
    SdpServer,
    ServiceRecord,
    UUID_MAP,
    UUID_NAP,
    UUID_PANU,
    UUID_PBAP_PSE,
)
from repro.host.security import SecurityManager
from repro.host.storage import BondingStore
from repro.host.ui import UserModel
from repro.sim.eventloop import Simulator
from repro.sim.trace import Tracer
from repro.transport.base import HciTransport

if TYPE_CHECKING:
    from repro.obs import Observability
    from repro.obs.spans import Span


@dataclass(frozen=True)
class StackProfile:
    """Vendor-specific host stack properties the attacks care about."""

    name: str  # bluedroid | bluez | microsoft | csr_harmony | ios
    hci_snoop_supported: bool
    snoop_requires_su: bool  # is the log path itself SU-protected?
    snoop_extractable_without_su: bool  # e.g. Android bug report
    storage_format: str  # bt_config | bluez_info | registry
    storage_requires_su: bool

    BLUEDROID = None  # type: StackProfile
    BLUEZ = None  # type: StackProfile
    MICROSOFT = None  # type: StackProfile
    CSR_HARMONY = None  # type: StackProfile
    IOS = None  # type: StackProfile


StackProfile.BLUEDROID = StackProfile(
    name="bluedroid",
    hci_snoop_supported=True,
    snoop_requires_su=True,  # /data/misc/bluetooth/logs is protected...
    snoop_extractable_without_su=True,  # ...but the bug report copies it out
    storage_format="bt_config",
    storage_requires_su=True,
)
StackProfile.BLUEZ = StackProfile(
    name="bluez",
    hci_snoop_supported=True,  # bluez-hcidump package
    snoop_requires_su=True,
    snoop_extractable_without_su=False,  # hcidump itself needs root
    storage_format="bluez_info",
    storage_requires_su=True,
)
StackProfile.MICROSOFT = StackProfile(
    name="microsoft",
    hci_snoop_supported=False,  # no HCI dump: USB sniffing instead
    snoop_requires_su=False,
    snoop_extractable_without_su=False,
    storage_format="registry",
    storage_requires_su=True,
)
StackProfile.CSR_HARMONY = StackProfile(
    name="csr_harmony",
    hci_snoop_supported=False,
    snoop_requires_su=False,
    snoop_extractable_without_su=False,
    storage_format="registry",
    storage_requires_su=True,
)
StackProfile.IOS = StackProfile(
    name="ios",
    hci_snoop_supported=False,  # no user-accessible HCI dump
    snoop_requires_su=False,
    snoop_extractable_without_su=False,
    storage_format="registry",
    storage_requires_su=True,
)


class HostStack:
    """One device's Bluetooth host."""

    def __init__(
        self,
        simulator: Simulator,
        transport: HciTransport,
        profile: StackProfile,
        name: str,
        version: BluetoothVersion,
        io_capability: IoCapability = IoCapability.DISPLAY_YES_NO,
        user: Optional[UserModel] = None,
        store: Optional[BondingStore] = None,
        tracer: Optional[Tracer] = None,
        obs: Optional["Observability"] = None,
    ) -> None:
        self.simulator = simulator
        self.transport = transport
        self.profile = profile
        self.name = name
        self.version = version
        self.io_capability = io_capability
        self.auth_requirements = AuthenticationRequirements.MITM_GENERAL_BONDING
        self.user = user or UserModel()
        self.store = store
        self.tracer = tracer if tracer is not None else Tracer()
        self.obs = obs
        if obs is not None:
            metrics = obs.metrics
        else:
            from repro.obs.metrics import get_global_registry

            metrics = get_global_registry()
        self._m_events_processed = metrics.counter("host.events_processed")
        self._m_commands_sent = metrics.counter("host.commands_sent")
        self._m_events_held = metrics.counter("host.events_held")
        self._m_malformed = metrics.counter("host.malformed_packets")
        self._ploc_span: Optional["Span"] = None

        #: host-level Secure Simple Pairing support; a pre-2.1 stack
        #: sets this False and pairs with the legacy PIN procedure
        self.ssp_enabled = True
        # Attack hooks (see module docstring).
        self.drop_link_key_requests = False
        self._hold_until: Optional[float] = None
        self._held: List[bytes] = []

        self.security = SecurityManager(self)
        self.gap = Gap(self)
        self.l2cap = L2cap(self)
        self.sdp = SdpServer(self)
        self.pan = PanProfile(self)
        self.pbap = PbapProfile(self)
        self.map = MapProfile(self)
        self.hfp = HfpProfile(self)
        self.sdp.register(ServiceRecord(UUID_PANU, "Personal Ad-hoc Network"))
        self.sdp.register(ServiceRecord(UUID_NAP, "Network Access Point"))
        self.sdp.register(ServiceRecord(UUID_PBAP_PSE, "Phonebook Access PSE"))
        self.sdp.register(ServiceRecord(UUID_MAP, "Message Access Server"))

        transport.attach_host(self._on_bytes)
        self.events_processed = 0
        self._cc_waiters: Dict[int, List[Callable[[bytes], None]]] = {}

    # -------------------------------------------------------------- sending

    def send_command(self, command: HciCommand) -> None:
        self._m_commands_sent.inc()
        self.tracer.emit(
            self.simulator.now, self.name, "host-cmd", command.display_name
        )
        self.transport.send_from_host(command)

    def send_acl(self, handle: int, payload: bytes) -> None:
        self.transport.send_from_host(HciAclData(handle, payload))

    def send_command_expect_complete(
        self, command: HciCommand, callback: Callable[[bytes], None]
    ) -> None:
        """Send a command and deliver its Command_Complete return params."""
        self._cc_waiters.setdefault(command.opcode, []).append(callback)
        self.send_command(command)

    def read_local_oob(self, callback: Callable[[bytes, bytes], None]) -> None:
        """Fetch the local OOB (C, R) pair for out-of-band transfer."""

        def on_complete(params: bytes) -> None:
            callback(params[1:17], params[17:33])

        self.send_command_expect_complete(cmd.ReadLocalOobData(), on_complete)

    # ---------------------------------------------------------- PLOC / hold

    def hold_events(self, duration: float) -> None:
        """Postpone all HCI event processing (the Fig. 13 PLOC PoC)."""
        self._hold_until = self.simulator.now + duration
        self.tracer.emit(
            self.simulator.now,
            self.name,
            "ploc",
            f"postponing HCI event processing for {duration:.1f}s",
        )
        if self.obs is not None and self._ploc_span is None:
            self._ploc_span = self.obs.spans.begin(
                "ploc_hold", source=self.name, duration_s=duration
            )
        self.simulator.schedule(duration, self._flush_held)

    @property
    def holding(self) -> bool:
        return (
            self._hold_until is not None and self.simulator.now < self._hold_until
        )

    def restart(self) -> None:
        """Fault hook (host.stack_restart): Bluetooth off/on.

        Volatile state — held events, pending Command_Complete
        waiters, an open PLOC hold — is dropped on the floor, and the
        key database reloads from persistent bonding storage.
        """
        self.tracer.emit(
            self.simulator.now,
            self.name,
            "host-restart",
            f"stack restart: {len(self._held)} held events dropped, "
            "bonds reloaded",
        )
        self._hold_until = None
        self._held.clear()
        if self._ploc_span is not None and self.obs is not None:
            self.obs.spans.finish(self._ploc_span)
            self._ploc_span = None
        self._cc_waiters.clear()
        self.security.reload_from_store()

    def _flush_held(self) -> None:
        if self.holding:
            return  # a later hold_events() call extended the window
        self._hold_until = None
        if self._ploc_span is not None and self.obs is not None:
            self._ploc_span.set_attr("events_held", len(self._held))
            self.obs.spans.finish(self._ploc_span)
            self._ploc_span = None
        held, self._held = self._held, []
        for raw in held:
            self._process(raw)

    # ------------------------------------------------------------ receiving

    def _on_bytes(self, raw: bytes) -> None:
        if self.holding:
            self._m_events_held.inc()
            self._held.append(raw)
            return
        self._process(raw)

    def _process(self, raw: bytes) -> None:
        """The btu_hcif_process_event analogue."""
        # Truncated or garbled transport deliveries (see repro.faults)
        # surface as parse failures; a stack drops those instead of
        # crashing the event loop.
        try:
            packet = parse_packet(raw[0], raw[1:]) if raw else None
        except (HciError, IndexError):
            packet = None
        if packet is None:
            self._m_malformed.inc()
            self.tracer.emit(
                self.simulator.now,
                self.name,
                "host-err",
                f"malformed HCI packet dropped ({len(raw)} bytes)",
            )
            return
        self.events_processed += 1
        self._m_events_processed.inc()
        if isinstance(packet, HciAclData):
            self.l2cap.on_acl(packet)
            return
        if not isinstance(packet, HciEvent):
            return
        self.tracer.emit(
            self.simulator.now, self.name, "host-evt", packet.display_name
        )
        if packet.event_code == EventCode.LINK_KEY_REQUEST:
            if self.drop_link_key_requests:
                # Fig. 9: btu_hcif_link_key_request_evt() commented out.
                self.tracer.emit(
                    self.simulator.now,
                    self.name,
                    "patch",
                    "dropping HCI_Link_Key_Request (Fig. 9 patch)",
                )
                return
            self.security.on_link_key_request(packet)
            return
        handler = self._EVENT_HANDLERS.get(packet.event_code)
        if handler is not None:
            handler(self, packet)

    # Event routing table (bound below).
    _EVENT_HANDLERS: Dict[int, Callable] = {}

    def _route_connection_request(self, event: evt.ConnectionRequest) -> None:
        self.gap.on_connection_request(event)

    def _route_connection_complete(self, event: evt.ConnectionComplete) -> None:
        self.gap.on_connection_complete(event)

    def _route_disconnection_complete(
        self, event: evt.DisconnectionComplete
    ) -> None:
        self.gap.on_disconnection_complete(event)

    def _route_authentication_complete(
        self, event: evt.AuthenticationComplete
    ) -> None:
        self.gap.on_authentication_complete(event)

    def _route_encryption_change(self, event: evt.EncryptionChange) -> None:
        self.gap.on_encryption_change(event)

    def _route_inquiry_result(self, event: evt.InquiryResult) -> None:
        self.gap.on_inquiry_result(event)

    def _route_extended_inquiry_result(
        self, event: evt.ExtendedInquiryResult
    ) -> None:
        self.gap.on_extended_inquiry_result(event)

    def _route_inquiry_complete(self, event: evt.InquiryComplete) -> None:
        self.gap.on_inquiry_complete(event)

    def _route_remote_name(self, event: evt.RemoteNameRequestComplete) -> None:
        self.gap.on_remote_name_complete(event)

    def _route_command_status(self, event: evt.CommandStatus) -> None:
        self.gap.on_command_status(event)

    def _route_command_complete(self, event: evt.CommandComplete) -> None:
        waiters = self._cc_waiters.get(event.command_opcode)
        if waiters:
            waiters.pop(0)(event.return_parameters)

    def _route_remote_oob_data_request(
        self, event: evt.RemoteOobDataRequest
    ) -> None:
        self.security.on_remote_oob_data_request(event)

    def _route_synchronous_connection_complete(
        self, event: evt.SynchronousConnectionComplete
    ) -> None:
        self.hfp.on_sco_complete(event)

    def _route_pin_code_request(self, event: evt.PinCodeRequest) -> None:
        self.security.on_pin_code_request(event)

    def _route_io_capability_request(self, event: evt.IoCapabilityRequest) -> None:
        self.security.on_io_capability_request(event)

    def _route_io_capability_response(
        self, event: evt.IoCapabilityResponse
    ) -> None:
        self.security.on_io_capability_response(event)

    def _route_user_confirmation_request(
        self, event: evt.UserConfirmationRequest
    ) -> None:
        self.security.on_user_confirmation_request(event)

    def _route_user_passkey_request(self, event: evt.UserPasskeyRequest) -> None:
        self.security.on_user_passkey_request(event)

    def _route_user_passkey_notification(
        self, event: evt.UserPasskeyNotification
    ) -> None:
        self.security.on_user_passkey_notification(event)

    def _route_link_key_notification(self, event: evt.LinkKeyNotification) -> None:
        self.security.on_link_key_notification(event)

    def _route_simple_pairing_complete(
        self, event: evt.SimplePairingComplete
    ) -> None:
        self.security.on_simple_pairing_complete(event)

    # ------------------------------------------------------------ power-on

    def initialize(
        self,
        local_name: Optional[str] = None,
        class_of_device: Optional[int] = None,
        connectable: bool = True,
        discoverable: bool = True,
    ) -> None:
        """Send the usual power-on configuration command batch."""
        self.send_command(cmd.SetEventMask(event_mask=b"\xff" * 8))
        self.send_command(
            cmd.WriteSimplePairingMode(simple_pairing_mode=int(self.ssp_enabled))
        )
        if local_name is not None:
            self.send_command(cmd.WriteLocalName(local_name=local_name))
        if class_of_device is not None:
            self.send_command(
                cmd.WriteClassOfDevice(class_of_device=class_of_device)
            )
        self.gap.set_scan_mode(connectable=connectable, discoverable=discoverable)


HostStack._EVENT_HANDLERS = {
    EventCode.CONNECTION_REQUEST: HostStack._route_connection_request,
    EventCode.CONNECTION_COMPLETE: HostStack._route_connection_complete,
    EventCode.DISCONNECTION_COMPLETE: HostStack._route_disconnection_complete,
    EventCode.AUTHENTICATION_COMPLETE: HostStack._route_authentication_complete,
    EventCode.ENCRYPTION_CHANGE: HostStack._route_encryption_change,
    EventCode.INQUIRY_RESULT: HostStack._route_inquiry_result,
    EventCode.EXTENDED_INQUIRY_RESULT: HostStack._route_extended_inquiry_result,
    EventCode.INQUIRY_COMPLETE: HostStack._route_inquiry_complete,
    EventCode.REMOTE_NAME_REQUEST_COMPLETE: HostStack._route_remote_name,
    EventCode.COMMAND_STATUS: HostStack._route_command_status,
    EventCode.COMMAND_COMPLETE: HostStack._route_command_complete,
    EventCode.REMOTE_OOB_DATA_REQUEST: HostStack._route_remote_oob_data_request,
    EventCode.SYNCHRONOUS_CONNECTION_COMPLETE: (
        HostStack._route_synchronous_connection_complete
    ),
    EventCode.PIN_CODE_REQUEST: HostStack._route_pin_code_request,
    EventCode.IO_CAPABILITY_REQUEST: HostStack._route_io_capability_request,
    EventCode.IO_CAPABILITY_RESPONSE: HostStack._route_io_capability_response,
    EventCode.USER_CONFIRMATION_REQUEST: HostStack._route_user_confirmation_request,
    EventCode.USER_PASSKEY_REQUEST: HostStack._route_user_passkey_request,
    EventCode.USER_PASSKEY_NOTIFICATION: HostStack._route_user_passkey_notification,
    EventCode.LINK_KEY_NOTIFICATION: HostStack._route_link_key_notification,
    EventCode.SIMPLE_PAIRING_COMPLETE: HostStack._route_simple_pairing_complete,
}
