"""The host security manager: bonded keys, pairing policy, popups.

This component owns the link key database — the asset the paper's
first attack steals.  Every time the controller re-authenticates a
bonded peer it asks this component for the key, and the plaintext
``HCI_Link_Key_Request_Reply`` it sends back is what lands in the HCI
dump.

It also implements the host side of SSP: answering the IO capability
request (the downgrade knob), deciding when to show a confirmation
popup (the Fig. 7 version-dependent policy) and consulting the
:class:`~repro.host.ui.UserModel` for the Yes/No decision.

Key deletion policy (paper §IV-C): a key is removed when an
authentication completes with ``AUTHENTICATION_FAILURE`` or
``PIN_OR_KEY_MISSING`` — but *not* on an LMP response timeout, which is
exactly why the extraction attack drops the link by timeout instead of
failing the challenge.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Optional, Set, Tuple

from repro.core.types import BdAddr, IoCapability, LinkKey
from repro.hci import commands as cmd
from repro.hci import events as evt
from repro.hci.constants import ErrorCode
from repro.host.iocap import ConfirmationBehavior, confirmation_behavior
from repro.host.storage import BondingRecord, BondingStore


class SecurityManager:
    """Key database + SSP host logic for one host stack."""

    def __init__(self, host) -> None:
        self.host = host
        self._store: Optional[BondingStore] = host.store
        self.keys: Dict[BdAddr, BondingRecord] = (
            self._store.load() if self._store else {}
        )
        self._pairing_initiator: Set[BdAddr] = set()
        self._remote_io: Dict[BdAddr, int] = {}
        self.link_keys_served = 0
        self.keys_deleted = 0
        #: §VII-B mitigation: refuse pairings where we initiated the
        #: *pairing* but the peer initiated the *connection* and claims
        #: NoInputNoOutput — the page blocking signature.
        self.page_blocking_guard = False
        self.guard_rejections = 0
        #: online-detection response hook (see
        #: :meth:`repro.detect.DetectionEngine.install_response`):
        #: called with the peer address before any confirmation is
        #: answered; a non-``None`` reason string vetoes the pairing.
        self.pairing_veto: Optional[Callable[[BdAddr], Optional[str]]] = None
        self.veto_rejections = 0
        #: out-of-band (C, R) data received per peer (e.g. via NFC)
        self.peer_oob: Dict[BdAddr, Tuple[bytes, bytes]] = {}

    # ---------------------------------------------------------------- bonds

    def bond_for(self, addr: BdAddr) -> Optional[BondingRecord]:
        return self.keys.get(addr)

    def is_bonded(self, addr: BdAddr) -> bool:
        return addr in self.keys

    def add_bond(self, record: BondingRecord) -> None:
        self.keys[record.addr] = record
        self._persist()

    def remove_bond(self, addr: BdAddr) -> None:
        if addr in self.keys:
            del self.keys[addr]
            self.keys_deleted += 1
            self._persist()

    def le_ltk_for(self, addr: BdAddr) -> Optional[LinkKey]:
        """The LE LTK bonded with ``addr``, if any."""
        record = self.keys.get(addr)
        return record.ltk if record is not None else None

    def set_le_bond(
        self,
        addr: BdAddr,
        ltk: LinkKey,
        origin: str,
        association: str = "",
        name: str = "",
    ) -> BondingRecord:
        """Store (or merge into an existing bond) LE bond material.

        The LE side of a dual-mode peer lands in the *same*
        :class:`~repro.host.storage.BondingRecord` as its BR/EDR link
        key — unified storage is what makes cross-transport overwrite
        visible to forensics.  Returns the stored record.
        """
        existing = self.keys.get(addr)
        if existing is not None:
            record = dataclasses.replace(
                existing,
                ltk=ltk,
                ltk_origin=origin,
                le_association=association or existing.le_association,
                name=existing.name or name,
            )
        else:
            record = BondingRecord(
                addr=addr,
                link_key=None,
                name=name,
                ltk=ltk,
                ltk_origin=origin,
                le_association=association,
            )
        self.keys[addr] = record
        self._persist()
        return record

    def reload_from_store(self) -> None:
        """Re-read bonding storage — models a Bluetooth off/on cycle
        after the attacker edited bt_config.conf (paper §VI-B1 step 3)."""
        if self._store is not None:
            self.keys = self._store.load()

    def _persist(self) -> None:
        if self._store is not None:
            self._store.save(self.keys)

    # --------------------------------------------------------- fault hooks

    def corrupt_bonds(self, rng) -> int:
        """Fault hook (host.bond_corrupt): trash every stored key.

        Each bonded link key is overwritten with random bytes drawn
        from the fault stream and persisted, as a damaged bt_config /
        registry would be.  Returns the number of bonds touched.
        """
        for addr in list(self.keys):
            record = self.keys[addr]
            if record.link_key is None:
                continue
            garbage = LinkKey(bytes(rng.randrange(256) for _ in range(16)))
            self.keys[addr] = dataclasses.replace(record, link_key=garbage)
        self._persist()
        return len(self.keys)

    def drop_all_bonds(self) -> int:
        """Fault hook (host.bond_loss): the bonding store is gone.

        Empties both the live database and persistent storage; every
        peer must re-pair.  Returns the number of bonds dropped.
        """
        dropped = len(self.keys)
        self.keys.clear()
        self.keys_deleted += dropped
        self._persist()
        return dropped

    # ------------------------------------------------------------ HCI events

    def on_link_key_request(self, event: evt.LinkKeyRequest) -> None:
        """Controller wants the key for a peer — answer in plaintext."""
        record = self.keys.get(event.bd_addr)
        if record is None or record.link_key is None:
            # No bond, or an LE-only bond: either way there is no
            # BR/EDR link key to serve.
            self.host.send_command(
                cmd.LinkKeyRequestNegativeReply(bd_addr=event.bd_addr)
            )
            return
        self.link_keys_served += 1
        self.host.send_command(
            cmd.LinkKeyRequestReply(
                bd_addr=event.bd_addr, link_key=record.link_key
            )
        )

    def on_pin_code_request(self, event: evt.PinCodeRequest) -> None:
        """Legacy pairing: answer with the user's PIN, if they have one."""
        pin = self.host.user.pin_code
        if pin is None:
            self.host.send_command(
                cmd.PinCodeRequestNegativeReply(bd_addr=event.bd_addr)
            )
            return
        raw = pin.encode("ascii")[:16]
        self.host.send_command(
            cmd.PinCodeRequestReply(
                bd_addr=event.bd_addr,
                pin_length=len(raw),
                pin=raw + b"\x00" * (16 - len(raw)),
            )
        )

    def on_io_capability_request(self, event: evt.IoCapabilityRequest) -> None:
        self.host.send_command(
            cmd.IoCapabilityRequestReply(
                bd_addr=event.bd_addr,
                io_capability=int(self.host.io_capability),
                oob_data_present=int(event.bd_addr in self.peer_oob),
                authentication_requirements=int(self.host.auth_requirements),
            )
        )

    # ------------------------------------------------------------ OOB data

    def receive_oob_data(self, addr: BdAddr, c: bytes, r: bytes) -> None:
        """Store a peer's (C, R) received over the out-of-band channel."""
        self.peer_oob[addr] = (c, r)

    def on_remote_oob_data_request(self, event: evt.RemoteOobDataRequest) -> None:
        data = self.peer_oob.get(event.bd_addr)
        if data is None:
            self.host.send_command(
                cmd.RemoteOobDataRequestNegativeReply(bd_addr=event.bd_addr)
            )
            return
        c, r = data
        self.host.send_command(
            cmd.RemoteOobDataRequestReply(bd_addr=event.bd_addr, c=c, r=r)
        )

    def on_io_capability_response(self, event: evt.IoCapabilityResponse) -> None:
        self._remote_io[event.bd_addr] = event.io_capability

    def mark_pairing_initiator(self, addr: BdAddr) -> None:
        """GAP tells us our side initiated the pairing with ``addr``."""
        self._pairing_initiator.add(addr)

    def local_is_initiator(self, addr: BdAddr) -> bool:
        return addr in self._pairing_initiator

    def on_user_confirmation_request(
        self, event: evt.UserConfirmationRequest
    ) -> None:
        """Authentication stage 1 confirmation — the popup decision."""
        addr = event.bd_addr
        local_is_initiator = self.local_is_initiator(addr)
        remote_io = IoCapability(
            self._remote_io.get(addr, IoCapability.NO_INPUT_NO_OUTPUT)
        )
        if self.pairing_veto is not None:
            reason = self.pairing_veto(addr)
            if reason:
                self.veto_rejections += 1
                self.host.tracer.emit(
                    self.host.simulator.now,
                    self.host.name,
                    "mitigation",
                    f"detection response rejected pairing with {addr}: "
                    f"{reason}",
                )
                self.host.send_command(
                    cmd.UserConfirmationRequestNegativeReply(bd_addr=addr)
                )
                return
        if self.page_blocking_guard and self._looks_page_blocked(
            addr, local_is_initiator, remote_io
        ):
            self.guard_rejections += 1
            self.host.tracer.emit(
                self.host.simulator.now,
                self.host.name,
                "mitigation",
                f"page-blocking guard rejected pairing with {addr}: "
                "we initiated pairing on a remotely-initiated connection "
                "from a NoInputNoOutput peer",
            )
            self.host.send_command(
                cmd.UserConfirmationRequestNegativeReply(bd_addr=addr)
            )
            return
        behavior = confirmation_behavior(
            self.host.version,
            self.host.io_capability,
            remote_io,
            local_is_initiator,
        )
        self.host.tracer.emit(
            self.host.simulator.now,
            self.host.name,
            "pairing-ui",
            f"stage1 confirmation for {addr}: {behavior.value}",
            initiator=local_is_initiator,
        )
        if behavior is ConfirmationBehavior.AUTO_CONFIRM:
            self.host.send_command(
                cmd.UserConfirmationRequestReply(bd_addr=addr)
            )
            return
        numeric: Optional[int] = None
        if behavior is ConfirmationBehavior.POPUP_WITH_NUMBER:
            numeric = event.numeric_value
        user = self.host.user
        self.host.simulator.schedule(
            user.decision_delay(), self._user_decides, addr, numeric
        )

    def _looks_page_blocked(
        self, addr: BdAddr, local_is_initiator: bool, remote_io: IoCapability
    ) -> bool:
        """The §VII-B detection predicate."""
        if not local_is_initiator:
            return False
        if remote_io is not IoCapability.NO_INPUT_NO_OUTPUT:
            return False
        info = self.host.gap.connections.get(addr)
        return info is not None and not info.initiated_by_us

    def _user_decides(self, addr: BdAddr, numeric: Optional[int]) -> None:
        accepted = self.host.user.decide_confirmation(
            addr, numeric, self.host.simulator.now
        )
        if accepted:
            self.host.send_command(cmd.UserConfirmationRequestReply(bd_addr=addr))
        else:
            self.host.send_command(
                cmd.UserConfirmationRequestNegativeReply(bd_addr=addr)
            )

    def on_user_passkey_notification(
        self, event: evt.UserPasskeyNotification
    ) -> None:
        """The controller generated a passkey: show it on our display."""
        self.host.user.show_passkey(event.passkey)
        self.host.tracer.emit(
            self.host.simulator.now,
            self.host.name,
            "pairing-ui",
            f"displaying passkey {event.passkey:06d} for {event.bd_addr}",
        )

    def on_user_passkey_request(self, event: evt.UserPasskeyRequest) -> None:
        """Ask the user to type the passkey shown on the peer device."""
        user = self.host.user
        self.host.simulator.schedule(
            user.typing_delay(), self._user_types_passkey, event.bd_addr
        )

    def _user_types_passkey(self, addr: BdAddr) -> None:
        value = self.host.user.read_peer_passkey(self.host.simulator.now)
        if value is None:
            self.host.send_command(
                cmd.UserPasskeyRequestNegativeReply(bd_addr=addr)
            )
            return
        self.host.send_command(
            cmd.UserPasskeyRequestReply(bd_addr=addr, numeric_value=value)
        )

    def on_link_key_notification(self, event: evt.LinkKeyNotification) -> None:
        """A fresh pairing produced a key: store (bond) it."""
        name = self.host.gap.name_cache.get(event.bd_addr, "")
        self.add_bond(
            BondingRecord(
                addr=event.bd_addr,
                link_key=event.link_key,
                key_type=event.key_type,
                name=name,
            )
        )

    def on_authentication_complete(self, addr: Optional[BdAddr], status: int) -> None:
        """Apply the key deletion policy and clear pairing state."""
        if addr is None:
            return
        if status in (
            ErrorCode.AUTHENTICATION_FAILURE,
            ErrorCode.PIN_OR_KEY_MISSING,
        ):
            self.remove_bond(addr)
        if status == 0 or status != ErrorCode.LMP_RESPONSE_TIMEOUT:
            self._pairing_initiator.discard(addr)

    def on_simple_pairing_complete(
        self, event: evt.SimplePairingComplete
    ) -> None:
        if event.status != 0:
            self._pairing_initiator.discard(event.bd_addr)
