"""Service Discovery Protocol (minimal but on-the-wire).

SDP matters to the paper for two reasons:

* It is the canonical example of a service that **requires no
  authentication** (GAP permits unauthenticated SDP), which is the
  specification laxity that makes "connection initiator ≠ pairing
  initiator" legitimate and the page blocking attack standard-
  compliant (§VII-B).
* An SDP query doubles as the dummy keepalive traffic that holds a
  PLOC link open past the supervision timeout (§VI-B2).

The wire protocol is a compact subset: a search request carries a
16-bit UUID (0x0000 = wildcard) and the response lists matching
records as ``uuid16 | name_length | name`` entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.types import BdAddr
from repro.host.l2cap import L2capChannel, L2capService, PSM_SDP
from repro.host.operations import Operation

_REQUEST = 0x02
_RESPONSE = 0x03

# Well-known 16-bit service UUIDs used across the reproduction.
UUID_SDP_SERVER = 0x1000
UUID_SERIAL_PORT = 0x1101
UUID_HANDSFREE = 0x111E
UUID_PBAP_PSE = 0x112F
UUID_MAP = 0x1134
UUID_PANU = 0x1115
UUID_NAP = 0x1116


@dataclass(frozen=True)
class ServiceRecord:
    """One advertised service."""

    uuid16: int
    name: str

    def encode(self) -> bytes:
        raw = self.name.encode("utf-8")[:255]
        return self.uuid16.to_bytes(2, "little") + bytes([len(raw)]) + raw


@dataclass
class SdpServer:
    """SDP server + client for one host."""

    host: object
    records: List[ServiceRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.host.l2cap.register_service(
            L2capService(
                psm=PSM_SDP,
                requires_authentication=False,  # the GAP laxity, by design
                on_data=self._on_server_data,
            )
        )
        self._queries: Dict[int, Operation] = {}

    # ---------------------------------------------------------------- server

    def register(self, record: ServiceRecord) -> None:
        self.records.append(record)

    def _on_server_data(self, channel: L2capChannel, payload: bytes) -> None:
        if not payload or payload[0] != _REQUEST or len(payload) < 3:
            return
        wanted = int.from_bytes(payload[1:3], "little")
        matches = [
            record
            for record in self.records
            if wanted in (0x0000, record.uuid16)
        ]
        response = bytes([_RESPONSE, len(matches)]) + b"".join(
            record.encode() for record in matches
        )
        self.host.l2cap.send(channel, response)

    # ---------------------------------------------------------------- client

    def query(self, addr: BdAddr, uuid16: int = 0x0000) -> Operation:
        """Query a peer's services (requires an existing ACL link)."""
        operation = Operation("sdp-query")

        def on_data(channel: L2capChannel, payload: bytes) -> None:
            if not payload or payload[0] != _RESPONSE:
                return
            count = payload[1]
            offset = 2
            results: List[ServiceRecord] = []
            for _ in range(count):
                uuid = int.from_bytes(payload[offset : offset + 2], "little")
                name_length = payload[offset + 2]
                name = payload[offset + 3 : offset + 3 + name_length].decode(
                    "utf-8", errors="replace"
                )
                results.append(ServiceRecord(uuid16=uuid, name=name))
                offset += 3 + name_length
            operation.complete(result=results)
            self.host.l2cap.disconnect(channel)

        channel_op = self.host.l2cap.connect(addr, PSM_SDP, on_data=on_data)

        def on_channel(op: Operation) -> None:
            if not op.success:
                operation.fail(op.status)
                return
            request = bytes([_REQUEST]) + uuid16.to_bytes(2, "little")
            self.host.l2cap.send(op.result, request)

        channel_op.on_done(on_channel)
        return operation
