"""HFP — Hands-Free Profile (the paper's prototypical soft target C).

The paper's system model casts C as "car-kits, headset devices" that
speak HFP to the phone.  This module implements the profile's service
level connection and the parts the threat model cares about:

* an AT-command channel (BRSF feature negotiation, dialing, caller-ID
  notifications), authentication-gated like every sensitive profile;
* call state on the audio gateway (the phone): an attacker holding the
  link key can silently place calls and receive caller-ID events —
  the "phone call conversations" exposure of §IV.

Simplification: real HFP rides RFCOMM; we carry the (real-format) AT
commands over L2CAP.  Call audio uses a genuine SCO channel negotiated
via ``HCI_Setup_Synchronous_Connection`` / the synchronous-connection-
complete event; only the voice samples themselves are elided.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.types import BdAddr
from repro.host.l2cap import L2capChannel, L2capService
from repro.host.operations import Operation

PSM_HFP = 0x1005

#: audio-gateway feature bits we advertise (3-way calling | voice
#: recognition | caller id)
_AG_FEATURES = 0x0E5


@dataclass
class CallRecord:
    """One call observed at the audio gateway."""

    number: str
    direction: str  # "outgoing" | "incoming"
    answered: bool = False


@dataclass
class HfpProfile:
    """Audio gateway (AG) + hands-free (HF) roles for one host."""

    host: object
    call_log: List[CallRecord] = field(default_factory=list)
    caller_id_events: List[str] = field(default_factory=list)
    audio_connected: bool = False
    _client_channels: dict = field(default_factory=dict)
    _ag_channels: dict = field(default_factory=dict)
    _pending_dials: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.host.l2cap.register_service(
            L2capService(
                psm=PSM_HFP,
                requires_authentication=True,
                on_open=self._on_ag_open,
                on_data=self._on_ag_data,
            )
        )

    def _on_ag_open(self, channel: L2capChannel) -> None:
        self._ag_channels[channel.local_cid] = channel

    # ----------------------------------------------------- audio gateway (AG)

    def _on_ag_data(self, channel: L2capChannel, payload: bytes) -> None:
        text = payload.decode("ascii", errors="replace").strip()
        if text.startswith("AT+BRSF="):
            self.host.l2cap.send(
                channel, f"+BRSF: {_AG_FEATURES}\r\nOK\r\n".encode("ascii")
            )
        elif text.startswith("ATD"):
            number = text[3:].rstrip(";")
            self.call_log.append(CallRecord(number=number, direction="outgoing"))
            self.host.l2cap.send(channel, b"OK\r\n")
            # Bring up the SCO audio channel for the call.
            self._setup_sco(channel.handle)
        elif text == "AT+CHUP":
            self.audio_connected = False
            self.host.l2cap.send(channel, b"OK\r\n")
        elif text == "AT+CLCC":
            lines = "".join(
                f"+CLCC: {i},0,0,0,0,\"{record.number}\"\r\n"
                for i, record in enumerate(self.call_log, start=1)
            )
            self.host.l2cap.send(channel, (lines + "OK\r\n").encode("ascii"))

    def _setup_sco(self, acl_handle: int) -> None:
        from repro.hci import commands as hci_cmd

        self.host.send_command(
            hci_cmd.SetupSynchronousConnection(
                connection_handle=acl_handle,
                transmit_bandwidth=8000,
                receive_bandwidth=8000,
                max_latency=0x000D,
                voice_setting=0x0060,
                retransmission_effort=0x02,
                packet_type=0x0380,  # EV3/EV4/EV5
            )
        )

    def on_sco_complete(self, event) -> None:
        """A synchronous channel came up: the call has audio."""
        if event.status == 0:
            self.audio_connected = True

    def hang_up_audio(self) -> None:
        self.audio_connected = False

    def ring(self, number: str) -> None:
        """An incoming call on the gateway: notify connected HF units."""
        self.call_log.append(CallRecord(number=number, direction="incoming"))
        for channel in list(self._ag_channels.values()):
            if channel.state != "open":
                continue
            self.host.l2cap.send(
                channel, f"RING\r\n+CLIP: \"{number}\",129\r\n".encode("ascii")
            )

    # ------------------------------------------------------- hands-free (HF)

    def connect(self, addr: BdAddr) -> Operation:
        """Establish the HFP service level connection (auth gated)."""
        operation = Operation("hfp-slc")

        def on_data(channel: L2capChannel, payload: bytes) -> None:
            text = payload.decode("ascii", errors="replace")
            if "+BRSF:" in text and not operation.done:
                self._client_channels[addr] = channel
                operation.complete(result=channel)
            elif "RING" in text:
                for line in text.splitlines():
                    if line.startswith("+CLIP:"):
                        self.caller_id_events.append(line)
            elif "OK" in text:
                dial_op = self._pending_dials.pop(addr, None)
                if dial_op is not None:
                    dial_op.complete()
            if "+CLCC:" in text:
                listing_op = self._pending_dials.pop((addr, "clcc"), None)
                if listing_op is not None:
                    listing_op.complete(
                        result=[
                            line
                            for line in text.splitlines()
                            if line.startswith("+CLCC:")
                        ]
                    )

        def on_channel(op: Operation) -> None:
            if not op.success:
                operation.fail(op.status)
                return
            self.host.l2cap.send(op.result, b"AT+BRSF=127\r\n")

        def start(connect_op: Optional[Operation]) -> None:
            if connect_op is not None and not connect_op.success:
                operation.fail(connect_op.status)
                return
            self.host.l2cap.connect(addr, PSM_HFP, on_data=on_data).on_done(
                on_channel
            )

        if self.host.gap.is_connected(addr):
            start(None)
        else:
            self.host.gap.connect(addr).on_done(start)
        return operation

    def dial(self, addr: BdAddr, number: str) -> Operation:
        """Place a call through the connected gateway."""
        operation = Operation("hfp-dial")
        channel = self._client_channels.get(addr)
        if channel is None:
            operation.fail(0xFF)
            return operation
        self._pending_dials[addr] = operation
        self.host.l2cap.send(channel, f"ATD{number};\r\n".encode("ascii"))
        return operation

    def list_calls(self, addr: BdAddr) -> Operation:
        """Query the gateway's current call list (AT+CLCC)."""
        operation = Operation("hfp-clcc")
        channel = self._client_channels.get(addr)
        if channel is None:
            operation.fail(0xFF)
            return operation
        self._pending_dials[(addr, "clcc")] = operation
        self.host.l2cap.send(channel, b"AT+CLCC\r\n")
        return operation
