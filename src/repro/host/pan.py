"""PAN (Personal Area Networking) profile over BNEP.

The paper uses Bluetooth tethering (PAN) to *validate* extracted link
keys (§VI-B1): install fake bonding information containing the key,
then attempt a PAN connection — if the key is correct, LMP
authentication succeeds silently and the tethering link comes up
without any new pairing; if not, authentication fails and a fresh
pairing would be required.

Our BNEP is a two-message setup handshake over L2CAP PSM 0x000F, and —
the part that matters — the PAN service **requires authentication**,
so accepting the channel forces the LMP challenge-response against the
stored key.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.core.types import BdAddr
from repro.hci.constants import ErrorCode
from repro.host.l2cap import L2capChannel, L2capService, PSM_BNEP
from repro.host.operations import Operation

_BNEP_SETUP_REQUEST = b"\x01\x01"
_BNEP_SETUP_RESPONSE = b"\x01\x02\x00\x00"


class PanProfile:
    """PAN user (client) and NAP (server) roles for one host."""

    def __init__(self, host) -> None:
        self.host = host
        self.connected_peers: Set[BdAddr] = set()
        host.l2cap.register_service(
            L2capService(
                psm=PSM_BNEP,
                requires_authentication=True,
                on_open=self._on_server_open,
                on_data=self._on_server_data,
            )
        )

    # ---------------------------------------------------------------- server

    def _on_server_open(self, channel: L2capChannel) -> None:
        # Wait for the BNEP setup request.
        pass

    def _on_server_data(self, channel: L2capChannel, payload: bytes) -> None:
        if payload == _BNEP_SETUP_REQUEST:
            if channel.peer is not None:
                self.connected_peers.add(channel.peer)
            self.host.l2cap.send(channel, _BNEP_SETUP_RESPONSE)

    # ---------------------------------------------------------------- client

    def connect(self, addr: BdAddr) -> Operation:
        """Establish Bluetooth tethering with ``addr``.

        Ensures an ACL connection, then opens the (authentication-
        gated) BNEP channel and completes the setup handshake.  The
        returned operation succeeds only if LMP authentication passed —
        i.e. only if both sides hold the same link key.
        """
        operation = Operation("pan-connect")

        def open_channel(connect_op: Optional[Operation]) -> None:
            if connect_op is not None and not connect_op.success:
                operation.fail(connect_op.status)
                return
            channel_op = self.host.l2cap.connect(
                addr, PSM_BNEP, on_data=lambda ch, data: on_data(ch, data)
            )
            channel_op.on_done(on_channel)

        def on_channel(op: Operation) -> None:
            if not op.success:
                operation.fail(op.status or ErrorCode.INSUFFICIENT_SECURITY)
                return
            self.host.l2cap.send(op.result, _BNEP_SETUP_REQUEST)

        def on_data(channel: L2capChannel, payload: bytes) -> None:
            if payload == _BNEP_SETUP_RESPONSE:
                self.connected_peers.add(addr)
                operation.complete(result=channel)

        if self.host.gap.is_connected(addr):
            open_channel(None)
        else:
            self.host.gap.connect(addr).on_done(open_channel)
        return operation

    def is_connected(self, addr: BdAddr) -> bool:
        return addr in self.connected_peers
