"""L2CAP: channels over ACL, with real byte framing.

Frame format (basic mode): ``length(2, LE) | channel_id(2, LE) |
payload``.  Signalling rides on CID 0x0001 with ``code(1) | id(1) |
length(2, LE) | data`` commands; we implement connection request/
response and disconnection.

Services register per PSM and may demand authentication: when a
connect request arrives for a protected PSM over an unauthenticated
link, the host first runs LMP authentication (GAP security
enforcement) and only then accepts the channel.  This is the mechanism
the key-validation experiment drives: a PAN connect with a correct
(extracted) key authenticates silently and the channel opens; a wrong
key fails authentication and the channel is refused.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.core.types import BdAddr
from repro.hci.constants import ErrorCode
from repro.hci.packets import HciAclData
from repro.host.operations import Operation

SIGNALING_CID = 0x0001
FIRST_DYNAMIC_CID = 0x0040

_CODE_CONNECTION_REQUEST = 0x02
_CODE_CONNECTION_RESPONSE = 0x03
_CODE_DISCONNECTION_REQUEST = 0x06
_CODE_DISCONNECTION_RESPONSE = 0x07

RESULT_SUCCESS = 0x0000
RESULT_PSM_NOT_SUPPORTED = 0x0002
RESULT_SECURITY_BLOCK = 0x0003

PSM_SDP = 0x0001
PSM_BNEP = 0x000F


@dataclass
class L2capChannel:
    """One open (or opening) L2CAP channel."""

    handle: int
    psm: int
    local_cid: int
    remote_cid: Optional[int] = None
    state: str = "opening"  # opening | open | closed
    peer: Optional[BdAddr] = None
    on_data: Optional[Callable[["L2capChannel", bytes], None]] = None
    open_op: Optional[Operation] = None


@dataclass
class L2capService:
    """A registered PSM listener."""

    psm: int
    requires_authentication: bool = False
    on_open: Optional[Callable[[L2capChannel], None]] = None
    on_data: Optional[Callable[[L2capChannel, bytes], None]] = None


class L2cap:
    """L2CAP layer for one host stack."""

    def __init__(self, host) -> None:
        self.host = host
        self.services: Dict[int, L2capService] = {}
        self._channels: Dict[Tuple[int, int], L2capChannel] = {}  # (handle, lcid)
        self._cid_counter = itertools.count(FIRST_DYNAMIC_CID)
        self._sig_id = itertools.count(1)
        self._pending_by_scid: Dict[int, L2capChannel] = {}

    # --------------------------------------------------------------- service

    def register_service(self, service: L2capService) -> None:
        self.services[service.psm] = service

    # --------------------------------------------------------------- connect

    def connect(
        self,
        addr: BdAddr,
        psm: int,
        on_data: Optional[Callable[[L2capChannel, bytes], None]] = None,
    ) -> Operation:
        """Open a channel to ``addr``'s ``psm`` (ACL must exist)."""
        operation = Operation("l2cap-connect")
        handle = self.host.gap.handle_for(addr)
        if handle is None:
            operation.fail(ErrorCode.UNKNOWN_CONNECTION_IDENTIFIER)
            return operation
        local_cid = next(self._cid_counter)
        channel = L2capChannel(
            handle=handle,
            psm=psm,
            local_cid=local_cid,
            peer=addr,
            on_data=on_data,
            open_op=operation,
        )
        self._channels[(handle, local_cid)] = channel
        self._pending_by_scid[local_cid] = channel
        payload = psm.to_bytes(2, "little") + local_cid.to_bytes(2, "little")
        self._send_signal(handle, _CODE_CONNECTION_REQUEST, payload)
        return operation

    def send(self, channel: L2capChannel, payload: bytes) -> None:
        """Send data on an open channel."""
        if channel.state != "open" or channel.remote_cid is None:
            raise ValueError(f"channel {channel.local_cid} is not open")
        self._send_frame(channel.handle, channel.remote_cid, payload)

    def disconnect(self, channel: L2capChannel) -> None:
        if channel.state != "open":
            return
        payload = channel.remote_cid.to_bytes(2, "little") + channel.local_cid.to_bytes(
            2, "little"
        )
        self._send_signal(channel.handle, _CODE_DISCONNECTION_REQUEST, payload)
        channel.state = "closed"
        self._channels.pop((channel.handle, channel.local_cid), None)

    def on_link_down(self, handle: int) -> None:
        """ACL went away: close every channel riding on it."""
        for key in [k for k in self._channels if k[0] == handle]:
            channel = self._channels.pop(key)
            channel.state = "closed"
            if channel.open_op is not None and not channel.open_op.done:
                channel.open_op.fail(ErrorCode.CONNECTION_TIMEOUT)

    # ---------------------------------------------------------------- framing

    def _send_frame(self, handle: int, cid: int, payload: bytes) -> None:
        frame = (
            len(payload).to_bytes(2, "little")
            + cid.to_bytes(2, "little")
            + payload
        )
        self.host.send_acl(handle, frame)

    def _send_signal(self, handle: int, code: int, data: bytes) -> None:
        signal = (
            bytes([code, next(self._sig_id) & 0xFF])
            + len(data).to_bytes(2, "little")
            + data
        )
        self._send_frame(handle, SIGNALING_CID, signal)

    def on_acl(self, packet: HciAclData) -> None:
        """Dispatch an incoming ACL frame to a channel or the signaller."""
        raw = packet.data
        if len(raw) < 4:
            return
        length = int.from_bytes(raw[0:2], "little")
        cid = int.from_bytes(raw[2:4], "little")
        payload = raw[4 : 4 + length]
        if cid == SIGNALING_CID:
            self._on_signal(packet.handle, payload)
            return
        channel = self._channels.get((packet.handle, cid))
        if channel is None or channel.state != "open":
            return
        if channel.on_data is not None:
            channel.on_data(channel, payload)

    # -------------------------------------------------------------- signalling

    def _on_signal(self, handle: int, payload: bytes) -> None:
        if len(payload) < 4:
            return
        code = payload[0]
        data = payload[4 : 4 + int.from_bytes(payload[2:4], "little")]
        if code == _CODE_CONNECTION_REQUEST:
            psm = int.from_bytes(data[0:2], "little")
            remote_scid = int.from_bytes(data[2:4], "little")
            self._on_connection_request(handle, psm, remote_scid)
        elif code == _CODE_CONNECTION_RESPONSE:
            dcid = int.from_bytes(data[0:2], "little")
            scid = int.from_bytes(data[2:4], "little")
            result = int.from_bytes(data[4:6], "little")
            self._on_connection_response(handle, dcid, scid, result)
        elif code == _CODE_DISCONNECTION_REQUEST:
            dcid = int.from_bytes(data[0:2], "little")
            channel = self._channels.pop((handle, dcid), None)
            if channel is not None:
                channel.state = "closed"
            response = data[0:4]
            self._send_signal(handle, _CODE_DISCONNECTION_RESPONSE, response)

    def _on_connection_request(
        self, handle: int, psm: int, remote_scid: int
    ) -> None:
        service = self.services.get(psm)
        if service is None:
            self._respond(handle, 0, remote_scid, RESULT_PSM_NOT_SUPPORTED)
            return
        addr = self.host.gap.addr_for_handle(handle)
        if service.requires_authentication and addr is not None:
            info = self.host.gap.connections.get(addr)
            if info is None or not info.authenticated:
                # GAP security enforcement: authenticate, then accept.
                auth_op = self.host.gap.authenticate(addr)
                auth_op.on_done(
                    lambda op: self._finish_accept(
                        handle, service, remote_scid, accepted=op.success
                    )
                )
                return
        self._finish_accept(handle, service, remote_scid, accepted=True)

    def _finish_accept(
        self, handle: int, service: L2capService, remote_scid: int, accepted: bool
    ) -> None:
        if not accepted:
            self._respond(handle, 0, remote_scid, RESULT_SECURITY_BLOCK)
            return
        local_cid = next(self._cid_counter)
        channel = L2capChannel(
            handle=handle,
            psm=service.psm,
            local_cid=local_cid,
            remote_cid=remote_scid,
            state="open",
            peer=self.host.gap.addr_for_handle(handle),
            on_data=service.on_data,
        )
        self._channels[(handle, local_cid)] = channel
        self._respond(handle, local_cid, remote_scid, RESULT_SUCCESS)
        if service.on_open is not None:
            service.on_open(channel)

    def _respond(
        self, handle: int, local_cid: int, remote_scid: int, result: int
    ) -> None:
        payload = (
            local_cid.to_bytes(2, "little")
            + remote_scid.to_bytes(2, "little")
            + result.to_bytes(2, "little")
            + b"\x00\x00"
        )
        self._send_signal(handle, _CODE_CONNECTION_RESPONSE, payload)

    def _on_connection_response(
        self, handle: int, dcid: int, scid: int, result: int
    ) -> None:
        channel = self._pending_by_scid.pop(scid, None)
        if channel is None:
            return
        if result != RESULT_SUCCESS:
            channel.state = "closed"
            self._channels.pop((handle, channel.local_cid), None)
            if channel.open_op is not None:
                channel.open_op.fail(result or 0xFF)
            return
        channel.remote_cid = dcid
        channel.state = "open"
        if channel.open_op is not None:
            channel.open_op.complete(result=channel)
