"""The Bluetooth host stack.

Mirrors the architecture of real host stacks (bluedroid, BlueZ, the
Microsoft driver): a security manager owning the bonded-key database,
GAP for discovery/connection/pairing, L2CAP and SDP for transport and
service discovery, and the PAN profile the paper uses to validate
extracted keys.  Per-vendor differences that matter to the attacks
(HCI snoop availability, bonding storage format and path, SU
requirements) are captured in :class:`~repro.host.stack.StackProfile`.
"""

from repro.host.stack import HostStack, StackProfile
from repro.host.gap import Gap
from repro.host.security import SecurityManager
from repro.host.ui import UserModel
from repro.host.iocap import (
    ConfirmationBehavior,
    association_model,
    confirmation_behavior,
    confirmation_matrix,
)
from repro.host.storage import (
    BondingRecord,
    BondingStore,
    BluezInfoStore,
    BtConfigStore,
    RegistryStore,
)
from repro.host.pbap import Contact, PbapProfile
from repro.host.map_profile import MapProfile, Message

__all__ = [
    "HostStack",
    "StackProfile",
    "Gap",
    "SecurityManager",
    "UserModel",
    "ConfirmationBehavior",
    "association_model",
    "confirmation_behavior",
    "confirmation_matrix",
    "BondingRecord",
    "BondingStore",
    "BluezInfoStore",
    "BtConfigStore",
    "RegistryStore",
    "Contact",
    "PbapProfile",
    "MapProfile",
    "Message",
]
