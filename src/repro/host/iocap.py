"""IO capability mapping for SSP authentication stage 1 (paper Fig. 7).

Given the initiator's and responder's IO capabilities, the spec selects
the association model and defines what each side must show the user.
The version split the paper highlights:

* **Bluetooth ≤ 4.2** — no mandated popup: when the model degrades to
  Just Works, most implementations auto-confirm silently on the
  *initiator* and pop a bare accept/reject notification only on the
  *responder*.
* **Bluetooth ≥ 5.0** — a DisplayYesNo device must show a Yes/No
  confirmation ("whether to pair") even for Just Works, but the dialog
  carries **no confirmation value**, so the user cannot tell whom they
  are actually pairing with — the gap §V-B2 exploits.
"""

from __future__ import annotations

import enum
from typing import List, Tuple

from repro.core.association import select_association_model
from repro.core.types import AssociationModel, BluetoothVersion, IoCapability


class ConfirmationBehavior(enum.Enum):
    """What a device shows its user during authentication stage 1."""

    AUTO_CONFIRM = "automatic confirmation"
    POPUP_WITH_NUMBER = "display 6-digit number, Yes/No confirmation"
    POPUP_YES_NO = "Yes/No confirmation without confirmation value"
    PASSKEY_DISPLAY = "display 6-digit passkey"
    PASSKEY_INPUT = "enter 6-digit passkey"


def association_model(
    initiator_io: IoCapability, responder_io: IoCapability
) -> AssociationModel:
    """Select the SSP association model from the two IO capabilities.

    This is the downgrade pivot: any ``NoInputNoOutput`` participant
    forces Just Works, bypassing the stage-1 MITM challenge.
    (Thin wrapper over :func:`repro.core.association.
    select_association_model`, kept for the host-facing API.)
    """
    return select_association_model(initiator_io, responder_io)


def confirmation_behavior(
    version: BluetoothVersion,
    local_io: IoCapability,
    remote_io: IoCapability,
    local_is_initiator: bool,
) -> ConfirmationBehavior:
    """What the *local* device shows during stage 1 (Fig. 7 cell)."""
    if local_is_initiator:
        model = association_model(local_io, remote_io)
    else:
        model = association_model(remote_io, local_io)

    if local_io is IoCapability.NO_INPUT_NO_OUTPUT:
        return ConfirmationBehavior.AUTO_CONFIRM
    if model is AssociationModel.NUMERIC_COMPARISON:
        return ConfirmationBehavior.POPUP_WITH_NUMBER
    if model is AssociationModel.PASSKEY_ENTRY:
        if local_io is IoCapability.KEYBOARD_ONLY:
            return ConfirmationBehavior.PASSKEY_INPUT
        return ConfirmationBehavior.PASSKEY_DISPLAY
    # Just Works with local display capability:
    if version.mandates_justworks_popup:
        return ConfirmationBehavior.POPUP_YES_NO
    # ≤4.2: initiators auto-confirm; responders notify the user to
    # prevent fully silent pairing (the common implementation choice
    # the paper describes).
    if local_is_initiator:
        return ConfirmationBehavior.AUTO_CONFIRM
    return ConfirmationBehavior.POPUP_YES_NO


def confirmation_matrix(
    version: BluetoothVersion,
    ios: Tuple[IoCapability, ...] = (
        IoCapability.DISPLAY_YES_NO,
        IoCapability.NO_INPUT_NO_OUTPUT,
    ),
) -> List[Tuple[str, str, str, str, str]]:
    """Enumerate the Fig. 7 table: one row per (responder, initiator).

    Returns rows of (responder_io, initiator_io, model,
    initiator_behavior, responder_behavior).
    """
    rows = []
    for responder_io in ios:
        for initiator_io in ios:
            model = association_model(initiator_io, responder_io)
            initiator_side = confirmation_behavior(
                version, initiator_io, responder_io, local_is_initiator=True
            )
            responder_side = confirmation_behavior(
                version, responder_io, initiator_io, local_is_initiator=False
            )
            rows.append(
                (
                    responder_io.describe(),
                    initiator_io.describe(),
                    model.value,
                    initiator_side.value,
                    responder_side.value,
                )
            )
    return rows


def render_confirmation_matrix(version: BluetoothVersion) -> str:
    """Pretty-print the Fig. 7 table for a spec version."""
    rows = confirmation_matrix(version)
    lines = [
        f"IO capability mapping for authentication stage 1 (v{version.value})",
        f"{'Responder':<18} {'Initiator':<18} {'Model':<20} "
        f"{'Initiator shows':<46} {'Responder shows'}",
    ]
    lines.append("-" * len(lines[1]))
    for responder, initiator, model, ini_behavior, res_behavior in rows:
        lines.append(
            f"{responder:<18} {initiator:<18} {model:<20} "
            f"{ini_behavior:<46} {res_behavior}"
        )
    return "\n".join(lines)
