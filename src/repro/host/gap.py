"""Generic Access Profile: discovery, connections, pairing, encryption.

GAP is where the page blocking attack's host-side blind spot lives:
:meth:`Gap.pair` checks for an *existing* ACL connection to the target
address and, if one exists, skips straight to authentication on that
link — never verifying who actually initiated the connection.  Under
PLOC the "existing connection" is the attacker's, so the victim's
pairing request flows to the attacker while the UI looks perfectly
normal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.types import BdAddr
from repro.hci import commands as cmd
from repro.hci import events as evt
from repro.hci.constants import ErrorCode, Opcode, ScanEnable
from repro.host.operations import Operation


@dataclass
class DiscoveredDevice:
    """One inquiry hit."""

    addr: BdAddr
    class_of_device: int
    clock_offset: int
    name: str = ""


@dataclass
class ConnectionInfo:
    """Host-level view of one ACL connection."""

    addr: BdAddr
    handle: int
    initiated_by_us: bool
    authenticated: bool = False
    encrypted: bool = False


@dataclass
class _DiscoveryState:
    operation: Operation
    results: Dict[BdAddr, DiscoveredDevice] = field(default_factory=dict)


class Gap:
    """Connection/pairing state machine for one host."""

    #: default inquiry length in 1.28 s units
    INQUIRY_LENGTH = 4
    #: host-side guard: fail a pairing/authentication that never
    #: resolves (lost LMP frames, wedged peer) instead of hanging
    AUTHENTICATION_TIMEOUT = 40.0
    #: host-side guard for connection attempts: far beyond any page
    #: timeout, so it only fires when HCI itself is broken (a garbled
    #: or truncated CreateConnection never reaches the controller)
    CONNECT_TIMEOUT = 30.0

    def __init__(self, host) -> None:
        self.host = host
        self.connections: Dict[BdAddr, ConnectionInfo] = {}
        self.name_cache: Dict[BdAddr, str] = {}
        self.accept_incoming = True
        self._connect_ops: Dict[BdAddr, Operation] = {}
        self._auth_ops: Dict[BdAddr, Operation] = {}
        self._encrypt_ops: Dict[BdAddr, Operation] = {}
        self._discovery: Optional[_DiscoveryState] = None

    # ------------------------------------------------------------- scanning

    def set_scan_mode(self, connectable: bool, discoverable: bool) -> None:
        """Page scan = connectable; inquiry scan = discoverable."""
        value = ScanEnable.NONE
        if connectable and discoverable:
            value = ScanEnable.INQUIRY_AND_PAGE
        elif connectable:
            value = ScanEnable.PAGE_ONLY
        elif discoverable:
            value = ScanEnable.INQUIRY_ONLY
        self.host.send_command(cmd.WriteScanEnable(scan_enable=value))

    # ------------------------------------------------------------ discovery

    def start_discovery(self, inquiry_length: Optional[int] = None) -> Operation:
        """Broadcast an inquiry; the operation resolves with the results."""
        operation = Operation("discovery")
        if self._discovery is not None:
            operation.fail(ErrorCode.COMMAND_DISALLOWED)
            return operation
        self._discovery = _DiscoveryState(operation=operation)
        self.host.send_command(
            cmd.Inquiry(
                lap=cmd.Inquiry.GIAC,
                inquiry_length=inquiry_length or self.INQUIRY_LENGTH,
                num_responses=0,
            )
        )
        return operation

    def on_inquiry_result(self, event: evt.InquiryResult) -> None:
        if self._discovery is None:
            return
        self._discovery.results[event.bd_addr] = DiscoveredDevice(
            addr=event.bd_addr,
            class_of_device=event.class_of_device,
            clock_offset=event.clock_offset,
            name=self.name_cache.get(event.bd_addr, ""),
        )

    def on_extended_inquiry_result(
        self, event: evt.ExtendedInquiryResult
    ) -> None:
        """EIR-mode result: the name rides along, no extra round trip."""
        from repro.hci.eir import eir_local_name

        name = eir_local_name(event.extended_inquiry_response) or ""
        if name:
            self.name_cache[event.bd_addr] = name
        if self._discovery is None:
            return
        self._discovery.results[event.bd_addr] = DiscoveredDevice(
            addr=event.bd_addr,
            class_of_device=event.class_of_device,
            clock_offset=event.clock_offset,
            name=name or self.name_cache.get(event.bd_addr, ""),
        )

    def on_inquiry_complete(self, event: evt.InquiryComplete) -> None:
        if self._discovery is None:
            return
        state, self._discovery = self._discovery, None
        state.operation.complete(
            status=event.status, result=list(state.results.values())
        )

    # ----------------------------------------------------------- connecting

    def is_connected(self, addr: BdAddr) -> bool:
        return addr in self.connections

    def handle_for(self, addr: BdAddr) -> Optional[int]:
        info = self.connections.get(addr)
        return info.handle if info else None

    def addr_for_handle(self, handle: int) -> Optional[BdAddr]:
        for info in self.connections.values():
            if info.handle == handle:
                return info.addr
        return None

    def connect(self, addr: BdAddr) -> Operation:
        """Create an ACL connection (page the target)."""
        operation = Operation("connect")
        if addr in self.connections:
            operation.complete(result=self.connections[addr])
            return operation
        if addr in self._connect_ops:
            operation.fail(ErrorCode.COMMAND_DISALLOWED)
            return operation
        self._connect_ops[addr] = operation
        guard = self.host.simulator.schedule(
            self.CONNECT_TIMEOUT, self._connect_guard, addr, operation
        )
        operation.on_done(lambda _op: guard.cancel())
        self.host.send_command(
            cmd.CreateConnection(
                bd_addr=addr,
                packet_type=0xCC18,
                page_scan_repetition_mode=1,
                reserved=0,
                clock_offset=0,
                allow_role_switch=1,
            )
        )
        return operation

    def on_connection_request(self, event: evt.ConnectionRequest) -> None:
        """Incoming page: accept when we are connectable (policy)."""
        if self.accept_incoming:
            self.host.send_command(
                cmd.AcceptConnectionRequest(bd_addr=event.bd_addr, role=0x01)
            )
        else:
            self.host.send_command(
                cmd.RejectConnectionRequest(
                    bd_addr=event.bd_addr,
                    reason=ErrorCode.CONNECTION_REJECTED_SECURITY,
                )
            )

    def on_connection_complete(self, event: evt.ConnectionComplete) -> None:
        operation = self._connect_ops.pop(event.bd_addr, None)
        if event.status != 0:
            if operation is not None:
                operation.fail(event.status)
            return
        info = ConnectionInfo(
            addr=event.bd_addr,
            handle=event.connection_handle,
            initiated_by_us=operation is not None,
        )
        self.connections[event.bd_addr] = info
        if operation is not None:
            operation.complete(result=info)

    def disconnect(
        self, addr: BdAddr, reason: int = ErrorCode.REMOTE_USER_TERMINATED_CONNECTION
    ) -> None:
        info = self.connections.get(addr)
        if info is None:
            return
        self.host.send_command(
            cmd.Disconnect(connection_handle=info.handle, reason=reason)
        )

    def on_disconnection_complete(self, event: evt.DisconnectionComplete) -> None:
        addr = self.addr_for_handle(event.connection_handle)
        if addr is None:
            return
        self.connections.pop(addr, None)
        self.host.l2cap.on_link_down(event.connection_handle)
        for ops in (self._auth_ops, self._encrypt_ops):
            operation = ops.pop(addr, None)
            if operation is not None:
                operation.fail(event.reason)

    # ------------------------------------------------------------- pairing

    def pair(self, addr: BdAddr, initiated_by_user: bool = True) -> Operation:
        """Pair with ``addr`` — the exploitable flow.

        If an ACL connection to ``addr`` already exists (however it
        came to exist — including an attacker-initiated PLOC link), the
        connection step is **omitted** and authentication is requested
        directly on the existing link.
        """
        if initiated_by_user:
            self.host.user.note_pairing_initiated(addr, self.host.simulator.now)
        self.host.security.mark_pairing_initiator(addr)
        operation = Operation("pair")
        if addr in self.connections:
            self._authenticate(addr, operation)
            return operation
        connect_op = self.connect(addr)
        connect_op.on_done(
            lambda op: (
                self._authenticate(addr, operation)
                if op.success
                else operation.fail(op.status)
            )
        )
        return operation

    def authenticate(self, addr: BdAddr) -> Operation:
        """LMP-authenticate an existing connection (no user intent)."""
        operation = Operation("authenticate")
        if addr not in self.connections:
            operation.fail(ErrorCode.UNKNOWN_CONNECTION_IDENTIFIER)
            return operation
        self._authenticate(addr, operation)
        return operation

    def _authenticate(self, addr: BdAddr, operation: Operation) -> None:
        info = self.connections.get(addr)
        if info is None:
            operation.fail(ErrorCode.UNKNOWN_CONNECTION_IDENTIFIER)
            return
        if addr in self._auth_ops:
            operation.fail(ErrorCode.COMMAND_DISALLOWED)
            return
        self._auth_ops[addr] = operation
        guard = self.host.simulator.schedule(
            self.AUTHENTICATION_TIMEOUT, self._auth_guard, addr, operation
        )
        operation.on_done(lambda _op: guard.cancel())
        self.host.send_command(
            cmd.AuthenticationRequested(connection_handle=info.handle)
        )

    def _connect_guard(self, addr: BdAddr, operation: Operation) -> None:
        """The controller never answered the page request: fail cleanly."""
        if operation.done:
            return
        self._connect_ops.pop(addr, None)
        operation.fail(ErrorCode.CONNECTION_TIMEOUT)

    def _auth_guard(self, addr: BdAddr, operation: Operation) -> None:
        """The authentication never resolved: fail it cleanly."""
        if operation.done:
            return
        self._auth_ops.pop(addr, None)
        operation.fail(ErrorCode.CONNECTION_TIMEOUT)

    def on_authentication_complete(self, event: evt.AuthenticationComplete) -> None:
        addr = self.addr_for_handle(event.connection_handle)
        self.host.security.on_authentication_complete(addr, event.status)
        if addr is None:
            return
        info = self.connections.get(addr)
        if info is not None and event.status == 0:
            info.authenticated = True
        operation = self._auth_ops.pop(addr, None)
        if operation is not None:
            operation.complete(status=event.status)

    # ----------------------------------------------------------- encryption

    def enable_encryption(self, addr: BdAddr) -> Operation:
        operation = Operation("encrypt")
        info = self.connections.get(addr)
        if info is None:
            operation.fail(ErrorCode.UNKNOWN_CONNECTION_IDENTIFIER)
            return operation
        self._encrypt_ops[addr] = operation
        self.host.send_command(
            cmd.SetConnectionEncryption(
                connection_handle=info.handle, encryption_enable=1
            )
        )
        return operation

    def on_encryption_change(self, event: evt.EncryptionChange) -> None:
        addr = self.addr_for_handle(event.connection_handle)
        if addr is None:
            return
        info = self.connections.get(addr)
        if info is not None:
            info.encrypted = bool(event.encryption_enabled)
        operation = self._encrypt_ops.pop(addr, None)
        if operation is not None:
            operation.complete(status=event.status)

    # -------------------------------------------------------- names & status

    def on_remote_name_complete(
        self, event: evt.RemoteNameRequestComplete
    ) -> None:
        if event.status == 0:
            self.name_cache[event.bd_addr] = event.remote_name

    def on_command_status(self, event: evt.CommandStatus) -> None:
        """Failed Command_Status for async commands fails pending ops."""
        if event.status == 0:
            return
        if event.command_opcode == Opcode.CREATE_CONNECTION:
            for addr, operation in list(self._connect_ops.items()):
                operation.fail(event.status)
                del self._connect_ops[addr]
        elif event.command_opcode == Opcode.AUTHENTICATION_REQUESTED:
            for addr, operation in list(self._auth_ops.items()):
                operation.fail(event.status)
                del self._auth_ops[addr]
