"""PBAP — Phone Book Access Profile (the paper's §III target data).

The attack model's end goal is "to mine sensitive information" from M,
whose Bluetooth profile services expose phone books (PBAP), messages
(MAP) and calls (HFP).  This module implements a compact PBAP: a
phonebook of vCard 2.1 entries served over an L2CAP channel that
**requires LMP authentication** — so possession of the (extracted)
link key is exactly what gates the data.

Simplification note: real PBAP rides OBEX over RFCOMM; we serve the
same vCard payloads over a dedicated L2CAP PSM, preserving the
security gating and the data format while skipping the OBEX framing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.types import BdAddr
from repro.host.l2cap import L2capChannel, L2capService
from repro.host.operations import Operation

PSM_PBAP = 0x1001

_REQUEST_PULL = b"PBAP-PULL\r\n"


@dataclass(frozen=True)
class Contact:
    """One phonebook entry."""

    name: str
    phone: str

    def to_vcard(self) -> str:
        return (
            "BEGIN:VCARD\r\n"
            "VERSION:2.1\r\n"
            f"N:{self.name}\r\n"
            f"TEL;CELL:{self.phone}\r\n"
            "END:VCARD\r\n"
        )

    @classmethod
    def from_vcard(cls, text: str) -> "Contact":
        name = phone = ""
        for line in text.splitlines():
            if line.startswith("N:"):
                name = line[2:]
            elif line.startswith("TEL;CELL:"):
                phone = line[9:]
        return cls(name=name, phone=phone)


def parse_vcards(payload: bytes) -> List[Contact]:
    """Split a concatenated vCard stream back into contacts."""
    text = payload.decode("utf-8", errors="replace")
    contacts = []
    for chunk in text.split("BEGIN:VCARD"):
        if "END:VCARD" in chunk:
            contacts.append(Contact.from_vcard("BEGIN:VCARD" + chunk))
    return contacts


@dataclass
class PbapProfile:
    """PBAP server (PSE) + client (PCE) for one host."""

    host: object
    phonebook: List[Contact] = field(default_factory=list)
    pulls_served: int = 0

    def __post_init__(self) -> None:
        self.host.l2cap.register_service(
            L2capService(
                psm=PSM_PBAP,
                requires_authentication=True,  # the link key is the gate
                on_data=self._on_server_data,
            )
        )

    # ---------------------------------------------------------------- server

    def load_phonebook(self, contacts: List[Contact]) -> None:
        self.phonebook = list(contacts)

    def _on_server_data(self, channel: L2capChannel, payload: bytes) -> None:
        if payload != _REQUEST_PULL:
            return
        self.pulls_served += 1
        body = "".join(contact.to_vcard() for contact in self.phonebook)
        self.host.l2cap.send(channel, body.encode("utf-8"))

    # ---------------------------------------------------------------- client

    def pull_phonebook(self, addr: BdAddr) -> Operation:
        """Download the peer's phonebook (authentication enforced)."""
        operation = Operation("pbap-pull")

        def on_data(channel: L2capChannel, payload: bytes) -> None:
            operation.complete(result=parse_vcards(payload))
            self.host.l2cap.disconnect(channel)

        def on_channel(op: Operation) -> None:
            if not op.success:
                operation.fail(op.status)
                return
            self.host.l2cap.send(op.result, _REQUEST_PULL)

        def start(connect_op: Optional[Operation]) -> None:
            if connect_op is not None and not connect_op.success:
                operation.fail(connect_op.status)
                return
            self.host.l2cap.connect(addr, PSM_PBAP, on_data=on_data).on_done(
                on_channel
            )

        if self.host.gap.is_connected(addr):
            start(None)
        else:
            self.host.gap.connect(addr).on_done(start)
        return operation
