"""AES-128 and the modes the LE Secure Connections layer needs.

Bluetooth Low Energy replaced BR/EDR's SAFER+/E0 lineage with AES:

* the security toolbox functions of Vol 3 Part H §2.2 (f4/f5/f6/g2 and
  the h6/h7 cross-transport conversions) are all AES-CMAC
  constructions (RFC 4493), and
* LE link-layer payload encryption (Vol 6 Part B §5.1.4) is AES-CCM
  with a 4-byte MIC.

Like the rest of :mod:`repro.crypto`, everything here is implemented
from scratch on the stdlib — a straightforward table-based AES-128
forward cipher (CMAC and CCM only ever run the cipher forward), the
RFC 4493 subkey/padding construction, and RFC 3610 CCM.  The AES core
is pinned against the FIPS-197 Appendix C vector and CMAC against the
RFC 4493 test vectors in ``tests/test_crypto_smp.py``.
"""

from __future__ import annotations

from typing import List, Optional

_SBOX = [
    0x63, 0x7C, 0x77, 0x7B, 0xF2, 0x6B, 0x6F, 0xC5,
    0x30, 0x01, 0x67, 0x2B, 0xFE, 0xD7, 0xAB, 0x76,
    0xCA, 0x82, 0xC9, 0x7D, 0xFA, 0x59, 0x47, 0xF0,
    0xAD, 0xD4, 0xA2, 0xAF, 0x9C, 0xA4, 0x72, 0xC0,
    0xB7, 0xFD, 0x93, 0x26, 0x36, 0x3F, 0xF7, 0xCC,
    0x34, 0xA5, 0xE5, 0xF1, 0x71, 0xD8, 0x31, 0x15,
    0x04, 0xC7, 0x23, 0xC3, 0x18, 0x96, 0x05, 0x9A,
    0x07, 0x12, 0x80, 0xE2, 0xEB, 0x27, 0xB2, 0x75,
    0x09, 0x83, 0x2C, 0x1A, 0x1B, 0x6E, 0x5A, 0xA0,
    0x52, 0x3B, 0xD6, 0xB3, 0x29, 0xE3, 0x2F, 0x84,
    0x53, 0xD1, 0x00, 0xED, 0x20, 0xFC, 0xB1, 0x5B,
    0x6A, 0xCB, 0xBE, 0x39, 0x4A, 0x4C, 0x58, 0xCF,
    0xD0, 0xEF, 0xAA, 0xFB, 0x43, 0x4D, 0x33, 0x85,
    0x45, 0xF9, 0x02, 0x7F, 0x50, 0x3C, 0x9F, 0xA8,
    0x51, 0xA3, 0x40, 0x8F, 0x92, 0x9D, 0x38, 0xF5,
    0xBC, 0xB6, 0xDA, 0x21, 0x10, 0xFF, 0xF3, 0xD2,
    0xCD, 0x0C, 0x13, 0xEC, 0x5F, 0x97, 0x44, 0x17,
    0xC4, 0xA7, 0x7E, 0x3D, 0x64, 0x5D, 0x19, 0x73,
    0x60, 0x81, 0x4F, 0xDC, 0x22, 0x2A, 0x90, 0x88,
    0x46, 0xEE, 0xB8, 0x14, 0xDE, 0x5E, 0x0B, 0xDB,
    0xE0, 0x32, 0x3A, 0x0A, 0x49, 0x06, 0x24, 0x5C,
    0xC2, 0xD3, 0xAC, 0x62, 0x91, 0x95, 0xE4, 0x79,
    0xE7, 0xC8, 0x37, 0x6D, 0x8D, 0xD5, 0x4E, 0xA9,
    0x6C, 0x56, 0xF4, 0xEA, 0x65, 0x7A, 0xAE, 0x08,
    0xBA, 0x78, 0x25, 0x2E, 0x1C, 0xA6, 0xB4, 0xC6,
    0xE8, 0xDD, 0x74, 0x1F, 0x4B, 0xBD, 0x8B, 0x8A,
    0x70, 0x3E, 0xB5, 0x66, 0x48, 0x03, 0xF6, 0x0E,
    0x61, 0x35, 0x57, 0xB9, 0x86, 0xC1, 0x1D, 0x9E,
    0xE1, 0xF8, 0x98, 0x11, 0x69, 0xD9, 0x8E, 0x94,
    0x9B, 0x1E, 0x87, 0xE9, 0xCE, 0x55, 0x28, 0xDF,
    0x8C, 0xA1, 0x89, 0x0D, 0xBF, 0xE6, 0x42, 0x68,
    0x41, 0x99, 0x2D, 0x0F, 0xB0, 0x54, 0xBB, 0x16,
]

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]


def _xtime(value: int) -> int:
    value <<= 1
    if value & 0x100:
        value ^= 0x11B
    return value & 0xFF


def _expand_key(key: bytes) -> List[List[int]]:
    """AES-128 key schedule: 11 round keys of 16 bytes each."""
    words = [list(key[i : i + 4]) for i in range(0, 16, 4)]
    for i in range(4, 44):
        temp = list(words[i - 1])
        if i % 4 == 0:
            temp = temp[1:] + temp[:1]
            temp = [_SBOX[b] for b in temp]
            temp[0] ^= _RCON[i // 4 - 1]
        words.append([a ^ b for a, b in zip(words[i - 4], temp)])
    return [
        [b for word in words[r : r + 4] for b in word]
        for r in range(0, 44, 4)
    ]


def aes128_encrypt(key: bytes, block: bytes) -> bytes:
    """Encrypt one 16-byte block with AES-128 (FIPS-197 forward cipher).

    This is the Bluetooth security function *e* (Vol 3 Part H §2.2.1):
    every LE toolbox function and the LE session key derivation reduce
    to it.
    """
    if len(key) != 16:
        raise ValueError(f"AES-128 key must be 16 bytes, got {len(key)}")
    if len(block) != 16:
        raise ValueError(f"AES block must be 16 bytes, got {len(block)}")
    round_keys = _expand_key(key)
    state = [b ^ k for b, k in zip(block, round_keys[0])]
    for round_no in range(1, 11):
        state = [_SBOX[b] for b in state]
        # ShiftRows on the column-major state layout.
        state = [
            state[0], state[5], state[10], state[15],
            state[4], state[9], state[14], state[3],
            state[8], state[13], state[2], state[7],
            state[12], state[1], state[6], state[11],
        ]
        if round_no < 10:
            mixed = []
            for col in range(4):
                a = state[col * 4 : col * 4 + 4]
                t = a[0] ^ a[1] ^ a[2] ^ a[3]
                mixed.extend(
                    [
                        a[0] ^ t ^ _xtime(a[0] ^ a[1]),
                        a[1] ^ t ^ _xtime(a[1] ^ a[2]),
                        a[2] ^ t ^ _xtime(a[2] ^ a[3]),
                        a[3] ^ t ^ _xtime(a[3] ^ a[0]),
                    ]
                )
            state = mixed
        state = [b ^ k for b, k in zip(state, round_keys[round_no])]
    return bytes(state)


# ------------------------------------------------------------------ AES-CMAC


def _shift_left(block: bytes) -> bytes:
    value = int.from_bytes(block, "big") << 1
    return (value & ((1 << 128) - 1)).to_bytes(16, "big")


def _xor(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


def cmac_subkeys(key: bytes) -> tuple:
    """The RFC 4493 subkeys (K1, K2) for one AES-128 key."""
    l = aes128_encrypt(key, b"\x00" * 16)
    k1 = _shift_left(l)
    if l[0] & 0x80:
        k1 = _xor(k1, b"\x00" * 15 + b"\x87")
    k2 = _shift_left(k1)
    if k1[0] & 0x80:
        k2 = _xor(k2, b"\x00" * 15 + b"\x87")
    return k1, k2


def aes_cmac(key: bytes, message: bytes) -> bytes:
    """AES-CMAC (RFC 4493): the MAC behind every LE toolbox function."""
    k1, k2 = cmac_subkeys(key)
    n, rem = divmod(len(message), 16)
    if n == 0 or rem != 0:
        # Pad the (possibly empty) final block with 10^i and use K2.
        last = message[n * 16 :] + b"\x80" + b"\x00" * (15 - rem)
        last = _xor(last, k2)
    else:
        n -= 1
        last = _xor(message[n * 16 :], k1)
    x = b"\x00" * 16
    for i in range(n):
        x = aes128_encrypt(key, _xor(x, message[i * 16 : i * 16 + 16]))
    return aes128_encrypt(key, _xor(x, last))


# ------------------------------------------------------------------- AES-CCM


def _ccm_blocks(
    key: bytes, nonce: bytes, data_len: int, aad: bytes, tag_len: int
) -> tuple:
    """Shared CCM setup: (B0-seeded CBC-MAC state over AAD, A0 block)."""
    if not 7 <= len(nonce) <= 13:
        raise ValueError(f"CCM nonce must be 7..13 bytes, got {len(nonce)}")
    if tag_len % 2 or not 4 <= tag_len <= 16:
        raise ValueError(f"CCM tag length must be even in 4..16, got {tag_len}")
    length_size = 15 - len(nonce)
    flags = (64 if aad else 0) | (((tag_len - 2) // 2) << 3) | (length_size - 1)
    b0 = bytes([flags]) + nonce + data_len.to_bytes(length_size, "big")
    x = aes128_encrypt(key, b0)
    if aad:
        header = len(aad).to_bytes(2, "big") + aad
        header += b"\x00" * (-len(header) % 16)
        for i in range(0, len(header), 16):
            x = aes128_encrypt(key, _xor(x, header[i : i + 16]))
    a0 = bytes([length_size - 1]) + nonce + b"\x00" * length_size
    return x, a0


def _ccm_keystream(key: bytes, a0: bytes, counter: int) -> bytes:
    block = a0[:-2] + counter.to_bytes(2, "big")
    return aes128_encrypt(key, block)


def aes_ccm_encrypt(
    key: bytes, nonce: bytes, plaintext: bytes, aad: bytes = b"", tag_len: int = 4
) -> bytes:
    """CCM (RFC 3610) encrypt-and-tag; returns ciphertext || MIC.

    LE link encryption uses a 13-byte nonce (packet counter + IV) and a
    4-byte MIC — the defaults the :mod:`repro.ble` link layer passes.
    """
    x, a0 = _ccm_blocks(key, nonce, len(plaintext), aad, tag_len)
    padded = plaintext + b"\x00" * (-len(plaintext) % 16)
    for i in range(0, len(padded), 16):
        x = aes_cbc_step(key, x, padded[i : i + 16])
    tag = _xor(x, aes128_encrypt(key, a0))[:tag_len]
    out = bytearray()
    for i in range(0, len(plaintext), 16):
        stream = _ccm_keystream(key, a0, i // 16 + 1)
        out += _xor(plaintext[i : i + 16], stream)
    return bytes(out) + tag


def aes_ccm_decrypt(
    key: bytes, nonce: bytes, ciphertext: bytes, aad: bytes = b"", tag_len: int = 4
) -> Optional[bytes]:
    """CCM decrypt-and-verify; ``None`` when the MIC does not check out."""
    if len(ciphertext) < tag_len:
        return None
    body, tag = ciphertext[:-tag_len], ciphertext[-tag_len:]
    x, a0 = _ccm_blocks(key, nonce, len(body), aad, tag_len)
    plain = bytearray()
    for i in range(0, len(body), 16):
        stream = _ccm_keystream(key, a0, i // 16 + 1)
        plain += _xor(body[i : i + 16], stream)
    padded = bytes(plain) + b"\x00" * (-len(plain) % 16)
    for i in range(0, len(padded), 16):
        x = aes_cbc_step(key, x, padded[i : i + 16])
    expected = _xor(x, aes128_encrypt(key, a0))[:tag_len]
    if expected != tag:
        return None
    return bytes(plain)


def aes_cbc_step(key: bytes, state: bytes, block: bytes) -> bytes:
    """One CBC-MAC absorption step (exposed for the CCM internals)."""
    return aes128_encrypt(key, _xor(state, block))
