"""Legacy BR/EDR security functions: E1, E21, E22, E3.

These SAFER+-based functions implement:

* ``E1(link_key, rand, bdaddr) -> (SRES, ACO)`` — the LMP
  challenge-response.  A verifier sends a 16-byte ``AU_RAND``; the
  prover answers with ``SRES``; both sides also derive the Authenticated
  Ciphering Offset (ACO) consumed by encryption key generation.  *This
  is the function the link key extraction attack ultimately breaks:
  whoever holds the 128-bit link key can always answer the challenge.*
* ``E21(rand, bdaddr)`` — unit / combination key generation.
* ``E22(rand, pin, bdaddr)`` — legacy initialization key from a PIN.
* ``E3(link_key, rand, cof)`` — encryption key generation; combined
  with :func:`reduce_key_entropy` this is the negotiated-entropy step
  the KNOB attack targeted.

Construction follows the Core Specification Vol 2 Part H: E1 applies
Ar, XORs the intermediate with the challenge, adds the cyclically
expanded BD_ADDR bytewise mod 256 and runs Ar' under the offset key
K~; E3 is the same skeleton with the COF in place of the address.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.types import BdAddr, LinkKey
from repro.crypto.safer import SaferPlus

# Offsets applied to the link key to derive K~ — the eight largest
# primes below 257 for which 45 is a primitive root, used twice, with
# the operation alternating ADD / XOR across byte positions.
_KEY_OFFSETS = (233, 229, 223, 193, 179, 167, 149, 131) * 2


def _offset_key(key: bytes) -> bytes:
    """Derive the modified key K~ used by the second SAFER+ pass."""
    out = bytearray(16)
    for i in range(16):
        if i % 2 == 0:
            out[i] = (key[i] + _KEY_OFFSETS[i]) % 256
        else:
            out[i] = key[i] ^ _KEY_OFFSETS[i]
    return bytes(out)


def _expand_address(address: bytes, length: int = 16) -> bytes:
    """Cyclically expand a 6-byte BD_ADDR (or other value) to 16 bytes."""
    if not address:
        raise ValueError("cannot expand empty value")
    return bytes(address[i % len(address)] for i in range(length))


def _xor16(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


def _add16(a: bytes, b: bytes) -> bytes:
    return bytes((x + y) % 256 for x, y in zip(a, b))


def e1(link_key: LinkKey, au_rand: bytes, address: BdAddr) -> Tuple[bytes, bytes]:
    """LMP authentication function.

    Returns ``(SRES, ACO)`` where SRES is 4 bytes (sent over the air by
    the prover) and ACO is 12 bytes (kept locally, feeds E3).
    """
    if len(au_rand) != 16:
        raise ValueError("AU_RAND must be 16 bytes")
    cipher = SaferPlus(link_key.value)
    intermediate = cipher.encrypt(au_rand)
    mixed = _add16(_xor16(intermediate, au_rand), _expand_address(address.value))
    tilde = SaferPlus(_offset_key(link_key.value))
    output = tilde.encrypt_modified(mixed)
    return output[:4], output[4:16]


def e21(rand: bytes, address: BdAddr) -> LinkKey:
    """Unit/combination key generation.

    Combination keys are built as ``K_AB = E21(RAND_A, addr_A) XOR
    E21(RAND_B, addr_B)`` during legacy pairing.
    """
    if len(rand) != 16:
        raise ValueError("RAND must be 16 bytes")
    # Per spec the last RAND byte is XORed with the expansion length (6).
    tweaked = rand[:15] + bytes([rand[15] ^ 6])
    cipher = SaferPlus(tweaked)
    return LinkKey(cipher.encrypt_modified(_expand_address(address.value)))


def e22(rand: bytes, pin: bytes, address: BdAddr) -> LinkKey:
    """Legacy initialization key from a PIN code (1..16 bytes)."""
    if len(rand) != 16:
        raise ValueError("RAND must be 16 bytes")
    if not 1 <= len(pin) <= 16:
        raise ValueError("PIN must be 1..16 bytes")
    # Augment the PIN with the address up to 16 bytes, as the spec does.
    augmented = (pin + address.value)[:16]
    length = len(augmented)
    augmented = _expand_address(augmented, 16)
    tweaked = rand[:15] + bytes([rand[15] ^ length])
    cipher = SaferPlus(augmented)
    return LinkKey(cipher.encrypt_modified(tweaked))


def e3(link_key: LinkKey, en_rand: bytes, cof: bytes) -> bytes:
    """Encryption key generation.

    ``cof`` is the Ciphering Offset — normally the ACO from the most
    recent successful E1 authentication.  Returns the 16-byte Kc.
    """
    if len(en_rand) != 16:
        raise ValueError("EN_RAND must be 16 bytes")
    if len(cof) != 12:
        raise ValueError("COF must be 12 bytes")
    cipher = SaferPlus(link_key.value)
    intermediate = cipher.encrypt(en_rand)
    mixed = _add16(_xor16(intermediate, en_rand), _expand_address(cof))
    tilde = SaferPlus(_offset_key(link_key.value))
    return tilde.encrypt_modified(mixed)


def reduce_key_entropy(kc: bytes, entropy_bytes: int) -> bytes:
    """Reduce Kc to Kc' with ``entropy_bytes`` bytes of entropy (1..16).

    Models the encryption key size negotiation step (the one the KNOB
    attack drives down to 1).  The spec reduces modulo a polynomial
    pair g1/g2; we keep the leading ``entropy_bytes`` bytes and zero the
    rest, which preserves the property the attacks care about: the
    keyspace shrinks to ``2**(8*entropy_bytes)``.
    """
    if not 1 <= entropy_bytes <= 16:
        raise ValueError("entropy must be 1..16 bytes")
    return kc[:entropy_bytes] + b"\x00" * (16 - entropy_bytes)
