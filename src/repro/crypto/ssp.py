"""Secure Simple Pairing cryptographic functions.

Two families exist in the specification:

* the original (P-192) SSP of Bluetooth 2.1, built directly from
  SHA-256, and
* the Secure Connections (P-256) variant of 4.1+, built from
  HMAC-SHA-256.

Functions:

* ``f1(U, V, X, Z)`` — commitment value for authentication stage 1.
* ``g(U, V, X, Y)`` — the six-digit number shown for Numeric
  Comparison.  **Just Works runs the exact same computation but never
  shows the number** — which is precisely the gap the page blocking
  attack's downgrade drives the victim into.
* ``f2(DHKey, N1, N2, keyID, A1, A2)`` — link key derivation.
* ``f3(DHKey, N1, N2, R, IOcap, A1, A2)`` — authentication stage 2
  check values.
* ``h3 / h4 / h5`` — Secure Connections key conversion / device
  authentication helpers.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.core.types import BdAddr, IoCapability, LinkKey

KEY_ID_BTLK = b"btlk"


def _sha256(*parts: bytes) -> bytes:
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part)
    return digest.digest()


def _hmac256(key: bytes, *parts: bytes) -> bytes:
    mac = hmac.new(key, digestmod=hashlib.sha256)
    for part in parts:
        mac.update(part)
    return mac.digest()


# ---------------------------------------------------------------- P-192 (SHA)


def f1_p192(u: bytes, v: bytes, x: bytes, z: bytes) -> bytes:
    """Commitment value (128 bits) — SHA-256 family."""
    return _sha256(u, v, x, z)[:16]


def f2_p192(
    dhkey: bytes, n1: bytes, n2: bytes, key_id: bytes, a1: BdAddr, a2: BdAddr
) -> LinkKey:
    """Link key derivation — SHA-256 family."""
    raw = _sha256(dhkey, n1, n2, key_id, a1.value, a2.value)[:16]
    return LinkKey(raw)


def f3_p192(
    dhkey: bytes,
    n1: bytes,
    n2: bytes,
    r: bytes,
    io_cap: bytes,
    a1: BdAddr,
    a2: BdAddr,
) -> bytes:
    """Check value for authentication stage 2 — SHA-256 family."""
    return _sha256(dhkey, n1, n2, r, io_cap, a1.value, a2.value)[:16]


# --------------------------------------------------------------- P-256 (HMAC)


def f1_p256(u: bytes, v: bytes, x: bytes, z: bytes) -> bytes:
    """Commitment value (128 bits) — HMAC family (keyed by X)."""
    return _hmac256(x, u, v, z)[:16]


def f2_p256(
    dhkey: bytes, n1: bytes, n2: bytes, key_id: bytes, a1: BdAddr, a2: BdAddr
) -> LinkKey:
    """Link key derivation — HMAC family (keyed by DHKey)."""
    raw = _hmac256(dhkey, n1, n2, key_id, a1.value, a2.value)[:16]
    return LinkKey(raw)


def f3_p256(
    dhkey: bytes,
    n1: bytes,
    n2: bytes,
    r: bytes,
    io_cap: bytes,
    a1: BdAddr,
    a2: BdAddr,
) -> bytes:
    """Check value for authentication stage 2 — HMAC family."""
    return _hmac256(dhkey, n1, n2, r, io_cap, a1.value, a2.value)[:16]


# ------------------------------------------------------------------- g and h*


def g_numeric(u: bytes, v: bytes, x: bytes, y: bytes) -> int:
    """The six-digit Numeric Comparison value.

    ``g = SHA-256(U || V || X || Y) mod 2^32``; the displayed number is
    ``g mod 10^6``.
    """
    g = int.from_bytes(_sha256(u, v, x, y)[-4:], "big")
    return g % 1_000_000


def h3(t: bytes, a1: BdAddr, a2: BdAddr, aco: bytes) -> bytes:
    """Secure Connections BR/EDR session key derivation."""
    return _hmac256(t, b"btak", a1.value, a2.value, aco)[:16]


def h4(t: bytes, a1: BdAddr, a2: BdAddr) -> bytes:
    """Secure Connections device authentication key derivation."""
    return _hmac256(t, b"btdk", a1.value, a2.value)[:16]


def h5(key: bytes, r1: bytes, r2: bytes) -> bytes:
    """Secure Connections authentication response (SRES' || ACO')."""
    return _hmac256(key, r1, r2)


def io_cap_bytes(
    io_capability: IoCapability, oob_present: bool, auth_requirements: int
) -> bytes:
    """The 3-byte IOcap value fed to f3 (cap || oob || authreq)."""
    return bytes([int(io_capability), int(oob_present), auth_requirements])
