"""LE Secure Connections key-derivation toolbox (Vol 3 Part H §2.2).

The functions here are the AES-CMAC constructions SMP uses during LE
Secure Connections pairing, plus the h6/h7 Cross-Transport Key
Derivation (CTKD) conversions that BLURtooth abuses:

* :func:`f4` — pairing confirm values,
* :func:`f5` — MacKey and LTK from the ECDH shared secret,
* :func:`f6` — DHKey check values,
* :func:`g2` — the 6-digit numeric-comparison value,
* :func:`h6` / :func:`h7` — one-way key conversions,
* :func:`le_ltk_from_bredr_link_key` / :func:`bredr_link_key_from_le_ltk`
  — the two CTKD directions (Vol 3 Part H §2.4.2.4/.5), and
* :func:`le_session_key` — the LL session key from the LTK
  (Vol 6 Part B §5.1.3.1).

All are pinned against the Core Spec Vol 3 Part H Appendix D sample
data in ``tests/test_crypto_smp.py``.  Addresses enter f5/f6/g2 as
7-byte values (address type byte || 6-byte BD_ADDR, MSB first), which
is how callers in :mod:`repro.ble` pass them.
"""

from __future__ import annotations

from typing import Tuple

from repro.crypto.aes import aes128_encrypt, aes_cmac

# f5 constants (Vol 3 Part H §2.2.7).
F5_SALT = bytes.fromhex("6C888391AAF5A53860370BDB5A6083BE")
F5_KEY_ID = b"btle"

# CTKD salts (§2.2.11): 12 zero bytes followed by the ASCII key ID.
SALT_TMP1 = b"\x00" * 12 + b"tmp1"
SALT_TMP2 = b"\x00" * 12 + b"tmp2"


def _check(name: str, value: bytes, length: int) -> bytes:
    if len(value) != length:
        raise ValueError(f"{name} must be {length} bytes, got {len(value)}")
    return value


def f4(u: bytes, v: bytes, x: bytes, z: int) -> bytes:
    """Confirm value generation: CMAC_X(U || V || Z)."""
    _check("U", u, 32)
    _check("V", v, 32)
    _check("X", x, 16)
    return aes_cmac(x, u + v + bytes([z]))


def f5(w: bytes, n1: bytes, n2: bytes, a1: bytes, a2: bytes) -> Tuple[bytes, bytes]:
    """Key generation from the DHKey: returns (MacKey, LTK)."""
    _check("W", w, 32)
    _check("N1", n1, 16)
    _check("N2", n2, 16)
    _check("A1", a1, 7)
    _check("A2", a2, 7)
    t = aes_cmac(F5_SALT, w)
    length = (256).to_bytes(2, "big")
    mac_key = aes_cmac(t, b"\x00" + F5_KEY_ID + n1 + n2 + a1 + a2 + length)
    ltk = aes_cmac(t, b"\x01" + F5_KEY_ID + n1 + n2 + a1 + a2 + length)
    return mac_key, ltk


def f6(
    w: bytes, n1: bytes, n2: bytes, r: bytes, io_cap: bytes, a1: bytes, a2: bytes
) -> bytes:
    """Check value generation: CMAC_W(N1 || N2 || R || IOcap || A1 || A2)."""
    _check("W", w, 16)
    _check("N1", n1, 16)
    _check("N2", n2, 16)
    _check("R", r, 16)
    _check("IOcap", io_cap, 3)
    _check("A1", a1, 7)
    _check("A2", a2, 7)
    return aes_cmac(w, n1 + n2 + r + io_cap + a1 + a2)


def g2(u: bytes, v: bytes, x: bytes, y: bytes) -> int:
    """Numeric-comparison value: the 6 decimal digits both users compare."""
    _check("U", u, 32)
    _check("V", v, 32)
    _check("X", x, 16)
    _check("Y", y, 16)
    mac = aes_cmac(x, u + v + y)
    return int.from_bytes(mac[-4:], "big") % 1_000_000


def h6(key: bytes, key_id: bytes) -> bytes:
    """One-way key conversion: CMAC_Key(keyID), keyID 4 ASCII bytes."""
    _check("Key", key, 16)
    _check("keyID", key_id, 4)
    return aes_cmac(key, key_id)


def h7(salt: bytes, key: bytes) -> bytes:
    """Salted one-way key conversion (CT2=1 path): CMAC_SALT(Key)."""
    _check("SALT", salt, 16)
    _check("Key", key, 16)
    return aes_cmac(salt, key)


# --------------------------------------------------- cross-transport (CTKD)


def le_ltk_from_bredr_link_key(link_key: bytes, ct2: bool = True) -> bytes:
    """Derive the LE LTK from a BR/EDR link key (Vol 3 Part H §2.4.2.4).

    This is the conversion BLURtooth weaponises in the BR/EDR→LE
    direction: a BLAP-extracted link key run through this function is
    byte-for-byte the LTK the victim pair stored for their LE bond.
    """
    ilk = h7(SALT_TMP1, link_key) if ct2 else h6(link_key, b"tmp1")
    return h6(ilk, b"brle")


def bredr_link_key_from_le_ltk(ltk: bytes, ct2: bool = True) -> bytes:
    """Derive the BR/EDR link key from an LE LTK (Vol 3 Part H §2.4.2.5)."""
    ilk = h7(SALT_TMP2, ltk) if ct2 else h6(ltk, b"tmp2")
    return h6(ilk, b"lebr")


# ------------------------------------------------------- LL session crypto


def le_session_key(ltk: bytes, skd_m: bytes, skd_s: bytes) -> bytes:
    """LL session key: e(LTK, SKDm || SKDs) (Vol 6 Part B §5.1.3.1)."""
    _check("LTK", ltk, 16)
    _check("SKDm", skd_m, 8)
    _check("SKDs", skd_s, 8)
    return aes128_encrypt(ltk, skd_m + skd_s)
