"""SAFER+ block cipher (128-bit key variant) and the Bluetooth Ar / Ar'.

SAFER+ (Massey, Khachatrian, Kuregian) is the core primitive of
Bluetooth BR/EDR legacy security: the authentication function E1 and
the key-generation functions E21/E22/E3 are all built from two versions
of it:

* ``Ar``  — plain SAFER+ encryption with a 128-bit key (8 rounds plus
  an output transform).
* ``Ar'`` — a modified, deliberately *non-invertible* version in which
  the round-1 input is re-combined into the round-3 input.

Structure implemented here, following the Core Specification (Vol 2,
Part H):

* S-boxes: ``e(i) = 45^i mod 257 (mod 256)`` and its inverse ``l``.
* Key schedule: a 17-byte register (16 key bytes plus their XOR
  parity), rotated 3 bits left between rounds, with bias words derived
  from the double application of ``e``.
* Round: mixed XOR/ADD subkey application, exp/log substitution, mixed
  ADD/XOR subkey application, then an invertible linear layer built
  from four iterations of the Pseudo-Hadamard Transform and the
  "Armenian shuffle" permutation.
"""

from __future__ import annotations

from typing import List, Sequence

BLOCK_SIZE = 16
ROUNDS = 8

# S-box: e(i) = (45 ** i mod 257) mod 256, and log-inverse.
EXP_TABLE: List[int] = [pow(45, i, 257) % 256 for i in range(256)]
LOG_TABLE: List[int] = [0] * 256
for _i, _v in enumerate(EXP_TABLE):
    LOG_TABLE[_v] = _i

# Byte positions that get XOR (others get modular ADD) in the first
# subkey application of each round.  The pattern is the spec's
# "XOR-ADD-ADD-XOR" repeated across the 16 bytes.
_XOR_POSITIONS = frozenset({0, 3, 4, 7, 8, 11, 12, 15})

# The "Armenian shuffle" permutation of the linear layer.
ARMENIAN_SHUFFLE: Sequence[int] = (
    8, 11, 12, 15, 2, 1, 6, 5, 10, 9, 14, 13, 0, 7, 4, 3,
)


def _pht_pairs(block: List[int]) -> List[int]:
    """Pseudo-Hadamard Transform on adjacent byte pairs: (2a+b, a+b)."""
    out = [0] * BLOCK_SIZE
    for i in range(0, BLOCK_SIZE, 2):
        a, b = block[i], block[i + 1]
        out[i] = (2 * a + b) % 256
        out[i + 1] = (a + b) % 256
    return out


def _permute(block: List[int]) -> List[int]:
    """Apply the Armenian shuffle."""
    return [block[ARMENIAN_SHUFFLE[i]] for i in range(BLOCK_SIZE)]


def _linear_layer(block: List[int]) -> List[int]:
    """Four iterations of PHT + shuffle (the SAFER+ diffusion matrix)."""
    for iteration in range(4):
        block = _pht_pairs(block)
        if iteration < 3:
            block = _permute(block)
    return block


def _mixed_key_xor_add(block: List[int], subkey: Sequence[int]) -> List[int]:
    """XOR at the corner positions, ADD mod 256 elsewhere."""
    return [
        (block[i] ^ subkey[i]) if i in _XOR_POSITIONS else (block[i] + subkey[i]) % 256
        for i in range(BLOCK_SIZE)
    ]


def _mixed_key_add_xor(block: List[int], subkey: Sequence[int]) -> List[int]:
    """ADD mod 256 at the corner positions, XOR elsewhere (swapped)."""
    return [
        (block[i] + subkey[i]) % 256 if i in _XOR_POSITIONS else (block[i] ^ subkey[i])
        for i in range(BLOCK_SIZE)
    ]


def _substitute(block: List[int]) -> List[int]:
    """exp at XOR positions, log at ADD positions."""
    return [
        EXP_TABLE[block[i]] if i in _XOR_POSITIONS else LOG_TABLE[block[i]]
        for i in range(BLOCK_SIZE)
    ]


def _rotl8(value: int, amount: int) -> int:
    return ((value << amount) | (value >> (8 - amount))) & 0xFF


class SaferPlus:
    """SAFER+ with a fixed 128-bit key.

    The expensive part — the key schedule — is done once in the
    constructor, so repeated encryptions under the same key (the E1
    usage pattern) are cheap.
    """

    def __init__(self, key: bytes) -> None:
        if len(key) != BLOCK_SIZE:
            raise ValueError(f"SAFER+ key must be 16 bytes, got {len(key)}")
        self.key = key
        self._subkeys = self._expand_key(key)

    @staticmethod
    def _expand_key(key: bytes) -> List[List[int]]:
        """Produce the 17 round subkeys K1..K17."""
        register = list(key) + [0]
        parity = 0
        for byte in key:
            parity ^= byte
        register[16] = parity

        subkeys: List[List[int]] = [list(key)]  # K1 = raw key bytes
        for round_index in range(2, 2 * ROUNDS + 2):  # K2 .. K17
            register = [_rotl8(byte, 3) for byte in register]
            selected = [
                register[(round_index - 1 + j) % 17] for j in range(BLOCK_SIZE)
            ]
            bias = [
                EXP_TABLE[EXP_TABLE[(17 * round_index + j + 1) % 256]]
                for j in range(BLOCK_SIZE)
            ]
            subkeys.append(
                [(selected[j] + bias[j]) % 256 for j in range(BLOCK_SIZE)]
            )
        return subkeys

    def encrypt(self, plaintext: bytes) -> bytes:
        """Plain Ar: 8 rounds plus the final output transform."""
        return self._run(plaintext, modified=False)

    def encrypt_modified(self, plaintext: bytes) -> bytes:
        """Ar': round-1 input recombined into the round-3 input.

        This feedback makes the mapping non-invertible, which is why the
        spec uses it for the one-way authentication hash.
        """
        return self._run(plaintext, modified=True)

    def _run(self, plaintext: bytes, modified: bool) -> bytes:
        if len(plaintext) != BLOCK_SIZE:
            raise ValueError(f"block must be 16 bytes, got {len(plaintext)}")
        block = list(plaintext)
        round1_input = list(plaintext)
        for round_number in range(1, ROUNDS + 1):
            if modified and round_number == 3:
                # Re-inject the original input using the mixed pattern.
                block = _mixed_key_xor_add(block, round1_input)
            k_odd = self._subkeys[2 * round_number - 2]
            k_even = self._subkeys[2 * round_number - 1]
            block = _mixed_key_xor_add(block, k_odd)
            block = _substitute(block)
            block = _mixed_key_add_xor(block, k_even)
            block = _linear_layer(block)
        # Output transform with K17 (mixed XOR/ADD pattern).
        block = _mixed_key_xor_add(block, self._subkeys[2 * ROUNDS])
        return bytes(block)


def saferplus_ar(key: bytes, block: bytes) -> bytes:
    """One-shot Ar encryption."""
    return SaferPlus(key).encrypt(block)


def saferplus_ar_prime(key: bytes, block: bytes) -> bytes:
    """One-shot Ar' (modified, non-invertible) encryption."""
    return SaferPlus(key).encrypt_modified(block)
