"""The E0 stream cipher used for BR/EDR link encryption.

E0 is a summation-combiner stream cipher over four LFSRs of lengths
25, 31, 33 and 39 (128 state bits total) plus a 4-bit blender FSM.
The keystream bit is the XOR of the four LFSR output bits and one bit
of the combiner state.

The paper's §IV observes that an attacker holding an extracted link key
"would be able to decrypt not only the future, but also the past
communications of M captured by air-sniffers".  The eavesdropping
benchmark exercises exactly this: traffic encrypted under a session key
derived from the bonded link key is decrypted offline after the link
key is pulled out of an HCI dump.

Feedback polynomials (from the Core Specification):

* LFSR1: t^25 + t^20 + t^12 + t^8 + 1
* LFSR2: t^31 + t^24 + t^16 + t^12 + 1
* LFSR3: t^33 + t^28 + t^24 + t^4 + 1
* LFSR4: t^39 + t^36 + t^28 + t^4 + 1

Key loading: the spec's two-level E0 (a payload-key generator feeding a
second E0 instance per packet) is simplified to a single documented
premixing step — the state is seeded from ``SHA-256(Kc || BD_ADDR ||
clock)`` and the cipher is clocked 200 times before producing output.
The substitution preserves the security-relevant behaviour (keystream
is a deterministic function of key/address/clock; wrong key yields
garbage), which is what the reproduction's experiments measure.
"""

from __future__ import annotations

import hashlib
from typing import List

from repro.core.types import BdAddr

_LFSR_LENGTHS = (25, 31, 33, 39)
_LFSR_TAPS = (
    (25, 20, 12, 8),
    (31, 24, 16, 12),
    (33, 28, 24, 4),
    (39, 36, 28, 4),
)
# Output tap position (1-indexed from the newest bit) for each register.
_OUTPUT_TAPS = (24, 24, 32, 32)

_PREMIX_CLOCKS = 200


class E0Cipher:
    """A single-level E0 keystream generator."""

    def __init__(self, kc: bytes, address: BdAddr, clock: int) -> None:
        if len(kc) != 16:
            raise ValueError("Kc must be 16 bytes")
        seed = hashlib.sha256(
            kc + address.value + clock.to_bytes(4, "big") + b"E0"
        ).digest()
        seed_bits = _bits_of(seed)
        self._registers: List[List[int]] = []
        offset = 0
        for length in _LFSR_LENGTHS:
            register = seed_bits[offset : offset + length]
            # An all-zero LFSR never leaves the zero state; force a 1.
            if not any(register):
                register[0] = 1
            self._registers.append(register)
            offset += length
        # Blender FSM state: c_t and c_{t-1}, two bits each.
        self._c_t = seed[-1] & 0x3
        self._c_prev = (seed[-1] >> 2) & 0x3
        for _ in range(_PREMIX_CLOCKS):
            self._clock()

    def _clock(self) -> int:
        """Advance all registers and the blender; return one keystream bit."""
        outputs = []
        for index, register in enumerate(self._registers):
            taps = _LFSR_TAPS[index]
            feedback = 0
            for tap in taps:
                feedback ^= register[tap - 1]
            outputs.append(register[_OUTPUT_TAPS[index] - 1])
            register.insert(0, feedback)
            register.pop()
        y = sum(outputs)
        z = (y & 1) ^ (self._c_t & 1)
        s_next = (y + self._c_t) >> 1
        # T1/T2 linear maps of the summation combiner.
        t1 = self._c_t
        x1, x0 = (self._c_prev >> 1) & 1, self._c_prev & 1
        t2 = (x0 << 1) | (x1 ^ x0)
        self._c_prev = self._c_t
        self._c_t = (s_next ^ t1 ^ t2) & 0x3
        return z

    def keystream(self, length: int) -> bytes:
        """Produce ``length`` bytes of keystream."""
        out = bytearray()
        for _ in range(length):
            byte = 0
            for bit_index in range(8):
                byte |= self._clock() << bit_index
            out.append(byte)
        return bytes(out)

    def process(self, data: bytes) -> bytes:
        """Encrypt or decrypt (XOR with keystream)."""
        stream = self.keystream(len(data))
        return bytes(d ^ s for d, s in zip(data, stream))


def _bits_of(data: bytes) -> List[int]:
    bits = []
    for byte in data:
        for i in range(8):
            bits.append((byte >> i) & 1)
    return bits


def e0_keystream(kc: bytes, address: BdAddr, clock: int, length: int) -> bytes:
    """One-shot keystream generation."""
    return E0Cipher(kc, address, clock).keystream(length)


def e0_encrypt(kc: bytes, address: BdAddr, clock: int, payload: bytes) -> bytes:
    """One-shot encryption (symmetric; also decrypts)."""
    return E0Cipher(kc, address, clock).process(payload)
