"""Cryptographic primitives of Bluetooth BR/EDR, implemented from scratch.

This package provides every algorithm the simulated stack needs:

* :mod:`repro.crypto.safer` — the SAFER+ block cipher (Ar and the
  modified Ar' round used by the Bluetooth authentication functions).
* :mod:`repro.crypto.legacy` — E1 (LMP challenge-response), E21/E22
  (legacy key generation) and E3 (encryption key generation).
* :mod:`repro.crypto.e0` — the E0 stream cipher used for BR/EDR link
  encryption; the eavesdropping demo decrypts E0 ciphertext with an
  extracted link key.
* :mod:`repro.crypto.ecc` — P-192 and P-256 elliptic-curve groups and
  ECDH, used by Secure Simple Pairing.
* :mod:`repro.crypto.ssp` — the SSP functions f1/f2/f3/g (both the
  SHA-256 based P-192 family and the HMAC based P-256 family) plus
  h3/h4/h5.
* :mod:`repro.crypto.aes` — from-scratch AES-128 with the CMAC
  (RFC 4493) and CCM (RFC 3610) modes LE Secure Connections needs.
* :mod:`repro.crypto.smp` — the LE SC toolbox f4/f5/f6/g2 and the
  h6/h7 Cross-Transport Key Derivation conversions that the BLURtooth
  scenarios pivot through.

Fidelity note: official Bluetooth SIG test vectors are not reachable in
this offline environment, so byte-exact interoperability with silicon
is not asserted; the algorithms follow the specification's published
structure and are validated by internal-consistency and property tests,
which is sufficient for the closed simulation (both endpoints run the
same code, exactly as both real endpoints run the same spec).
"""

from repro.crypto.safer import SaferPlus, saferplus_ar, saferplus_ar_prime
from repro.crypto.legacy import e1, e21, e22, e3, reduce_key_entropy
from repro.crypto.e0 import E0Cipher, e0_encrypt, e0_keystream
from repro.crypto.ecc import (
    CurveParams,
    EccKeyPair,
    EccPoint,
    P192,
    P256,
    ecdh_shared_secret,
    generate_keypair,
)
from repro.crypto.aes import (
    aes128_encrypt,
    aes_ccm_decrypt,
    aes_ccm_encrypt,
    aes_cmac,
    cmac_subkeys,
)
from repro.crypto.smp import (
    bredr_link_key_from_le_ltk,
    f4,
    f5,
    f6,
    g2,
    h6,
    h7,
    le_ltk_from_bredr_link_key,
    le_session_key,
)
from repro.crypto.ssp import (
    f1_p192,
    f1_p256,
    f2_p192,
    f2_p256,
    f3_p192,
    f3_p256,
    g_numeric,
    h3,
    h4,
    h5,
)

__all__ = [
    "SaferPlus",
    "saferplus_ar",
    "saferplus_ar_prime",
    "e1",
    "e21",
    "e22",
    "e3",
    "reduce_key_entropy",
    "E0Cipher",
    "e0_encrypt",
    "e0_keystream",
    "CurveParams",
    "EccKeyPair",
    "EccPoint",
    "P192",
    "P256",
    "ecdh_shared_secret",
    "generate_keypair",
    "aes128_encrypt",
    "aes_ccm_decrypt",
    "aes_ccm_encrypt",
    "aes_cmac",
    "cmac_subkeys",
    "bredr_link_key_from_le_ltk",
    "f4",
    "f5",
    "f6",
    "g2",
    "h6",
    "h7",
    "le_ltk_from_bredr_link_key",
    "le_session_key",
    "f1_p192",
    "f1_p256",
    "f2_p192",
    "f2_p256",
    "f3_p192",
    "f3_p256",
    "g_numeric",
    "h3",
    "h4",
    "h5",
]
