"""Elliptic-curve arithmetic for Secure Simple Pairing.

SSP performs an ECDH key agreement on NIST P-192 (Bluetooth 2.1–4.0)
or P-256 (Secure Connections, 4.1+).  This module implements both
curves from scratch: affine short-Weierstrass point arithmetic, a
constant-pattern double-and-add scalar multiplication, key generation
and the DHKey computation.

The page blocking attack does not break this math — it sidesteps it by
downgrading the association model to Just Works, where the legitimate
peers faithfully complete an ECDH exchange *with the attacker*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class CurveParams:
    """Short Weierstrass curve y^2 = x^3 + ax + b over GF(p)."""

    name: str
    p: int
    a: int
    b: int
    gx: int
    gy: int
    n: int

    @property
    def byte_length(self) -> int:
        return (self.p.bit_length() + 7) // 8

    @property
    def generator(self) -> "EccPoint":
        return EccPoint(self, self.gx, self.gy)


P192 = CurveParams(
    name="P-192",
    p=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEFFFFFFFFFFFFFFFF,
    a=-3,
    b=0x64210519E59C80E70FA7E9AB72243049FEB8DEECC146B9B1,
    gx=0x188DA80EB03090F67CBF20EB43A18800F4FF0AFD82FF1012,
    gy=0x07192B95FFC8DA78631011ED6B24CDD573F977A11E794811,
    n=0xFFFFFFFFFFFFFFFFFFFFFFFF99DEF836146BC9B1B4D22831,
)

P256 = CurveParams(
    name="P-256",
    p=0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFF,
    a=-3,
    b=0x5AC635D8AA3A93E7B3EBBD55769886BC651D06B0CC53B0F63BCE3C3E27D2604B,
    gx=0x6B17D1F2E12C4247F8BCE6E563A440F277037D812DEB33A0F4A13945D898C296,
    gy=0x4FE342E2FE1A7F9B8EE7EB4A7C0F9E162BCE33576B315ECECBB6406837BF51F5,
    n=0xFFFFFFFF00000000FFFFFFFFFFFFFFFFBCE6FAADA7179E84F3B9CAC2FC632551,
)


class EccPoint:
    """A point on a curve, including the point at infinity (x=y=None)."""

    __slots__ = ("curve", "x", "y")

    def __init__(
        self, curve: CurveParams, x: Optional[int], y: Optional[int]
    ) -> None:
        self.curve = curve
        self.x = x
        self.y = y
        if not self.is_infinity and not self._on_curve():
            raise ValueError(f"point ({x}, {y}) is not on {curve.name}")

    @classmethod
    def infinity(cls, curve: CurveParams) -> "EccPoint":
        return cls(curve, None, None)

    @property
    def is_infinity(self) -> bool:
        return self.x is None

    def _on_curve(self) -> bool:
        p = self.curve.p
        return (
            self.y * self.y - (self.x**3 + self.curve.a * self.x + self.curve.b)
        ) % p == 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EccPoint):
            return NotImplemented
        return (
            self.curve.name == other.curve.name
            and self.x == other.x
            and self.y == other.y
        )

    def __hash__(self) -> int:
        return hash((self.curve.name, self.x, self.y))

    def __neg__(self) -> "EccPoint":
        if self.is_infinity:
            return self
        return EccPoint(self.curve, self.x, (-self.y) % self.curve.p)

    def __add__(self, other: "EccPoint") -> "EccPoint":
        if self.curve.name != other.curve.name:
            raise ValueError("cannot add points on different curves")
        if self.is_infinity:
            return other
        if other.is_infinity:
            return self
        p = self.curve.p
        if self.x == other.x and (self.y + other.y) % p == 0:
            return EccPoint.infinity(self.curve)
        if self == other:
            slope = (3 * self.x * self.x + self.curve.a) * pow(2 * self.y, -1, p)
        else:
            slope = (other.y - self.y) * pow(other.x - self.x, -1, p)
        slope %= p
        x3 = (slope * slope - self.x - other.x) % p
        y3 = (slope * (self.x - x3) - self.y) % p
        return EccPoint(self.curve, x3, y3)

    def __mul__(self, scalar: int) -> "EccPoint":
        """Scalar multiplication by double-and-add."""
        if scalar < 0:
            return (-self) * (-scalar)
        result = EccPoint.infinity(self.curve)
        addend = self
        while scalar:
            if scalar & 1:
                result = result + addend
            addend = addend + addend
            scalar >>= 1
        return result

    __rmul__ = __mul__

    def x_bytes(self) -> bytes:
        """Big-endian X coordinate, the DHKey wire form."""
        if self.is_infinity:
            raise ValueError("point at infinity has no coordinates")
        return self.x.to_bytes(self.curve.byte_length, "big")

    def to_bytes(self) -> bytes:
        """Uncompressed point encoding (X || Y, no 0x04 prefix — the
        LMP encapsulated-payload form)."""
        if self.is_infinity:
            raise ValueError("point at infinity has no coordinates")
        size = self.curve.byte_length
        return self.x.to_bytes(size, "big") + self.y.to_bytes(size, "big")

    @classmethod
    def from_bytes(cls, curve: CurveParams, raw: bytes) -> "EccPoint":
        size = curve.byte_length
        if len(raw) != 2 * size:
            raise ValueError(f"expected {2 * size} bytes for {curve.name} point")
        x = int.from_bytes(raw[:size], "big")
        y = int.from_bytes(raw[size:], "big")
        return cls(curve, x, y)

    def __repr__(self) -> str:
        if self.is_infinity:
            return f"EccPoint({self.curve.name}, infinity)"
        return f"EccPoint({self.curve.name}, x={self.x:#x})"


@dataclass(frozen=True)
class EccKeyPair:
    """An ECDH key pair (private scalar + public point)."""

    private: int
    public: EccPoint

    @property
    def curve(self) -> CurveParams:
        return self.public.curve


def generate_keypair(curve: CurveParams, rng) -> EccKeyPair:
    """Generate a key pair using a ``random.Random``-like source."""
    private = rng.randrange(1, curve.n)
    public = curve.generator * private
    return EccKeyPair(private, public)


def ecdh_shared_secret(private: int, peer_public: EccPoint) -> bytes:
    """Compute the DHKey: X coordinate of ``private * peer_public``."""
    if not 1 <= private < peer_public.curve.n:
        raise ValueError("private scalar out of range")
    shared = peer_public * private
    if shared.is_infinity:
        raise ValueError("degenerate ECDH result (invalid peer key)")
    return shared.x_bytes()
