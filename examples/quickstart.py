#!/usr/bin/env python3
"""Quickstart: pair two simulated phones and peek inside the HCI dump.

Demonstrates the library's core loop in ~40 lines: build a world, power
on devices, run a Secure Simple Pairing, and then show the paper's
central observation — the freshly derived 128-bit link key sits in the
HCI dump in plaintext.

Run:  python examples/quickstart.py
"""

from repro.attacks.scenario import WorldConfig, build_world
from repro.devices.catalog import LG_VELVET, NEXUS_5X_A8
from repro.snoop.extractor import extract_link_keys
from repro.snoop.hcidump import HciDump, render_dump_table


def main() -> None:
    world = build_world(WorldConfig(seed=1))
    phone = world.add_device("phone", LG_VELVET)
    carkit = world.add_device("carkit", NEXUS_5X_A8)
    phone.power_on()
    carkit.power_on()
    world.run_for(0.5)

    # Record the phone's HCI traffic, exactly like Android's
    # 'Bluetooth HCI snoop log' developer option.
    dump = HciDump().attach(phone.transport)

    # Both users intend this pairing.
    carkit.user.note_pairing_initiated(phone.bd_addr, world.simulator.now)
    pairing = phone.host.gap.pair(carkit.bd_addr)
    world.run_for(20.0)
    print(f"pairing completed: {pairing.success}")

    key = phone.host.security.bond_for(carkit.bd_addr).link_key
    print(f"negotiated link key: {key}")

    print("\nHCI dump as recorded on the phone:")
    print(render_dump_table(dump.entries(), max_rows=25))

    print("\nlink keys recoverable from the dump:")
    for finding in extract_link_keys(dump):
        print(f"  {finding}")


if __name__ == "__main__":
    main()
