#!/usr/bin/env python3
"""The paper's motivating scenario: stealing a phone's link key from a
shared car-kit.

Cast (paper §III):
  M — the hard target: an LG VELVET phone full of contacts/messages.
  C — the soft target: an Android Automotive head unit bonded with M,
      physically accessible to anyone who sits in the car.
  A — the attacker's rooted Nexus 5x.

The attacker never touches M.  They enable the HCI snoop log on the
car-kit, impersonate M for one aborted authentication, pull the log via
a bug report, extract the bonded link key, and then impersonate the
*car-kit* toward the phone — establishing a Bluetooth tethering (PAN)
session without a single pairing popup.

Run:  python examples/link_key_extraction_carkit.py
"""

from repro.attacks.link_key_extraction import LinkKeyExtractionAttack
from repro.attacks.scenario import WorldConfig, bond, build_world, standard_cast
from repro.devices.catalog import ANDROID_AUTOMOTIVE_HEAD_UNIT


def main() -> None:
    world = build_world(WorldConfig(seed=2024))
    m, c, a = standard_cast(world, c_spec=ANDROID_AUTOMOTIVE_HEAD_UNIT)

    print("== setup: the owner pairs their phone with the car-kit ==")
    bond(world, c, m)
    print(f"  bonded key on the car-kit: {c.bonded_key_for(m.bd_addr)}")

    print("\n== attack: Fig. 5, steps 1-7 ==")
    attack = LinkKeyExtractionAttack(world, a, c, m)
    report = attack.run(validate=True)

    print(f"  extraction channel : {report.extraction_channel}")
    print(f"  superuser required : {report.su_required}")
    print(f"  findings in dump   : {len(report.findings)}")
    for finding in report.findings:
        print(f"    {finding}")
    print(f"  extracted key      : {report.extracted_key}")
    print(f"  matches ground truth: {report.extraction_success}")
    print(f"  car-kit's bond survived (timeout trick): {report.key_survived_on_c}")

    print("\n== validation: impersonating the car-kit toward the phone ==")
    print(f"  PAN tethering established without new pairing: "
          f"{report.validated_against_m}")
    print(f"  phone believes it is connected to: {c.bd_addr} (the car-kit)")
    print(f"  actual endpoint: the attacker's device ({a.spec.marketing_name})")

    verdict = "VULNERABLE" if report.vulnerable else "not vulnerable"
    print(f"\n{c.spec.marketing_name} ({c.spec.os}) is {verdict} "
          "to link key extraction.")


if __name__ == "__main__":
    main()
