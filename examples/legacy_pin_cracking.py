#!/usr/bin/env python3
"""Historical contrast: offline PIN cracking of pre-SSP legacy pairing.

Before Secure Simple Pairing, a passive air sniffer near one pairing
could recover the PIN (and thus the link key) completely offline — the
attacks the paper cites as refs [14][15] and the reason SSP exists.
The BLAP paper's point is that SSP-era keys then leak through a
*different* channel: the HCI.

This example pairs two devices with PIN '4271', captures the air
transcript, and brute-forces the 4-digit PIN space.

Run:  python examples/legacy_pin_cracking.py
"""

from repro.attacks.eavesdrop import AirCapture
from repro.attacks.pin_crack import (
    crack_pin,
    numeric_pins,
    transcript_from_capture,
)
from repro.attacks.scenario import WorldConfig, build_world
from repro.devices.catalog import LG_VELVET, NEXUS_5X_A8


def main() -> None:
    world = build_world(WorldConfig(seed=77))
    m = world.add_device("M", LG_VELVET)
    c = world.add_device("C", NEXUS_5X_A8)
    m.host.ssp_enabled = False  # pre-2.1 behaviour
    c.host.ssp_enabled = False
    m.user.pin_code = "4271"
    c.user.pin_code = "4271"
    m.power_on()
    c.power_on()
    world.run_for(0.5)

    print("sniffing the air while the victims pair with PIN 4271...")
    capture = AirCapture().attach(world.medium)
    pairing = m.host.gap.pair(c.bd_addr)
    world.run_for(20.0)
    print(f"pairing completed: {pairing.success}")
    truth = m.host.security.bond_for(c.bd_addr).link_key
    print(f"negotiated link key: {truth}\n")

    transcript = transcript_from_capture(capture, "M", m.bd_addr, c.bd_addr)
    print("captured: IN_RAND, both comb-key contributions, AU_RAND, SRES")
    print("brute-forcing the 4-digit PIN space offline...")
    result = crack_pin(transcript, numeric_pins(4))

    assert result is not None
    print(f"  PIN recovered : {result.pin.decode()}")
    print(f"  after         : {result.candidates_tried} candidates")
    print(f"  link key      : {result.link_key}")
    print(f"  matches bond  : {result.link_key == truth}")


if __name__ == "__main__":
    main()
