#!/usr/bin/env python3
"""Audit the §VII mitigations: run both attacks against hardened hosts.

Three mitigations, three verdicts:

1. HCI dump link-key redaction — stops dump-based extraction.
2. Encrypted HCI payloads on the wire — stops physical sniffing too.
3. The page-blocking guard (connection-initiator/pairing-initiator/IO
   consistency check) — stops the downgrade without false positives.

Run:  python examples/mitigation_audit.py
"""

from repro.attacks.attacker import Attacker
from repro.attacks.page_blocking import PageBlockingAttack
from repro.attacks.scenario import WorldConfig, bond, build_world, standard_cast
from repro.core.types import BdAddr, LinkKey
from repro.hci import commands as cmd
from repro.mitigations.dump_filter import FilteredHciDump
from repro.mitigations.hci_encryption import SecureUartTransport
from repro.sim.eventloop import Simulator
from repro.snoop.extractor import extract_link_keys
from repro.snoop.usb_extract import bin2hex, scan_hex_for_link_keys


def audit_dump_filter() -> None:
    print("== mitigation 1: HCI dump link-key redaction ==")
    world = build_world(WorldConfig(seed=11))
    m, c, a = standard_cast(world)
    bond(world, c, m)
    truth = c.bonded_key_for(m.bd_addr)

    filtered = FilteredHciDump().attach(c.transport)
    attacker = Attacker(a)
    attacker.patch_drop_link_key_requests()
    attacker.spoof_device(m)
    attacker.go_connectable()
    world.set_in_range(c, m, False)
    world.run_for(0.5)
    c.host.gap.pair(m.bd_addr)
    world.run_for(12.0)

    findings = extract_link_keys(filtered.to_btsnoop_bytes())
    leaked = any(f.link_key == truth for f in findings)
    print(f"  payloads redacted : {filtered.redactions}")
    print(f"  real key leaked   : {leaked}  (extraction DEFEATED)\n")


def audit_hci_encryption() -> None:
    print("== mitigation 2: encrypted link-key payloads on the wire ==")
    sim = Simulator()
    transport = SecureUartTransport(sim)
    transport.attach_host(lambda raw: None)
    transport.attach_controller(lambda raw: None)
    taps = []
    transport.add_tap(lambda t, d, raw: taps.append(raw))
    key = LinkKey(bytes(range(16)))
    transport.send_from_host(
        cmd.LinkKeyRequestReply(
            bd_addr=BdAddr.parse("48:90:11:22:33:44"), link_key=key
        )
    )
    sim.run()
    findings = scan_hex_for_link_keys(bin2hex(b"".join(taps)))
    recovered = {f.link_key for f in findings}
    print(f"  packets protected   : {transport.protected_packets}")
    print(f"  signature scan hits : {len(findings)} "
          "(header is still visible...)")
    print(f"  real key recovered  : {key in recovered}  "
          "(physical sniffing DEFEATED)\n")


def audit_page_blocking_guard() -> None:
    print("== mitigation 3: page-blocking guard on the victim host ==")
    world = build_world(WorldConfig(seed=12))
    m, c, a = standard_cast(world)
    m.host.security.page_blocking_guard = True
    report = PageBlockingAttack(world, a, c, m).run()
    print(f"  attack paired        : {report.paired}")
    print(f"  guard rejections     : {m.host.security.guard_rejections}")

    world2 = build_world(WorldConfig(seed=13))
    m2, c2, _ = standard_cast(world2)
    m2.host.security.page_blocking_guard = True
    c2.user.note_pairing_initiated(m2.bd_addr, world2.simulator.now)
    legit = m2.host.gap.pair(c2.bd_addr)
    world2.run_for(20.0)
    print(f"  legitimate pairing still works: {legit.success} "
          f"(false positives: {m2.host.security.guard_rejections})")


def main() -> None:
    audit_dump_filter()
    audit_hci_encryption()
    audit_page_blocking_guard()


if __name__ == "__main__":
    main()
