#!/usr/bin/env python3
"""Page blocking attack with SSP downgrade, end to end.

The victim wants to pair their phone (M) with a headset-class device
(C).  The attacker (A) never races C for the phone's page — instead A
connects *to* the phone first, spoofing C's identity, and idles in a
Physical-Layer-Only Connection.  When the victim taps "pair", the
phone's host sees an existing link to C's address, skips the page, and
sends the pairing straight to the attacker.  With the attacker claiming
NoInputNoOutput, SSP degrades to Just Works.

Run:  python examples/page_blocking_downgrade.py
"""

import json
from pathlib import Path

from repro.attacks.baseline import run_baseline_trial
from repro.attacks.page_blocking import PageBlockingAttack
from repro.attacks.scenario import WorldConfig, build_world, standard_cast
from repro.devices.catalog import LG_VELVET
from repro.obs.timeline import export_chrome_trace, render_timeline_table
from repro.snoop.hcidump import render_dump_table


def main() -> None:
    print("== baseline: without page blocking, the MITM is a coin flip ==")
    wins = sum(
        run_baseline_trial(LG_VELVET, seed=seed).attacker_won
        for seed in range(20)
    )
    print(f"  attacker captured the victim's connection in {wins}/20 trials\n")

    print("== page blocking: the deterministic version ==")
    world = build_world(WorldConfig(seed=7))
    m, c, a = standard_cast(world)
    attack = PageBlockingAttack(world, a, c, m)
    report = attack.run()

    print(f"  MITM connection established : {report.mitm_connection}")
    print(f"  pairing completed           : {report.paired}")
    print(f"  downgraded to Just Works    : {report.downgraded_to_just_works}")
    print(f"  popup shown on victim (5.x) : {report.popup_shown_on_m}")
    print(f"  victim accepted it          : {m.user.popups_accepted >= 1}")

    m_key = m.host.security.bond_for(c.bd_addr)
    a_key = a.host.security.bond_for(m.bd_addr)
    print(f"\n  victim's key 'for the headset': {m_key.link_key}")
    print(f"  attacker's key for the victim : {a_key.link_key}")
    print(f"  identical (attacker is the peer): {m_key.link_key == a_key.link_key}")

    print("\n== the victim's HCI dump (paper Fig. 12b) ==")
    print(render_dump_table(report.m_dump.entries(), max_rows=16))
    print(
        "\nnote the signature: HCI_Connection_Request (we were paged) "
        "followed by our own HCI_Authentication_Requested — connection "
        "responder and pairing initiator at once."
    )

    print("\n== the same attack as a cross-device timeline ==")
    print(
        render_timeline_table(
            world.obs.timeline.events(
                categories=["phy-page", "phy-link", "span"]
            ),
            max_rows=20,
        )
    )

    print("\n== what the metrics saw ==")
    print(world.obs.metrics.render_table())
    trace_path = Path("page_blocking_trace.json")
    trace_path.write_text(
        json.dumps(
            export_chrome_trace(world.obs.timeline.events()), indent=1
        )
    )
    print(
        f"\nfull Chrome trace written to {trace_path} — open it at "
        "https://ui.perfetto.dev to scrub through the PLOC hold and the "
        "skipped page."
    )


if __name__ == "__main__":
    main()
