#!/usr/bin/env python3
"""Link key extraction from a Windows PC via USB sniffing (Fig. 11).

Windows host stacks provide no HCI dump, but the HCI rides a USB cable
to the dongle.  A free USB analyzer captures the raw transfer stream;
the binary is converted to hex text and grepped for the `0b 04 16`
signature of HCI_Link_Key_Request_Reply.

Run:  python examples/usb_sniffing_windows.py
"""

from repro.attacks.attacker import Attacker
from repro.attacks.scenario import WorldConfig, bond, build_world, standard_cast
from repro.devices.catalog import WINDOWS_CSR_HARMONY
from repro.snoop.usb_extract import bin2hex, extract_link_keys_from_usb


def main() -> None:
    world = build_world(WorldConfig(seed=99))
    m, c, a = standard_cast(world, c_spec=WINDOWS_CSR_HARMONY)

    print(f"C = {c.spec.marketing_name}, controller {c.spec.controller_model}")
    bond(world, c, m)
    truth = c.bonded_key_for(m.bd_addr)
    print(f"bonded key (ground truth): {truth}\n")

    print("attaching the USB analyzer to the dongle's bus...")
    sniffer = c.attach_usb_sniffer()

    print("impersonating M and provoking one re-authentication on C...")
    attacker = Attacker(a)
    attacker.patch_drop_link_key_requests()
    attacker.spoof_device(m)
    attacker.go_connectable()
    world.set_in_range(c, m, False)
    world.run_for(0.5)
    c.host.gap.pair(m.bd_addr)
    world.run_for(12.0)

    stream = sniffer.raw_stream()
    print(f"captured {len(sniffer.transfers)} USB transfers "
          f"({len(stream)} raw bytes, NULL polls included)\n")

    hex_text = bin2hex(stream)
    print("BinaryToHex output (excerpt):")
    for line in hex_text.splitlines()[:6]:
        print("  " + line)

    print("\nscanning for the '0b 04 16' signature...")
    findings = extract_link_keys_from_usb(sniffer)
    for finding in findings:
        print(f"  {finding}")

    extracted = [f.link_key for f in findings if f.peer == m.bd_addr]
    match = bool(extracted and extracted[-1] == truth)
    print(f"\nextracted key matches the bonded key: {match}")


if __name__ == "__main__":
    main()
