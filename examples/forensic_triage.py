#!/usr/bin/env python3
"""Defensive forensics: triage a directory of HCI snoop logs.

Blue-team counterpart to the attack tooling: generate a handful of
capture files (one clean session, one that leaked a link key, one that
shows the page blocking signature), then sweep them with the extractor
and the detector — the workflow an incident responder would run over
``btsnoop_hci.log`` files pulled from a fleet.

Run:  python examples/forensic_triage.py
"""

import tempfile
from pathlib import Path

from repro.attacks.page_blocking import PageBlockingAttack
from repro.attacks.scenario import WorldConfig, bond, build_world, standard_cast
from repro.mitigations.detector import detect_page_blocking
from repro.snoop.extractor import extract_link_keys
from repro.snoop.hcidump import HciDump
from repro.snoop.pcap import hci_dump_to_pcap


def make_clean_capture() -> bytes:
    """An ordinary discovery session: nothing sensitive."""
    world = build_world(WorldConfig(seed=201))
    m, c, a = standard_cast(world)
    dump = HciDump().attach(m.transport)
    m.host.gap.start_discovery()
    world.run_for(8.0)
    return dump.to_btsnoop_bytes()


def make_leaky_capture() -> bytes:
    """A bonded re-authentication: the link key hits the log."""
    world = build_world(WorldConfig(seed=202))
    m, c, a = standard_cast(world)
    bond(world, c, m)
    dump = HciDump().attach(c.transport)
    op = c.host.gap.pair(m.bd_addr)
    world.run_for(10.0)
    assert op.success
    return dump.to_btsnoop_bytes()


def make_attacked_capture() -> bytes:
    """A victim's log recorded during a page blocking attack."""
    world = build_world(WorldConfig(seed=203))
    m, c, a = standard_cast(world)
    report = PageBlockingAttack(world, a, c, m).run()
    assert report.success
    return report.m_dump.to_btsnoop_bytes()


def triage(path: Path) -> None:
    raw = path.read_bytes()
    keys = extract_link_keys(raw)
    suspicious = detect_page_blocking(raw)
    verdict = []
    if keys:
        verdict.append(f"{len(keys)} plaintext link key(s)")
    if suspicious:
        verdict.append(f"{len(suspicious)} page-blocking signature(s)")
    print(f"\n== {path.name} ==")
    if not verdict:
        print("  clean: no key material, no attack signatures")
        return
    print("  FINDINGS: " + "; ".join(verdict))
    for finding in keys:
        print(f"    key: {finding}")
    for finding in suspicious:
        print(f"    attack: {finding}")


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="blap-triage-"))
    captures = {
        "clean_session.btsnoop": make_clean_capture(),
        "bonded_reauth.btsnoop": make_leaky_capture(),
        "suspect_pairing.btsnoop": make_attacked_capture(),
    }
    for name, raw in captures.items():
        (workdir / name).write_bytes(raw)
        # Also emit Wireshark-openable pcaps alongside.
        (workdir / name.replace(".btsnoop", ".pcap")).write_bytes(
            hci_dump_to_pcap(raw)
        )
    print(f"triaging {len(captures)} capture(s) in {workdir}")
    for name in captures:
        triage(workdir / name)
    print("\n(pcap twins written next to each capture for Wireshark)")


if __name__ == "__main__":
    main()
